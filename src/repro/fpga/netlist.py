"""Structural netlists for the ring circuits.

The paper's rings are tiny netlists: a chain of configured LUTs closed
into a loop, hand-placed into LABs.  This module gives the "bitstream"
the rest of the library talks about an explicit structural form:

* :class:`Cell` — one configured LUT (inverter, buffer/delay element, or
  Muller C-element with embedded inverter — the paper's STR stage);
* :class:`Net` — a directed connection between cell pins;
* :class:`Netlist` — cells + nets, with structural validation;
* generators :func:`iro_netlist` / :func:`str_netlist` for the two ring
  topologies, and :func:`ring_order` to recover the logical stage order
  from any valid ring netlist.

The timing layer consumes only the *shape* (stage order + placement), so
the netlist is the right place to check the structure once instead of
trusting every caller: every cell driven, no dangling inputs, a single
cycle through all stages, exactly one inverting stage for an IRO.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, List, Optional, Sequence, Tuple


class CellFunction(enum.Enum):
    """LUT configuration of a ring stage."""

    INVERTER = "inverter"
    BUFFER = "buffer"
    MULLER_INV = "muller_inv"  # C-element + inverter: one STR stage

    @property
    def input_pins(self) -> Tuple[str, ...]:
        if self is CellFunction.MULLER_INV:
            return ("forward", "reverse")
        return ("in",)

    @property
    def is_inverting(self) -> bool:
        return self in (CellFunction.INVERTER, CellFunction.MULLER_INV)


@dataclasses.dataclass(frozen=True)
class Cell:
    """One configured LUT."""

    name: str
    function: CellFunction

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("cell name cannot be empty")


@dataclasses.dataclass(frozen=True)
class Net:
    """A directed connection: driver cell output -> sink cell input pin."""

    driver: str
    sink: str
    sink_pin: str

    def __post_init__(self) -> None:
        if not (self.driver and self.sink and self.sink_pin):
            raise ValueError("net endpoints cannot be empty")


class NetlistError(ValueError):
    """Raised on structurally invalid netlists."""


class Netlist:
    """Cells plus nets, with structural checks at construction."""

    def __init__(self, cells: Sequence[Cell], nets: Sequence[Net], name: str = "ring") -> None:
        self.name = name
        self._cells: Dict[str, Cell] = {}
        for cell in cells:
            if cell.name in self._cells:
                raise NetlistError(f"duplicate cell name {cell.name!r}")
            self._cells[cell.name] = cell
        self._nets = list(nets)
        self._validate()

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def cells(self) -> List[Cell]:
        return list(self._cells.values())

    @property
    def nets(self) -> List[Net]:
        return list(self._nets)

    @property
    def cell_count(self) -> int:
        return len(self._cells)

    def cell(self, name: str) -> Cell:
        try:
            return self._cells[name]
        except KeyError:
            raise NetlistError(f"no cell named {name!r}") from None

    def forward_successor(self, cell_name: str) -> str:
        """The cell whose primary input this cell drives."""
        for net in self._nets:
            sink_cell = self._cells[net.sink]
            primary = sink_cell.function.input_pins[0]
            if net.driver == cell_name and net.sink_pin == primary:
                return net.sink
        raise NetlistError(f"cell {cell_name!r} drives no primary input")

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        if len(self._cells) < 3:
            raise NetlistError("a ring netlist needs at least 3 cells")
        # Every net endpoint must exist, every pin must be legal.
        driven: Dict[Tuple[str, str], str] = {}
        for net in self._nets:
            if net.driver not in self._cells:
                raise NetlistError(f"net driver {net.driver!r} is not a cell")
            if net.sink not in self._cells:
                raise NetlistError(f"net sink {net.sink!r} is not a cell")
            pins = self._cells[net.sink].function.input_pins
            if net.sink_pin not in pins:
                raise NetlistError(
                    f"cell {net.sink!r} ({self._cells[net.sink].function.value}) "
                    f"has no pin {net.sink_pin!r}; pins: {pins}"
                )
            key = (net.sink, net.sink_pin)
            if key in driven:
                raise NetlistError(
                    f"pin {net.sink}.{net.sink_pin} driven by both "
                    f"{driven[key]!r} and {net.driver!r}"
                )
            driven[key] = net.driver
        # No dangling input pins.
        for cell in self._cells.values():
            for pin in cell.function.input_pins:
                if (cell.name, pin) not in driven:
                    raise NetlistError(f"pin {cell.name}.{pin} is undriven")

    def validate_single_ring(self) -> List[str]:
        """Check the primary-input graph is one cycle; return stage order."""
        order = ring_order(self)
        if len(order) != self.cell_count:
            raise NetlistError(
                f"primary-input cycle covers {len(order)} of "
                f"{self.cell_count} cells — not a single ring"
            )
        return order


def ring_order(netlist: Netlist) -> List[str]:
    """Follow primary inputs around the ring, starting at the first cell."""
    start = netlist.cells[0].name
    order = [start]
    current = start
    for _ in range(netlist.cell_count):
        current = netlist.forward_successor(current)
        if current == start:
            return order
        if current in order:
            raise NetlistError(f"primary-input path re-enters at {current!r} before closing")
        order.append(current)
    raise NetlistError("primary-input path does not close into a ring")


# ----------------------------------------------------------------------
# generators
# ----------------------------------------------------------------------
def iro_netlist(stage_count: int, name: str = "iro") -> Netlist:
    """The paper's IRO: one inverter plus ``stage_count - 1`` buffers."""
    if stage_count < 3:
        raise NetlistError(f"an IRO needs at least 3 stages, got {stage_count}")
    cells = [Cell(f"{name}_s0", CellFunction.INVERTER)]
    cells += [Cell(f"{name}_s{i}", CellFunction.BUFFER) for i in range(1, stage_count)]
    nets = [
        Net(driver=f"{name}_s{i}", sink=f"{name}_s{(i + 1) % stage_count}", sink_pin="in")
        for i in range(stage_count)
    ]
    netlist = Netlist(cells, nets, name=name)
    netlist.validate_single_ring()
    return netlist


def str_netlist(stage_count: int, name: str = "str") -> Netlist:
    """The paper's STR: Muller+inverter stages, forward and reverse nets."""
    if stage_count < 3:
        raise NetlistError(f"an STR needs at least 3 stages, got {stage_count}")
    cells = [Cell(f"{name}_s{i}", CellFunction.MULLER_INV) for i in range(stage_count)]
    nets = []
    for i in range(stage_count):
        successor = (i + 1) % stage_count
        predecessor = (i - 1) % stage_count
        nets.append(Net(f"{name}_s{i}", f"{name}_s{successor}", "forward"))
        nets.append(Net(f"{name}_s{i}", f"{name}_s{predecessor}", "reverse"))
    netlist = Netlist(cells, nets, name=name)
    netlist.validate_single_ring()
    return netlist


def inverting_stage_count(netlist: Netlist) -> int:
    """Number of inverting stages (must be odd for an IRO to oscillate)."""
    return sum(1 for cell in netlist.cells if cell.function.is_inverting)


@dataclasses.dataclass(frozen=True)
class Bitstream:
    """A netlist bound to a placement — what gets 'sent to the boards'.

    Table II's experiment is literally "sending the same bit-stream to
    five boards"; this type is that artifact.
    """

    netlist: Netlist
    first_lut: int = 0

    def placement(self, lab_capacity: int = 16):
        from repro.fpga.placement import place_ring

        return place_ring(
            self.netlist.cell_count, lab_capacity=lab_capacity, first_lut=self.first_lut
        )

    def realize(self, board):
        """Instantiate the placed ring on a board as a ring model."""
        from repro.rings.iro import InverterRingOscillator
        from repro.rings.str_ring import SelfTimedRing

        functions = {cell.function for cell in self.netlist.cells}
        if functions == {CellFunction.MULLER_INV}:
            return SelfTimedRing.on_board(
                board, self.netlist.cell_count, first_lut=self.first_lut
            )
        if CellFunction.MULLER_INV in functions:
            raise NetlistError("mixed IRO/STR netlists are not realizable")
        if inverting_stage_count(self.netlist) % 2 == 0:
            raise NetlistError(
                "an IRO needs an odd number of inverting stages to oscillate"
            )
        return InverterRingOscillator.on_board(
            board, self.netlist.cell_count, first_lut=self.first_lut
        )
