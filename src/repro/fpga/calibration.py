"""Calibration of the device model against the paper's Tables I and II.

Everything mechanistic in this library (event-driven Charlie dynamics,
jitter accumulation, process averaging) runs on top of a handful of
timing constants.  This module pins those constants to the paper's
measurements:

* **Nominal frequencies** (Table I, column ``Fn``) fix the LUT delay
  (200 ps), the intra-LAB hop (66 ps) and the inter-LAB hop (161 ps):
  the three IRO rows are reproduced to ~0.5 %.
* **STR nominal frequencies** then fix the length-dependent *Charlie
  penalty* — the extra per-hop delay an STR stage pays at its balanced
  operating point (``s* = 0`` implies a full ``Dcharlie`` of penalty,
  see :mod:`repro.core.temporal_model`).
* **STR voltage excursions** (Table I, column ``delta F``) fix the
  voltage sensitivity of that penalty per ring length.

The length dependence of the penalty and of its voltage sensitivity is
the paper's *token confinement* phenomenology — the one effect the
authors explicitly say their temporal model does not explain (Section
V-B).  It is therefore fitted, not derived; :class:`ConfinementModel`
holds the fit and interpolates between the anchor lengths, and
``fit_confinement_from_table1`` reproduces the fit from the published
numbers so the calibration is auditable.

Process variability (Table II) is matched by a two-layer Gaussian model
(see :mod:`repro.fpga.process`); the sigmas fitted from the two IRO rows
are exported as ``TABLE2_PROCESS``.
"""

from __future__ import annotations

import dataclasses
import functools
from typing import Callable, Dict, Sequence, Tuple

import numpy as np
from scipy.optimize import brentq

from repro.fpga.device import TimingConstants
from repro.fpga.placement import place_ring
from repro.fpga.process import ProcessVariation
from repro.fpga.voltage import (
    MAX_SWEEP_VOLTAGE,
    MIN_SWEEP_VOLTAGE,
    NOMINAL_CORE_VOLTAGE,
    VoltageSensitivity,
)
from repro.units import mhz_to_period_ps


@dataclasses.dataclass(frozen=True)
class Table1Row:
    """One row of the paper's Table I."""

    kind: str  # "iro" | "str"
    stage_count: int
    nominal_frequency_mhz: float
    delta_f: float  # normalized excursion for the 0.4 V sweep


#: Paper Table I: normalized frequency excursions for a 0.4 V sweep.
TABLE1_TARGETS: Tuple[Table1Row, ...] = (
    Table1Row("iro", 5, 376.0, 0.49),
    Table1Row("iro", 25, 73.0, 0.48),
    Table1Row("iro", 80, 23.0, 0.47),
    Table1Row("str", 4, 653.0, 0.50),
    Table1Row("str", 24, 433.0, 0.44),
    Table1Row("str", 48, 408.0, 0.39),
    Table1Row("str", 64, 369.0, 0.39),
    Table1Row("str", 96, 320.0, 0.37),
)


@dataclasses.dataclass(frozen=True)
class Table2Row:
    """One row of the paper's Table II (five boards, same bitstream)."""

    kind: str
    stage_count: int
    board_frequencies_mhz: Tuple[float, ...]
    sigma_rel: float  # relative standard deviation reported by the paper


#: Paper Table II: frequencies of identical rings on five boards.
TABLE2_TARGETS: Tuple[Table2Row, ...] = (
    Table2Row("iro", 3, (654.42, 646.84, 641.56, 645.60, 642.12), 0.0079),
    Table2Row("iro", 5, (305.72, 306.44, 302.54, 304.87, 302.20), 0.0062),
    Table2Row("str", 4, (669.05, 660.06, 658.60, 659.90, 655.62), 0.0076),
    Table2Row("str", 96, (328.16, 328.54, 327.55, 328.47, 327.46), 0.0015),
)

#: Process sigmas fitted from the two IRO rows of Table II (see module doc).
TABLE2_PROCESS = ProcessVariation(global_sigma_rel=0.00157, local_sigma_rel=0.0178)

#: STR ring lengths with Table I anchors.
STR_ANCHOR_LENGTHS: Tuple[int, ...] = (4, 24, 48, 64, 96)


def mean_route_delay_ps(constants: TimingConstants, stage_count: int) -> float:
    """Mean per-hop routing delay of a sequentially placed ring."""
    placement = place_ring(stage_count, constants.lab_capacity)
    return float(
        np.mean([constants.route_delay_ps(hop) for hop in placement.hop_classes])
    )


class ConfinementModel:
    """Length-dependent Charlie penalty of balanced STRs (fitted).

    For each ring length ``L`` the model provides:

    * ``penalty_ps(L)`` — the Charlie magnitude ``Dcharlie`` at the
      balanced operating point, which is exactly the per-hop delay excess
      over the static delay (``D_hop = Ds + Dcharlie`` at ``s* = 0``);
    * ``sensitivity(L)`` — the voltage sensitivity of that penalty.

    Values between anchors are linearly interpolated; values outside the
    anchor range are clamped to the nearest anchor (there is no
    measurement to extrapolate from).
    """

    def __init__(
        self,
        lengths: Sequence[int],
        penalties_ps: Sequence[float],
        betas_per_volt: Sequence[float],
    ) -> None:
        lengths_arr = np.asarray(lengths, dtype=float)
        penalties_arr = np.asarray(penalties_ps, dtype=float)
        betas_arr = np.asarray(betas_per_volt, dtype=float)
        if not (lengths_arr.size == penalties_arr.size == betas_arr.size):
            raise ValueError("anchor arrays must have equal lengths")
        if lengths_arr.size < 1:
            raise ValueError("need at least one anchor")
        if np.any(np.diff(lengths_arr) <= 0):
            raise ValueError("anchor lengths must be strictly increasing")
        if np.any(penalties_arr < 0):
            raise ValueError("penalties must be non-negative")
        self._lengths = lengths_arr
        self._penalties = penalties_arr
        self._betas = betas_arr

    @property
    def anchor_lengths(self) -> np.ndarray:
        return self._lengths.copy()

    def penalty_ps(self, stage_count: int) -> float:
        """Charlie penalty (``Dcharlie`` at balance) for an ``L``-stage STR."""
        if stage_count < 3:
            raise ValueError(f"an STR needs at least 3 stages, got {stage_count}")
        return float(np.interp(stage_count, self._lengths, self._penalties))

    def beta_per_volt(self, stage_count: int) -> float:
        """Voltage sensitivity coefficient of the penalty."""
        if stage_count < 3:
            raise ValueError(f"an STR needs at least 3 stages, got {stage_count}")
        return float(np.interp(stage_count, self._lengths, self._betas))

    def sensitivity(self, stage_count: int) -> VoltageSensitivity:
        return VoltageSensitivity(self.beta_per_volt(stage_count))

    def provide(self, stage_count: int) -> Tuple[float, VoltageSensitivity]:
        """Penalty and sensitivity for one length (the provider signature)."""
        return self.penalty_ps(stage_count), self.sensitivity(stage_count)

    def provider(self) -> Callable[[int], Tuple[float, VoltageSensitivity]]:
        """Adapter for :class:`repro.fpga.device.DeviceTimingModel`.

        Returns the bound :meth:`provide` method rather than a local
        closure so that boards (which hold the provider through their
        timing model) remain picklable for process-pool campaign workers.
        """
        return self.provide


def _str_effective_delay_ps(
    constants: TimingConstants,
    route_ps: float,
    penalty_ps: float,
    penalty_beta: float,
    supply_v: float,
) -> float:
    """Per-hop STR delay at a supply voltage, by component."""
    lut = constants.lut_delay_ps * constants.transistor_sensitivity.delay_factor(supply_v)
    route = route_ps * constants.interconnect_sensitivity.delay_factor(supply_v)
    charlie = penalty_ps * VoltageSensitivity(penalty_beta).delay_factor(supply_v)
    return lut + route + charlie


def _str_delta_f(
    constants: TimingConstants, route_ps: float, penalty_ps: float, penalty_beta: float
) -> float:
    """Model the Table I normalized excursion of a balanced STR."""
    frequencies = {}
    for supply_v in (MIN_SWEEP_VOLTAGE, NOMINAL_CORE_VOLTAGE, MAX_SWEEP_VOLTAGE):
        delay = _str_effective_delay_ps(constants, route_ps, penalty_ps, penalty_beta, supply_v)
        frequencies[supply_v] = 1.0 / delay  # arbitrary units cancel in the ratio
    return (
        frequencies[MAX_SWEEP_VOLTAGE] - frequencies[MIN_SWEEP_VOLTAGE]
    ) / frequencies[NOMINAL_CORE_VOLTAGE]


def fit_confinement_from_table1(
    constants: TimingConstants = TimingConstants(),
    targets: Sequence[Table1Row] = TABLE1_TARGETS,
) -> ConfinementModel:
    """Fit the confinement model from the published Table I numbers.

    For each STR row:

    1. the nominal frequency fixes the total per-hop delay
       ``D_hop = 1e6 / (4 * Fn)`` (balanced STRs oscillate at
       ``T = 4 * D_hop``), hence the penalty
       ``D_hop - lut_delay - mean_route``;
    2. the normalized excursion fixes the penalty's voltage coefficient
       via a one-dimensional root find.
    """
    lengths = []
    penalties = []
    betas = []
    for row in targets:
        if row.kind != "str":
            continue
        route = mean_route_delay_ps(constants, row.stage_count)
        hop_delay = mhz_to_period_ps(row.nominal_frequency_mhz) / 4.0
        penalty = hop_delay - constants.lut_delay_ps - route
        if penalty <= 0.0:
            raise RuntimeError(
                f"Table I row STR {row.stage_count}C implies a non-positive "
                f"Charlie penalty ({penalty:.1f} ps); timing constants are "
                "inconsistent with the calibration targets"
            )

        def residual(beta: float, route=route, penalty=penalty, target=row.delta_f) -> float:
            return _str_delta_f(constants, route, penalty, beta) - target

        beta = float(brentq(residual, 0.0, 3.0, xtol=1e-10))
        lengths.append(row.stage_count)
        penalties.append(penalty)
        betas.append(beta)
    return ConfinementModel(lengths, penalties, betas)


@dataclasses.dataclass(frozen=True)
class CalibratedTiming:
    """The full calibrated description of the simulated device family."""

    constants: TimingConstants
    confinement: ConfinementModel
    process: ProcessVariation

    def charlie_provider(self) -> Callable[[int], Tuple[float, VoltageSensitivity]]:
        return self.confinement.provider()

    def timing_model(self):
        """Build the :class:`DeviceTimingModel` for this calibration."""
        # Imported here to avoid a cycle at module import time.
        from repro.fpga.device import DeviceTimingModel

        return DeviceTimingModel(
            constants=self.constants,
            charlie_sensitivity_provider=self.charlie_provider(),
        )


@functools.lru_cache(maxsize=1)
def cyclone_iii_calibration() -> CalibratedTiming:
    """The library's reference calibration (Cyclone III family).

    Cached: the confinement fit costs a few root finds and every
    experiment uses the same calibration.
    """
    constants = TimingConstants()
    confinement = fit_confinement_from_table1(constants)
    return CalibratedTiming(
        constants=constants,
        confinement=confinement,
        process=TABLE2_PROCESS,
    )


def summarize_calibration(calibration: CalibratedTiming) -> Dict[str, float]:
    """Human-readable snapshot of the fitted constants (for reports)."""
    summary: Dict[str, float] = {
        "lut_delay_ps": calibration.constants.lut_delay_ps,
        "intra_lab_route_ps": calibration.constants.intra_lab_route_ps,
        "inter_lab_route_ps": calibration.constants.inter_lab_route_ps,
        "gate_jitter_sigma_ps": calibration.constants.gate_jitter_sigma_ps,
        "process_global_sigma_rel": calibration.process.global_sigma_rel,
        "process_local_sigma_rel": calibration.process.local_sigma_rel,
    }
    for length in STR_ANCHOR_LENGTHS:
        summary[f"charlie_penalty_ps_L{length}"] = calibration.confinement.penalty_ps(length)
        summary[f"charlie_beta_L{length}"] = calibration.confinement.beta_per_volt(length)
    return summary
