"""Placement of ring stages onto the FPGA fabric.

The paper places ring LUTs manually, "if possible in the same Altera LAB",
because hops that leave a LAB pay a much larger interconnect delay.  This
module reproduces that placement policy: stages fill LABs sequentially, so
a ring of ``L`` stages spans ``ceil(L / lab_capacity)`` LABs and exactly
that many of its hops (including the wrap-around hop back to stage 0) are
inter-LAB.

The placement fully determines the routing-delay class of each hop, which
is all the timing model needs from it.
"""

from __future__ import annotations

import dataclasses
import enum
import math
from typing import Tuple


class RoutingClass(enum.Enum):
    """Interconnect class of the hop between two consecutive stages."""

    INTRA_LAB = "intra_lab"
    INTER_LAB = "inter_lab"


@dataclasses.dataclass(frozen=True)
class Placement:
    """Where each ring stage lives and how it reaches its successor.

    Attributes
    ----------
    lut_indices:
        Global LUT index of each stage (stage ``i`` occupies LUT
        ``lut_indices[i]``).
    lab_indices:
        LAB each stage belongs to.
    hop_classes:
        Routing class of the hop from stage ``i`` to stage
        ``(i + 1) % L`` — the last entry is the wrap-around hop.
    """

    lut_indices: Tuple[int, ...]
    lab_indices: Tuple[int, ...]
    hop_classes: Tuple[RoutingClass, ...]

    def __post_init__(self) -> None:
        if not (len(self.lut_indices) == len(self.lab_indices) == len(self.hop_classes)):
            raise ValueError("placement arrays must have one entry per stage")
        if len(self.lut_indices) == 0:
            raise ValueError("placement cannot be empty")

    @property
    def stage_count(self) -> int:
        return len(self.lut_indices)

    @property
    def lab_count(self) -> int:
        return len(set(self.lab_indices))

    @property
    def inter_lab_hop_count(self) -> int:
        return sum(1 for hop in self.hop_classes if hop is RoutingClass.INTER_LAB)

    def is_single_lab(self) -> bool:
        """True when the whole ring fits in one LAB (the paper's ideal)."""
        return self.lab_count == 1


def place_ring(stage_count: int, lab_capacity: int = 16, first_lut: int = 0) -> Placement:
    """Place a ring using the paper's sequential same-LAB-first policy.

    Parameters
    ----------
    stage_count:
        Number of ring stages (one LUT each, for both IRO and STR).
    lab_capacity:
        LUTs per LAB; 16 for the Cyclone III family.
    first_lut:
        Global index of the first LUT, letting several rings share one
        device without overlapping.
    """
    if stage_count < 1:
        raise ValueError(f"stage count must be positive, got {stage_count}")
    if lab_capacity < 1:
        raise ValueError(f"LAB capacity must be positive, got {lab_capacity}")
    if first_lut < 0:
        raise ValueError(f"first LUT index must be non-negative, got {first_lut}")

    lut_indices = tuple(range(first_lut, first_lut + stage_count))
    lab_indices = tuple(lut // lab_capacity for lut in lut_indices)
    hop_classes = []
    for stage in range(stage_count):
        successor = (stage + 1) % stage_count
        if lab_indices[stage] == lab_indices[successor]:
            hop_classes.append(RoutingClass.INTRA_LAB)
        else:
            hop_classes.append(RoutingClass.INTER_LAB)
    return Placement(
        lut_indices=lut_indices,
        lab_indices=lab_indices,
        hop_classes=tuple(hop_classes),
    )


def lab_span(stage_count: int, lab_capacity: int = 16) -> int:
    """Number of LABs a sequentially placed ring occupies."""
    if stage_count < 1:
        raise ValueError(f"stage count must be positive, got {stage_count}")
    return math.ceil(stage_count / lab_capacity)
