"""The Cyclone III-like device timing model.

This is the central substitution for the paper's physical boards: given a
:class:`~repro.fpga.placement.Placement`, a sampled
:class:`~repro.fpga.process.DeviceVariation` and a supply voltage, the
model produces the per-stage static delays, Charlie parameters and jitter
magnitudes that the ring simulators consume.

Timing structure of one ring stage (one LUT for both IRO and STR, as in
the paper):

    stage delay = LUT cell delay            (transistor sensitivity)
                + hop routing delay          (interconnect sensitivity)
                [+ Charlie penalty, STR only (confinement sensitivity)]

Each component scales with voltage through its own
:class:`~repro.fpga.voltage.VoltageSensitivity` and with process through
the device's global factor; the LUT delay additionally carries the
per-LUT local mismatch factor.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

import numpy as np

from repro.fpga.placement import Placement, RoutingClass
from repro.fpga.process import DeviceVariation
from repro.fpga.voltage import (
    NOMINAL_CORE_VOLTAGE,
    NOMINAL_TEMPERATURE_C,
    TemperatureSensitivity,
    VoltageSensitivity,
)


@dataclasses.dataclass(frozen=True)
class TimingConstants:
    """Nominal timing constants of the device family at 1.2 V.

    The default values are the calibration of
    :func:`repro.fpga.calibration.cyclone_iii_calibration`, chosen so the
    model reproduces the nominal frequencies of the paper's Table I (see
    DESIGN.md Section 5 for the derivation).
    """

    lut_delay_ps: float = 200.0
    intra_lab_route_ps: float = 66.0
    inter_lab_route_ps: float = 161.0
    lab_capacity: int = 16
    gate_jitter_sigma_ps: float = 2.0
    transistor_sensitivity: VoltageSensitivity = VoltageSensitivity(1.245)
    interconnect_sensitivity: VoltageSensitivity = VoltageSensitivity(1.12)
    # CMOS logic slows with heat; interconnect responds about half as
    # strongly (typical figures for this node class — the paper sweeps
    # only voltage, so these are modelling assumptions, stated as such).
    transistor_temperature: TemperatureSensitivity = TemperatureSensitivity(8.0e-4)
    interconnect_temperature: TemperatureSensitivity = TemperatureSensitivity(4.0e-4)

    def __post_init__(self) -> None:
        if self.lut_delay_ps <= 0.0:
            raise ValueError(f"LUT delay must be positive, got {self.lut_delay_ps}")
        if self.intra_lab_route_ps < 0.0 or self.inter_lab_route_ps < 0.0:
            raise ValueError("routing delays must be non-negative")
        if self.inter_lab_route_ps < self.intra_lab_route_ps:
            raise ValueError("inter-LAB routing cannot be faster than intra-LAB routing")
        if self.lab_capacity < 1:
            raise ValueError(f"LAB capacity must be positive, got {self.lab_capacity}")
        if self.gate_jitter_sigma_ps < 0.0:
            raise ValueError("gate jitter sigma must be non-negative")

    def route_delay_ps(self, routing_class: RoutingClass) -> float:
        """Nominal routing delay of one hop class."""
        if routing_class is RoutingClass.INTRA_LAB:
            return self.intra_lab_route_ps
        return self.inter_lab_route_ps


@dataclasses.dataclass(frozen=True)
class StageTiming:
    """Fully resolved timing of one ring stage at given (V, process) corner.

    ``static_delay_ps`` is the LUT + routing propagation delay; for STR
    stages ``charlie_ps`` carries the Charlie-effect magnitude (zero for
    IRO stages, which have no second input to interact with).

    ``supply_weight`` is the stage's *relative* response to a
    supply-induced delay modulation, referenced to a pure transistor
    delay: the sensitivity-weighted mean of the stage's components.  A
    plain LUT stage sits near 1.0; an STR stage whose delay is largely
    Charlie penalty (whose fitted voltage coefficient is lower) sits
    noticeably below — the mechanism behind the paper's claim that
    global deterministic jitter is attenuated in STRs.
    """

    lut_delay_ps: float
    routing_delay_ps: float
    charlie_ps: float
    jitter_sigma_ps: float
    supply_weight: float = 1.0

    @property
    def static_delay_ps(self) -> float:
        return self.lut_delay_ps + self.routing_delay_ps

    @property
    def effective_delay_ps(self) -> float:
        """Static delay plus the full Charlie penalty (s = 0 operating point)."""
        return self.static_delay_ps + self.charlie_ps


class DeviceTimingModel:
    """Resolves placements into per-stage timing at a voltage/process corner.

    Parameters
    ----------
    constants:
        Family timing constants (defaults match the paper calibration).
    charlie_sensitivity_provider:
        Optional callable ``(stage_count) -> (magnitude_ps, VoltageSensitivity)``
        giving the Charlie penalty of an STR of that length.  Supplied by
        :mod:`repro.fpga.calibration`; ``None`` builds IRO-only timing.
    """

    def __init__(
        self,
        constants: TimingConstants = TimingConstants(),
        charlie_sensitivity_provider=None,
    ) -> None:
        self._constants = constants
        self._charlie_provider = charlie_sensitivity_provider

    @property
    def constants(self) -> TimingConstants:
        return self._constants

    # ------------------------------------------------------------------
    # per-stage timing resolution
    # ------------------------------------------------------------------
    def stage_timings(
        self,
        placement: Placement,
        variation: Optional[DeviceVariation] = None,
        supply_v: float = NOMINAL_CORE_VOLTAGE,
        temperature_c: float = NOMINAL_TEMPERATURE_C,
        with_charlie: bool = False,
    ) -> List[StageTiming]:
        """Resolve the timing of every stage of a placed ring.

        ``with_charlie=True`` adds the STR Charlie penalty (requires a
        charlie provider); IRO callers leave it off.
        """
        constants = self._constants
        stage_count = placement.stage_count
        if variation is None:
            variation = DeviceVariation.nominal(max(placement.lut_indices) + 1)

        lut_factor_v = constants.transistor_sensitivity.delay_factor(
            supply_v
        ) * constants.transistor_temperature.delay_factor(temperature_c)
        route_factor_v = constants.interconnect_sensitivity.delay_factor(
            supply_v
        ) * constants.interconnect_temperature.delay_factor(temperature_c)

        charlie_nominal = 0.0
        charlie_factor_v = 1.0
        charlie_beta = 0.0
        if with_charlie:
            if self._charlie_provider is None:
                raise ValueError(
                    "this DeviceTimingModel has no Charlie provider; build it "
                    "via repro.fpga.calibration.cyclone_iii_calibration()"
                )
            charlie_nominal, charlie_sensitivity = self._charlie_provider(stage_count)
            charlie_beta = charlie_sensitivity.beta_per_volt
            # The confinement fit tells us how strongly the Charlie
            # penalty follows the supply relative to a transistor delay;
            # we apply the same fitted ratio to any global environmental
            # disturbance, temperature included (modelling assumption,
            # see DESIGN.md).
            charlie_temperature = TemperatureSensitivity(
                constants.transistor_temperature.coeff_per_c
                * charlie_beta
                / constants.transistor_sensitivity.beta_per_volt
            )
            charlie_factor_v = charlie_sensitivity.delay_factor(
                supply_v
            ) * charlie_temperature.delay_factor(temperature_c)

        beta_transistor = constants.transistor_sensitivity.beta_per_volt
        beta_interconnect = constants.interconnect_sensitivity.beta_per_volt

        timings: List[StageTiming] = []
        for stage in range(stage_count):
            lut_index = placement.lut_indices[stage]
            process_factor = variation.stage_factor(lut_index)
            lut_delay = constants.lut_delay_ps * process_factor * lut_factor_v
            route_delay = (
                constants.route_delay_ps(placement.hop_classes[stage])
                * variation.global_factor
                * route_factor_v
            )
            charlie = charlie_nominal * process_factor * charlie_factor_v
            # The local Gaussian jitter tracks the (scaled) gate delay: a
            # slower corner is proportionally noisier.
            jitter_sigma = constants.gate_jitter_sigma_ps * process_factor * lut_factor_v
            total_delay = lut_delay + route_delay + charlie
            supply_weight = (
                beta_transistor * lut_delay
                + beta_interconnect * route_delay
                + charlie_beta * charlie
            ) / (beta_transistor * total_delay)
            timings.append(
                StageTiming(
                    lut_delay_ps=lut_delay,
                    routing_delay_ps=route_delay,
                    charlie_ps=charlie,
                    jitter_sigma_ps=jitter_sigma,
                    supply_weight=supply_weight,
                )
            )
        return timings

    # ------------------------------------------------------------------
    # aggregates used by the analytic fast paths
    # ------------------------------------------------------------------
    def mean_stage_delay_ps(self, timings: Sequence[StageTiming]) -> float:
        """Mean static stage delay over a resolved ring."""
        return float(np.mean([timing.static_delay_ps for timing in timings]))

    def mean_effective_delay_ps(self, timings: Sequence[StageTiming]) -> float:
        """Mean static + Charlie delay over a resolved ring."""
        return float(np.mean([timing.effective_delay_ps for timing in timings]))
