"""Manufacturing process variability (paper Section V-C).

The paper quantifies *extra-device* variability: the same bitstream sent
to five boards yields slightly different ring frequencies (Table II).  Two
statistical layers reproduce that structure:

* a **global** per-device speed factor — all delays in one device share
  it (die-to-die / wafer-to-wafer variation), so it never averages out no
  matter how long the ring is;
* a **local** per-LUT mismatch factor — independent across LUT cells, so
  a frequency that averages ``L`` stage delays sees its contribution
  shrink like ``1/sqrt(L)``.

Both are modelled as multiplicative Gaussian factors around 1.0.  The
paper's Table II is consistent with a global sigma of ~0.15 % and a local
sigma of ~1.35 % (see ``repro.fpga.calibration``): the 3-stage IRO at
0.79 % is local-dominated, the 96-stage STR at 0.15 % is global-limited.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

import numpy as np

from repro.simulation.noise import SeedLike, make_rng


@dataclasses.dataclass(frozen=True)
class DeviceVariation:
    """Sampled process factors of one manufactured device.

    ``global_factor`` multiplies every delay in the device;
    ``lut_factors[i]`` additionally multiplies the delay of LUT ``i``.
    Factors are dimensionless, centred on 1.0.
    """

    global_factor: float
    lut_factors: np.ndarray

    def __post_init__(self) -> None:
        if self.global_factor <= 0.0:
            raise ValueError(f"global factor must be positive, got {self.global_factor}")
        factors = np.asarray(self.lut_factors, dtype=float)
        if factors.ndim != 1:
            raise ValueError("lut_factors must be one-dimensional")
        if np.any(factors <= 0.0):
            raise ValueError("all LUT factors must be positive")

    @property
    def lut_count(self) -> int:
        return int(np.asarray(self.lut_factors).size)

    def stage_factor(self, lut_index: int) -> float:
        """Combined multiplicative factor for one LUT's delay."""
        return float(self.global_factor * self.lut_factors[lut_index])

    def stage_factors(self) -> np.ndarray:
        """Combined factors for all LUTs at once."""
        return self.global_factor * np.asarray(self.lut_factors, dtype=float)

    @classmethod
    def nominal(cls, lut_count: int) -> "DeviceVariation":
        """A process-free device (all factors exactly 1)."""
        return cls(global_factor=1.0, lut_factors=np.ones(lut_count))


@dataclasses.dataclass(frozen=True)
class DeviceVariationBatch:
    """A manufactured *population*: the stacked factors of ``n`` devices.

    Row ``i`` holds the factors of device ``i``: ``global_factors[i]``
    multiplies every delay in that device and ``lut_factors[i, j]``
    additionally multiplies the delay of its LUT ``j``.  The stacked
    layout is what the PUF enrollment kernel consumes — one fancy-index
    per population instead of one Python loop per device.
    """

    global_factors: np.ndarray
    lut_factors: np.ndarray

    def __post_init__(self) -> None:
        globals_ = np.asarray(self.global_factors, dtype=float)
        luts = np.asarray(self.lut_factors, dtype=float)
        if globals_.ndim != 1:
            raise ValueError("global_factors must be one-dimensional (device,)")
        if luts.ndim != 2:
            raise ValueError("lut_factors must be two-dimensional (device, lut)")
        if luts.shape[0] != globals_.shape[0]:
            raise ValueError(
                f"factor arrays disagree on the device count: "
                f"{globals_.shape[0]} global rows vs {luts.shape[0]} LUT rows"
            )
        if globals_.size and (np.any(globals_ <= 0.0) or np.any(luts <= 0.0)):
            raise ValueError("all process factors must be positive")

    def __len__(self) -> int:
        return int(np.asarray(self.global_factors).shape[0])

    @property
    def device_count(self) -> int:
        return len(self)

    @property
    def lut_count(self) -> int:
        return int(np.asarray(self.lut_factors).shape[1])

    def device(self, index: int) -> DeviceVariation:
        """The single-device view of row ``index``."""
        return DeviceVariation(
            global_factor=float(np.asarray(self.global_factors)[index]),
            lut_factors=np.asarray(self.lut_factors, dtype=float)[index],
        )

    def stage_factors(self) -> np.ndarray:
        """Combined ``(device, lut)`` multiplicative factors."""
        return np.asarray(self.global_factors, dtype=float)[:, None] * np.asarray(
            self.lut_factors, dtype=float
        )


@dataclasses.dataclass(frozen=True)
class ProcessVariation:
    """Statistical model of the manufacturing spread of a device family.

    Parameters
    ----------
    global_sigma_rel:
        Relative standard deviation of the per-device speed factor.
    local_sigma_rel:
        Relative standard deviation of the per-LUT mismatch factor.
    """

    global_sigma_rel: float
    local_sigma_rel: float

    def __post_init__(self) -> None:
        if self.global_sigma_rel < 0.0:
            raise ValueError(f"global sigma must be non-negative, got {self.global_sigma_rel}")
        if self.local_sigma_rel < 0.0:
            raise ValueError(f"local sigma must be non-negative, got {self.local_sigma_rel}")

    def sample_device(self, lut_count: int, seed: SeedLike = None) -> DeviceVariation:
        """Manufacture one device: draw its global and per-LUT factors.

        Factors are clipped at 3 sigma away from 1.0 toward zero so that
        a pathological draw can never produce a non-positive delay.
        """
        if lut_count < 1:
            raise ValueError(f"lut_count must be positive, got {lut_count}")
        rng = make_rng(seed)
        global_factor = _positive_normal(rng, self.global_sigma_rel, size=None)
        lut_factors = _positive_normal(rng, self.local_sigma_rel, size=lut_count)
        return DeviceVariation(global_factor=float(global_factor), lut_factors=np.atleast_1d(lut_factors))

    def sample_device_batch(
        self, lut_count: int, count: int, seed: SeedLike = None
    ) -> DeviceVariationBatch:
        """Manufacture ``count`` devices from per-device spawned streams.

        Device ``i`` draws from child seed ``i`` of
        :func:`repro.parallel.seeds.spawn_seeds` with exactly the draw
        order of :meth:`sample_device`, so the batch is **bit-identical**
        to a loop of ``sample_device`` calls over the same child seeds.
        That identity is what makes chunked/parallel PUF enrollment
        independent of chunk boundaries and job counts: any contiguous
        slice of the population can be manufactured in any process and
        still yield the same factors.
        """
        from repro.parallel.seeds import spawn_seeds

        if count < 0:
            raise ValueError(f"device count must be non-negative, got {count}")
        return self.sample_devices(lut_count, spawn_seeds(seed, count))

    def sample_devices(
        self, lut_count: int, seeds: Sequence[Optional[int]]
    ) -> DeviceVariationBatch:
        """Manufacture one device per seed, stacked into a batch.

        This is the chunk-level entry point of
        :meth:`sample_device_batch`: the enrollment pipeline spawns the
        whole population's child seeds once, then hands each worker its
        contiguous slice.
        """
        if lut_count < 1:
            raise ValueError(f"lut_count must be positive, got {lut_count}")
        count = len(seeds)
        global_factors = np.empty(count, dtype=float)
        lut_factors = np.empty((count, lut_count), dtype=float)
        for index, child in enumerate(seeds):
            rng = make_rng(child)
            global_factors[index] = _positive_normal(rng, self.global_sigma_rel, size=None)
            lut_factors[index] = _positive_normal(rng, self.local_sigma_rel, size=lut_count)
        return DeviceVariationBatch(global_factors=global_factors, lut_factors=lut_factors)

    @classmethod
    def none(cls) -> "ProcessVariation":
        """A perfect process (useful for deterministic timing tests)."""
        return cls(global_sigma_rel=0.0, local_sigma_rel=0.0)


def _positive_normal(rng: np.random.Generator, sigma: float, size: Optional[int]):
    """Draw N(1, sigma^2) clipped to stay strictly positive."""
    if sigma == 0.0:
        return 1.0 if size is None else np.ones(size)
    draw = rng.normal(1.0, sigma, size=size)
    floor = max(1.0 - 3.0 * sigma, 1e-3)
    return np.clip(draw, floor, None)
