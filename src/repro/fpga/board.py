"""Boards and board banks — the experiment's physical population.

A :class:`Board` bundles one manufactured device (a sampled
:class:`~repro.fpga.process.DeviceVariation`), the family calibration and
a power supply setting.  A :class:`BoardBank` manufactures several boards
from the same process model, which is how the paper's five-board
extra-device experiment (Table II) is reproduced: the same "bitstream"
(placement + ring configuration) is resolved on every board of the bank.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

from repro.fpga.calibration import CalibratedTiming, cyclone_iii_calibration
from repro.fpga.device import DeviceTimingModel, StageTiming
from repro.fpga.placement import Placement
from repro.fpga.process import DeviceVariation
from repro.fpga.voltage import SupplySpec
from repro.simulation.noise import (
    ConstantModulation,
    DeterministicModulation,
    SinusoidalModulation,
    make_rng,
)

#: Enough LUTs for the largest rings studied plus auxiliary logic.
DEFAULT_DEVICE_LUT_COUNT: int = 1024


class Board:
    """One board: a manufactured device plus its supply.

    Parameters
    ----------
    variation:
        Sampled process factors of this board's device.
    supply:
        Core supply setting; defaults to a clean 1.2 V.
    calibration:
        Family calibration; defaults to the Cyclone III reference.
    name:
        Label used in reports ("board 1" ... "board 5" in the paper).
    """

    def __init__(
        self,
        variation: Optional[DeviceVariation] = None,
        supply: SupplySpec = SupplySpec(),
        calibration: Optional[CalibratedTiming] = None,
        name: str = "board",
    ) -> None:
        self._calibration = calibration if calibration is not None else cyclone_iii_calibration()
        self._variation = (
            variation
            if variation is not None
            else DeviceVariation.nominal(DEFAULT_DEVICE_LUT_COUNT)
        )
        self._supply = supply
        self._timing_model = self._calibration.timing_model()
        self.name = name

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def calibration(self) -> CalibratedTiming:
        return self._calibration

    @property
    def variation(self) -> DeviceVariation:
        return self._variation

    @property
    def supply(self) -> SupplySpec:
        return self._supply

    @property
    def timing_model(self) -> DeviceTimingModel:
        return self._timing_model

    # ------------------------------------------------------------------
    # configuration
    # ------------------------------------------------------------------
    def with_supply(self, supply: SupplySpec) -> "Board":
        """Return a copy of this board at a different supply setting.

        The device (process sample) is shared — this models turning the
        voltage knob on the same physical board, which is exactly what
        the Fig. 8 sweep does.
        """
        return Board(
            variation=self._variation,
            supply=supply,
            calibration=self._calibration,
            name=self.name,
        )

    def resolve(self, placement: Placement, with_charlie: bool = False) -> List[StageTiming]:
        """Resolve a placed ring's stage timings on this board."""
        return self._timing_model.stage_timings(
            placement,
            variation=self._variation,
            supply_v=self._supply.voltage_v,
            temperature_c=self._supply.temperature_c,
            with_charlie=with_charlie,
        )

    def supply_modulation(self) -> DeterministicModulation:
        """Deterministic delay modulation induced by this board's supply.

        An ideal regulator yields the identity modulation; residual
        ripple becomes a sinusoidal delay modulation whose relative
        amplitude follows the transistor voltage sensitivity.
        """
        if not self._supply.has_ripple:
            return ConstantModulation(0.0)
        beta = self._calibration.constants.transistor_sensitivity.beta_per_volt
        voltage_amplitude = self._supply.ripple_fraction * self._supply.voltage_v
        # A voltage dip of dV scales delays by ~ 1 + beta * dV.
        return SinusoidalModulation(
            amplitude=beta * voltage_amplitude,
            period_ps=self._supply.ripple_period_ps,
        )

    def __repr__(self) -> str:
        return f"Board(name={self.name!r}, supply={self._supply!r})"


@dataclasses.dataclass(frozen=True)
class BoardBank:
    """A set of boards manufactured from the same process model."""

    boards: Sequence[Board]

    def __post_init__(self) -> None:
        if len(self.boards) == 0:
            raise ValueError("a board bank needs at least one board")

    def __len__(self) -> int:
        return len(self.boards)

    def __iter__(self):
        return iter(self.boards)

    def __getitem__(self, index: int) -> Board:
        return self.boards[index]

    @classmethod
    def manufacture(
        cls,
        board_count: int = 5,
        seed=0,
        supply: SupplySpec = SupplySpec(),
        calibration: Optional[CalibratedTiming] = None,
        lut_count: int = DEFAULT_DEVICE_LUT_COUNT,
    ) -> "BoardBank":
        """Manufacture ``board_count`` boards (five in the paper).

        Each board's device is an independent draw from the calibrated
        process model; the supply and calibration are shared.
        """
        if board_count < 1:
            raise ValueError(f"board count must be positive, got {board_count}")
        calibration = calibration if calibration is not None else cyclone_iii_calibration()
        rng = make_rng(seed)
        boards = [
            Board(
                variation=calibration.process.sample_device(lut_count, seed=rng),
                supply=supply,
                calibration=calibration,
                name=f"board {index + 1}",
            )
            for index in range(board_count)
        ]
        return cls(boards=tuple(boards))
