"""Supply-voltage dependence of propagation delays.

The paper observes (Fig. 8) that ring frequencies vary *linearly* with the
core supply voltage over the 1.0 V - 1.4 V sweep.  We therefore model the
delay of each timing component as::

    D(V) = D_nom / (1 + beta * (V - V_nom))

which makes the frequency of a ring built from a single component class
exactly linear in ``V``, with a normalized excursion over a 0.4 V sweep of
``delta_F = 0.4 * beta``.  Different component classes (transistor
switching, interconnect, the Charlie-effect penalty) carry different
``beta`` coefficients; the measured ring sensitivity is the delay-weighted
blend of its components' coefficients — the mechanism behind the STR's
improved robustness (Table I).
"""

from __future__ import annotations

import dataclasses

#: Nominal Cyclone III core voltage used throughout the paper.
NOMINAL_CORE_VOLTAGE: float = 1.2

#: Sweep bounds of Fig. 8 / Table I.
MIN_SWEEP_VOLTAGE: float = 1.0
MAX_SWEEP_VOLTAGE: float = 1.4

#: Nominal junction temperature; the [1]-style attacks also turn this knob.
NOMINAL_TEMPERATURE_C: float = 25.0


@dataclasses.dataclass(frozen=True)
class VoltageSensitivity:
    """Voltage-to-delay law of one timing component class.

    ``beta_per_volt`` is the linear frequency sensitivity: a component
    with ``beta = 1.25`` speeds up by 25 % for a +0.2 V overdrive.
    """

    beta_per_volt: float
    nominal_v: float = NOMINAL_CORE_VOLTAGE

    def __post_init__(self) -> None:
        if self.nominal_v <= 0.0:
            raise ValueError(f"nominal voltage must be positive, got {self.nominal_v}")

    def speedup(self, supply_v: float) -> float:
        """``1 + beta * (V - V_nom)`` — the frequency scale factor."""
        value = 1.0 + self.beta_per_volt * (supply_v - self.nominal_v)
        if value <= 0.0:
            raise ValueError(
                f"supply voltage {supply_v} V drives the delay model out of "
                f"range (speedup {value} <= 0)"
            )
        return value

    def delay_factor(self, supply_v: float) -> float:
        """Multiplier applied to the nominal delay at ``supply_v``."""
        return 1.0 / self.speedup(supply_v)


@dataclasses.dataclass(frozen=True)
class TemperatureSensitivity:
    """Linear temperature-to-delay law of one component class.

    ``coeff_per_c`` is the relative delay increase per degree above the
    nominal junction temperature — CMOS logic slows with heat, typically
    by a few 1e-4/K at these nodes.
    """

    coeff_per_c: float
    nominal_c: float = NOMINAL_TEMPERATURE_C

    def delay_factor(self, temperature_c: float) -> float:
        """Multiplier applied to the nominal delay at ``temperature_c``."""
        value = 1.0 + self.coeff_per_c * (temperature_c - self.nominal_c)
        if value <= 0.0:
            raise ValueError(
                f"temperature {temperature_c} C drives the delay model out "
                f"of range (factor {value} <= 0)"
            )
        return value


@dataclasses.dataclass(frozen=True)
class SupplySpec:
    """Core supply + thermal operating point, with regulator imperfection.

    The boards of the paper carry a linear regulator specifically to
    suppress supply-borne deterministic jitter; ``ripple_fraction``
    models the residual relative ripple that leaks through (0 for an
    ideal regulator).  ``temperature_c`` is the junction temperature —
    the second knob of the [1]-style environmental attacks.
    """

    voltage_v: float = NOMINAL_CORE_VOLTAGE
    temperature_c: float = NOMINAL_TEMPERATURE_C
    ripple_fraction: float = 0.0
    ripple_period_ps: float = 1.0e6  # 1 MHz ripple by default

    def __post_init__(self) -> None:
        if self.voltage_v <= 0.0:
            raise ValueError(f"supply voltage must be positive, got {self.voltage_v}")
        if not (-60.0 <= self.temperature_c <= 150.0):
            raise ValueError(
                f"temperature {self.temperature_c} C outside the modelled "
                "-60..150 C range"
            )
        if self.ripple_fraction < 0.0:
            raise ValueError(f"ripple fraction must be non-negative, got {self.ripple_fraction}")
        if self.ripple_period_ps <= 0.0:
            raise ValueError(f"ripple period must be positive, got {self.ripple_period_ps}")

    @property
    def has_ripple(self) -> bool:
        return self.ripple_fraction > 0.0
