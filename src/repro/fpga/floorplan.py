"""Floorplan-aware placement: LAB grid, distances, placement strategies.

The baseline model (`repro.fpga.placement`) knows only two routing
classes.  Real devices have a 2-D array of LABs, and the inter-LAB hop
delay grows with the Manhattan distance the net must cover — which is
why the authors place ring LUTs "manually (if possible in the same
Altera LAB)".  This module adds that geometry:

* :class:`LabGrid` — a rectangular array of LABs with LUT coordinates;
* :class:`FloorplanPlacement` — stage -> (LAB, offset) assignment with
  per-hop Manhattan distances;
* strategies: ``compact`` (the paper's hand placement: fill LABs in
  column order), ``scatter`` (a deliberately bad seeded-random spread —
  what an unconstrained placer might do), ``row`` (fill a single LAB
  row);
* :func:`routed_stage_delays` — distance-dependent hop delays that can
  feed the ring models directly, so placement quality becomes a
  measurable frequency/jitter effect rather than an anecdote.

The two-class baseline is the special case distance <= 1.
"""

from __future__ import annotations

import dataclasses
import enum
import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.simulation.noise import SeedLike, make_rng


class PlacementStrategy(enum.Enum):
    """How stages are assigned to LAB positions."""

    COMPACT = "compact"
    ROW = "row"
    SCATTER = "scatter"


@dataclasses.dataclass(frozen=True)
class LabGrid:
    """A rectangular LAB array.

    Cyclone III EP3C25-class devices have on the order of 60 x 25 LABs;
    the default grid is far smaller because the rings under study only
    need a handful.
    """

    columns: int = 8
    rows: int = 8
    lab_capacity: int = 16

    def __post_init__(self) -> None:
        if self.columns < 1 or self.rows < 1:
            raise ValueError("grid must have at least one LAB")
        if self.lab_capacity < 1:
            raise ValueError("LAB capacity must be positive")

    @property
    def lab_count(self) -> int:
        return self.columns * self.rows

    @property
    def lut_count(self) -> int:
        return self.lab_count * self.lab_capacity

    def lab_position(self, lab_index: int) -> Tuple[int, int]:
        """(column, row) of a LAB, column-major order."""
        if not (0 <= lab_index < self.lab_count):
            raise ValueError(f"LAB index {lab_index} outside the {self.lab_count}-LAB grid")
        return lab_index // self.rows, lab_index % self.rows

    def manhattan_distance(self, lab_a: int, lab_b: int) -> int:
        """LAB-to-LAB Manhattan distance."""
        col_a, row_a = self.lab_position(lab_a)
        col_b, row_b = self.lab_position(lab_b)
        return abs(col_a - col_b) + abs(row_a - row_b)


@dataclasses.dataclass(frozen=True)
class FloorplanPlacement:
    """Stage-to-LAB assignment with per-hop routing distances."""

    grid: LabGrid
    lab_indices: Tuple[int, ...]
    strategy: PlacementStrategy

    def __post_init__(self) -> None:
        if len(self.lab_indices) == 0:
            raise ValueError("placement cannot be empty")
        counts = {}
        for lab in self.lab_indices:
            counts[lab] = counts.get(lab, 0) + 1
            if counts[lab] > self.grid.lab_capacity:
                raise ValueError(
                    f"LAB {lab} holds {counts[lab]} stages, capacity is "
                    f"{self.grid.lab_capacity}"
                )

    @property
    def stage_count(self) -> int:
        return len(self.lab_indices)

    @property
    def lab_count(self) -> int:
        return len(set(self.lab_indices))

    def hop_distances(self) -> List[int]:
        """Manhattan distance of each hop (stage i -> i+1, cyclic)."""
        count = self.stage_count
        return [
            self.grid.manhattan_distance(
                self.lab_indices[i], self.lab_indices[(i + 1) % count]
            )
            for i in range(count)
        ]

    def total_wirelength(self) -> int:
        """Sum of hop distances — the placer's usual cost function."""
        return sum(self.hop_distances())


def place_on_grid(
    stage_count: int,
    grid: Optional[LabGrid] = None,
    strategy: PlacementStrategy = PlacementStrategy.COMPACT,
    seed: SeedLike = 0,
) -> FloorplanPlacement:
    """Place a ring on the LAB grid with the chosen strategy."""
    grid = grid if grid is not None else LabGrid()
    if stage_count < 1:
        raise ValueError(f"stage count must be positive, got {stage_count}")
    if stage_count > grid.lut_count:
        raise ValueError(
            f"{stage_count} stages exceed the grid's {grid.lut_count} LUTs"
        )
    labs_needed = math.ceil(stage_count / grid.lab_capacity)
    if strategy is PlacementStrategy.COMPACT:
        # Fill adjacent LABs in index (column-major) order.
        lab_sequence = list(range(labs_needed))
    elif strategy is PlacementStrategy.ROW:
        # One LAB per grid row position along the first row.
        if labs_needed > grid.columns:
            raise ValueError("ring does not fit in a single LAB row")
        lab_sequence = [column * grid.rows for column in range(labs_needed)]
    elif strategy is PlacementStrategy.SCATTER:
        rng = make_rng(seed)
        lab_sequence = list(
            rng.choice(grid.lab_count, size=labs_needed, replace=False)
        )
    else:  # pragma: no cover - exhaustive enum
        raise ValueError(f"unknown strategy {strategy!r}")

    lab_indices: List[int] = []
    remaining = stage_count
    for lab in lab_sequence:
        take = min(grid.lab_capacity, remaining)
        lab_indices.extend([int(lab)] * take)
        remaining -= take
    return FloorplanPlacement(
        grid=grid, lab_indices=tuple(lab_indices), strategy=strategy
    )


def routed_stage_delays(
    placement: FloorplanPlacement,
    lut_delay_ps: float = 200.0,
    intra_lab_route_ps: float = 66.0,
    inter_lab_base_ps: float = 161.0,
    per_hop_distance_ps: float = 35.0,
) -> np.ndarray:
    """Per-stage delays with distance-dependent inter-LAB routing.

    A hop inside a LAB costs the intra delay; a hop to another LAB costs
    the inter-LAB base plus ``per_hop_distance_ps`` for every Manhattan
    step beyond the first — the linear wire-delay model every placer
    optimizes against.  Distance-1 hops reproduce the baseline two-class
    model exactly.
    """
    if min(lut_delay_ps, intra_lab_route_ps, inter_lab_base_ps, per_hop_distance_ps) < 0:
        raise ValueError("delays must be non-negative")
    delays = []
    for distance in placement.hop_distances():
        if distance == 0:
            route = intra_lab_route_ps
        else:
            route = inter_lab_base_ps + per_hop_distance_ps * (distance - 1)
        delays.append(lut_delay_ps + route)
    return np.asarray(delays)
