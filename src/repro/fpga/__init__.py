"""FPGA device substrate — the simulated replacement for the paper's boards.

The paper's measurements were taken on five boards featuring Altera
Cyclone III devices.  This subpackage models everything those boards
contributed to the experiment:

* :mod:`repro.fpga.voltage` — how the core supply voltage scales the
  propagation delays (the knob behind Fig. 8 / Table I).
* :mod:`repro.fpga.process` — inter-device ("extra-device") and
  intra-device manufacturing variability (behind Table II).
* :mod:`repro.fpga.device` — the LUT / LAB / routing timing model.
* :mod:`repro.fpga.placement` — placing ring stages into LABs, which
  decides the routing-delay class of every hop.
* :mod:`repro.fpga.board` — a board (device + regulator + supply) and
  board banks programmed with the same "bitstream".
* :mod:`repro.fpga.calibration` — the fitted timing constants that anchor
  the model to the paper's Tables I and II, including the empirical
  token-confinement model (see DESIGN.md Section 5).
"""

from repro.fpga.voltage import VoltageSensitivity, SupplySpec, NOMINAL_CORE_VOLTAGE
from repro.fpga.process import ProcessVariation, DeviceVariation
from repro.fpga.device import DeviceTimingModel, StageTiming, TimingConstants
from repro.fpga.placement import Placement, place_ring, RoutingClass
from repro.fpga.board import Board, BoardBank
from repro.fpga.floorplan import (
    FloorplanPlacement,
    LabGrid,
    PlacementStrategy,
    place_on_grid,
    routed_stage_delays,
)
from repro.fpga.netlist import Bitstream, Netlist, iro_netlist, str_netlist
from repro.fpga.calibration import (
    ConfinementModel,
    CalibratedTiming,
    cyclone_iii_calibration,
    fit_confinement_from_table1,
    TABLE1_TARGETS,
    TABLE2_TARGETS,
)

__all__ = [
    "VoltageSensitivity",
    "SupplySpec",
    "NOMINAL_CORE_VOLTAGE",
    "ProcessVariation",
    "DeviceVariation",
    "DeviceTimingModel",
    "StageTiming",
    "TimingConstants",
    "Placement",
    "place_ring",
    "RoutingClass",
    "Board",
    "BoardBank",
    "FloorplanPlacement",
    "LabGrid",
    "PlacementStrategy",
    "place_on_grid",
    "routed_stage_delays",
    "Bitstream",
    "Netlist",
    "iro_netlist",
    "str_netlist",
    "ConfinementModel",
    "CalibratedTiming",
    "cyclone_iii_calibration",
    "fit_confinement_from_table1",
    "TABLE1_TARGETS",
    "TABLE2_TARGETS",
]
