"""Jitter and delay-modulation sources (paper Section IV).

The paper's jitter model distinguishes two contributions to every stage
propagation delay:

* **local Gaussian jitter** — independent ``N(0, sigma_g^2)`` noise added to
  each gate crossing.  This is the entropy source.  The paper measures
  ``sigma_g ~= 2 ps`` per Cyclone III LUT.
* **global deterministic jitter** — a common, environment-driven delay
  modulation (supply ripple, temperature drift, an attacker's injected
  signal).  It affects every gate in the device identically at a given
  instant, which is exactly what makes it dangerous for IROs (it
  accumulates linearly over one period, Section IV-B) and harmless for
  STRs (successive tokens see the same shift and it cancels).

:class:`NoiseSource` objects model the first contribution,
:class:`DeterministicModulation` objects the second.  Both are explicit
about their randomness: noise sources are constructed from a seed or a
``numpy.random.Generator`` so that every simulation in this library is
reproducible.
"""

from __future__ import annotations

import abc
from typing import Optional, Sequence, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def make_rng(seed: SeedLike) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` from a seed or pass one through.

    ``None`` yields a freshly-seeded generator; an ``int`` yields a
    deterministic one; an existing generator is returned unchanged so that
    several components can share one stream when a caller wants them
    coupled.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


class NoiseSource(abc.ABC):
    """Source of per-transition random delay noise."""

    @abc.abstractmethod
    def sample(self) -> float:
        """Draw one delay-noise value in picoseconds."""

    @abc.abstractmethod
    def sample_array(self, count: int) -> np.ndarray:
        """Draw ``count`` delay-noise values at once (fast path)."""

    @property
    @abc.abstractmethod
    def sigma_ps(self) -> float:
        """Standard deviation of the noise in picoseconds."""


class NoNoise(NoiseSource):
    """A noiseless source — useful for deterministic timing checks."""

    def sample(self) -> float:
        return 0.0

    def sample_array(self, count: int) -> np.ndarray:
        return np.zeros(count)

    @property
    def sigma_ps(self) -> float:
        return 0.0

    def __repr__(self) -> str:
        return "NoNoise()"


class GaussianJitter(NoiseSource):
    """Zero-mean Gaussian delay noise ``N(0, sigma_g^2)``.

    This is the paper's model of the local jitter contributed by one LUT
    cell.  Negative samples are legitimate: they model a crossing that is
    faster than nominal.  The ring models guarantee overall causality by
    construction (the nominal delay dominates the noise scale by two
    orders of magnitude).

    Parameters
    ----------
    sigma_ps:
        Standard deviation of the per-crossing delay, in picoseconds.
        The paper's measured value for a Cyclone III LUT is ~2 ps.
    seed:
        Seed or generator for reproducible sampling.
    """

    def __init__(self, sigma_ps: float, seed: SeedLike = None) -> None:
        if sigma_ps < 0.0:
            raise ValueError(f"sigma_ps must be non-negative, got {sigma_ps}")
        self._sigma_ps = float(sigma_ps)
        self._rng = make_rng(seed)

    def sample(self) -> float:
        if self._sigma_ps == 0.0:
            return 0.0
        return float(self._rng.normal(0.0, self._sigma_ps))

    def sample_array(self, count: int) -> np.ndarray:
        if self._sigma_ps == 0.0:
            return np.zeros(count)
        return self._rng.normal(0.0, self._sigma_ps, size=count)

    @property
    def sigma_ps(self) -> float:
        return self._sigma_ps

    def __repr__(self) -> str:
        return f"GaussianJitter(sigma_ps={self._sigma_ps})"


class DeterministicModulation(abc.ABC):
    """Global deterministic delay modulation.

    A modulation maps an absolute simulation time to a *relative* delay
    factor: a stage whose nominal delay is ``D`` takes ``D * (1 +
    factor(t))`` at time ``t``.  Because it is a function of global time
    only, the same factor applies to every gate in the device — which is
    the defining property of the paper's "global deterministic jitter".
    """

    @abc.abstractmethod
    def factor(self, time_ps: float) -> float:
        """Relative delay modulation at ``time_ps`` (0.0 = nominal)."""

    def factor_array(self, times_ps: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`factor`; subclasses override for speed."""
        return np.array([self.factor(float(t)) for t in np.asarray(times_ps)])


class ConstantModulation(DeterministicModulation):
    """A time-independent delay scale (e.g. a static voltage offset)."""

    def __init__(self, factor_value: float = 0.0) -> None:
        self._factor = float(factor_value)

    def factor(self, time_ps: float) -> float:
        return self._factor

    def factor_array(self, times_ps: np.ndarray) -> np.ndarray:
        return np.full(np.asarray(times_ps).shape, self._factor)

    def __repr__(self) -> str:
        return f"ConstantModulation({self._factor})"


class SinusoidalModulation(DeterministicModulation):
    """Sinusoidal delay modulation — the classic supply-ripple attack.

    ``factor(t) = amplitude * sin(2*pi*t/period + phase)``
    """

    def __init__(self, amplitude: float, period_ps: float, phase_rad: float = 0.0) -> None:
        if period_ps <= 0.0:
            raise ValueError(f"period_ps must be positive, got {period_ps}")
        self.amplitude = float(amplitude)
        self.period_ps = float(period_ps)
        self.phase_rad = float(phase_rad)

    def factor(self, time_ps: float) -> float:
        # numpy's sin, not math.sin: libm and numpy round a few percent
        # of inputs differently, and the scalar path must stay
        # bit-identical to factor_array (used by the batch kernel).
        return self.amplitude * float(
            np.sin(2.0 * np.pi * time_ps / self.period_ps + self.phase_rad)
        )

    def factor_array(self, times_ps: np.ndarray) -> np.ndarray:
        times = np.asarray(times_ps, dtype=float)
        return self.amplitude * np.sin(2.0 * np.pi * times / self.period_ps + self.phase_rad)

    def __repr__(self) -> str:
        return (
            f"SinusoidalModulation(amplitude={self.amplitude}, "
            f"period_ps={self.period_ps}, phase_rad={self.phase_rad})"
        )


class StepModulation(DeterministicModulation):
    """A delay step at a given instant (abrupt supply/temperature change)."""

    def __init__(self, step_time_ps: float, factor_after: float, factor_before: float = 0.0) -> None:
        self.step_time_ps = float(step_time_ps)
        self.factor_before = float(factor_before)
        self.factor_after = float(factor_after)

    def factor(self, time_ps: float) -> float:
        return self.factor_after if time_ps >= self.step_time_ps else self.factor_before

    def factor_array(self, times_ps: np.ndarray) -> np.ndarray:
        times = np.asarray(times_ps, dtype=float)
        return np.where(times >= self.step_time_ps, self.factor_after, self.factor_before)

    def __repr__(self) -> str:
        return (
            f"StepModulation(step_time_ps={self.step_time_ps}, "
            f"factor_after={self.factor_after}, factor_before={self.factor_before})"
        )


class RampModulation(DeterministicModulation):
    """A linear delay drift, e.g. slow die heating after power-up."""

    def __init__(self, slope_per_ps: float, start_time_ps: float = 0.0) -> None:
        self.slope_per_ps = float(slope_per_ps)
        self.start_time_ps = float(start_time_ps)

    def factor(self, time_ps: float) -> float:
        elapsed = max(0.0, time_ps - self.start_time_ps)
        return self.slope_per_ps * elapsed

    def factor_array(self, times_ps: np.ndarray) -> np.ndarray:
        times = np.asarray(times_ps, dtype=float)
        return self.slope_per_ps * np.clip(times - self.start_time_ps, 0.0, None)

    def __repr__(self) -> str:
        return f"RampModulation(slope_per_ps={self.slope_per_ps}, start_time_ps={self.start_time_ps})"


class CompositeModulation(DeterministicModulation):
    """Sum of several modulations (ripple on top of a drift, etc.)."""

    def __init__(self, components: Sequence[DeterministicModulation]) -> None:
        self._components = list(components)

    def factor(self, time_ps: float) -> float:
        return sum(component.factor(time_ps) for component in self._components)

    def factor_array(self, times_ps: np.ndarray) -> np.ndarray:
        times = np.asarray(times_ps, dtype=float)
        total = np.zeros(times.shape)
        for component in self._components:
            total = total + component.factor_array(times)
        return total

    @property
    def components(self) -> Sequence[DeterministicModulation]:
        return tuple(self._components)

    def __repr__(self) -> str:
        return f"CompositeModulation({self._components!r})"


def no_modulation() -> ConstantModulation:
    """Return the identity modulation (nominal delays everywhere)."""
    return ConstantModulation(0.0)
