"""Edge-trace analysis: turning recorded edges into periods and jitter.

The paper's measurable quantities all derive from the sequence of edge
instants of an oscillating node: period populations (for the period-jitter
histograms of Fig. 9), half periods, duty cycles, and mean frequency.
:class:`EdgeTrace` wraps a monotone array of edge times and provides those
derivations, discarding a configurable *warm-up* prefix so that start-up
transients (before an STR locks into its steady regime) do not pollute the
statistics.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np

from repro.simulation.events import Edge
from repro.units import period_ps_to_mhz


def half_periods_from_edges(edge_times_ps: np.ndarray) -> np.ndarray:
    """Return consecutive edge-to-edge intervals (half periods)."""
    times = np.asarray(edge_times_ps, dtype=float)
    if times.ndim != 1:
        raise ValueError("edge times must be a 1-D array")
    return np.diff(times)


def periods_from_edges(edge_times_ps: np.ndarray, start_polarity_index: int = 0) -> np.ndarray:
    """Return full periods measured between same-polarity edges.

    ``start_polarity_index`` selects which alternating subsequence to use
    (0 keeps edges 0, 2, 4, ...; 1 keeps edges 1, 3, 5, ...).  Measuring
    between same-polarity edges is how a scope period measurement works
    and makes the result insensitive to duty-cycle asymmetry.
    """
    if start_polarity_index not in (0, 1):
        raise ValueError(f"start_polarity_index must be 0 or 1, got {start_polarity_index}")
    times = np.asarray(edge_times_ps, dtype=float)
    same_polarity = times[start_polarity_index::2]
    return np.diff(same_polarity)


class EdgeTrace:
    """An immutable, time-ordered record of one node's edges.

    Parameters
    ----------
    edge_times_ps:
        Strictly increasing edge instants in picoseconds.
    first_value:
        Logic value the signal takes at the *first* edge.  Only needed by
        duty-cycle computations.
    """

    def __init__(self, edge_times_ps: Sequence[float], first_value: int = 1) -> None:
        times = np.asarray(edge_times_ps, dtype=float)
        if times.ndim != 1:
            raise ValueError("edge times must be one-dimensional")
        if times.size >= 2 and not np.all(np.diff(times) > 0):
            raise ValueError("edge times must be strictly increasing")
        if first_value not in (0, 1):
            raise ValueError(f"first_value must be 0 or 1, got {first_value}")
        self._times = times
        self._first_value = first_value

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(cls, edges: Iterable[Edge]) -> "EdgeTrace":
        """Build a trace from simulator :class:`Edge` records."""
        edge_list: List[Edge] = list(edges)
        if not edge_list:
            return cls(np.empty(0), first_value=1)
        return cls(
            np.array([edge.time_ps for edge in edge_list]),
            first_value=edge_list[0].value,
        )

    def skip_edges(self, count: int) -> "EdgeTrace":
        """Return a trace with the first ``count`` edges removed (warm-up)."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if count == 0:
            return self
        first_value = self._first_value if count % 2 == 0 else 1 - self._first_value
        return EdgeTrace(self._times[count:], first_value=first_value)

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def times_ps(self) -> np.ndarray:
        """Edge instants in picoseconds (read-only view)."""
        view = self._times.view()
        view.flags.writeable = False
        return view

    @property
    def first_value(self) -> int:
        return self._first_value

    def __len__(self) -> int:
        return int(self._times.size)

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    def half_periods_ps(self) -> np.ndarray:
        """Edge-to-edge intervals."""
        return half_periods_from_edges(self._times)

    def periods_ps(self, polarity_index: int = 0) -> np.ndarray:
        """Full periods between same-polarity edges."""
        return periods_from_edges(self._times, polarity_index)

    def mean_period_ps(self) -> float:
        """Mean oscillation period, requiring at least two full periods."""
        periods = self.periods_ps()
        if periods.size == 0:
            raise ValueError("trace is too short to contain a full period")
        return float(np.mean(periods))

    def mean_frequency_mhz(self) -> float:
        """Mean oscillation frequency in MHz."""
        return period_ps_to_mhz(self.mean_period_ps())

    def period_jitter_ps(self) -> float:
        """Standard deviation of the period population (sigma_period).

        This is the paper's definition of *period jitter* (Section IV):
        the standard deviation of a population of measured periods.
        """
        periods = self.periods_ps()
        if periods.size < 2:
            raise ValueError("need at least two periods to estimate jitter")
        return float(np.std(periods, ddof=1))

    def cycle_to_cycle_jitter_ps(self) -> float:
        """Std deviation of the difference between successive periods."""
        periods = self.periods_ps()
        if periods.size < 3:
            raise ValueError("need at least three periods for cycle-to-cycle jitter")
        return float(np.std(np.diff(periods), ddof=1))

    def duty_cycle(self) -> float:
        """Fraction of time the signal is high, over whole half-periods."""
        half_periods = self.half_periods_ps()
        if half_periods.size == 0:
            raise ValueError("trace is too short to compute a duty cycle")
        # half_periods[k] is the time spent at the value set by edge k.
        values = np.empty(half_periods.size, dtype=float)
        values[0::2] = self._first_value
        values[1::2] = 1 - self._first_value
        return float(np.sum(half_periods * values) / np.sum(half_periods))
