"""Discrete-event simulation substrate.

This subpackage provides the generic machinery the ring models are built
on: a heap-based event engine (:mod:`repro.simulation.engine`), transition
records (:mod:`repro.simulation.events`), edge-trace analysis
(:mod:`repro.simulation.waveform`), the jitter/noise sources of the
paper's Section IV (:mod:`repro.simulation.noise`) and the vectorized
batch kernel that advances whole populations of rings at once
(:mod:`repro.simulation.batch`).
"""

from repro.simulation.batch import (
    BatchSimulationResult,
    BatchUnsupported,
    IROBatchSpec,
    STRBatchSpec,
    modulation_is_batchable,
    simulate_iro_batch,
    simulate_str_batch,
)
from repro.simulation.engine import Simulator, SimulationLimits, StopReason
from repro.simulation.events import Transition, Edge
from repro.simulation.noise import (
    GaussianJitter,
    NoNoise,
    NoiseSource,
    DeterministicModulation,
    ConstantModulation,
    SinusoidalModulation,
    StepModulation,
    RampModulation,
    CompositeModulation,
)
from repro.simulation.waveform import EdgeTrace, periods_from_edges, half_periods_from_edges

__all__ = [
    "BatchSimulationResult",
    "BatchUnsupported",
    "IROBatchSpec",
    "STRBatchSpec",
    "modulation_is_batchable",
    "simulate_iro_batch",
    "simulate_str_batch",
    "Simulator",
    "SimulationLimits",
    "StopReason",
    "Transition",
    "Edge",
    "NoiseSource",
    "GaussianJitter",
    "NoNoise",
    "DeterministicModulation",
    "ConstantModulation",
    "SinusoidalModulation",
    "StepModulation",
    "RampModulation",
    "CompositeModulation",
    "EdgeTrace",
    "periods_from_edges",
    "half_periods_from_edges",
]
