"""Vectorized batch ring-simulation kernel.

The per-event engine (:mod:`repro.simulation.engine`) advances one
transition at a time through a Python heap — faithful, but the pace is
set by the interpreter, not the hardware.  This module advances
*thousands of independent rings simultaneously* as 2-D numpy arrays
(axis 0 = ring instance, axis 1 = stage), which is what the million-ring
campaigns, PUF populations, and service-scale entropy workloads need.

Two kernels, one per ring family:

**IRO** (:func:`simulate_iro_batch`).  A free-running inverter ring is a
single event hopping stage to stage, so a whole run is one prefix sum::

    t_k = t_{k-1} + D_{k mod L} + N(0, sigma_{k mod L}^2)

The kernel tiles the per-stage delays across the event axis, injects the
Gaussian jitter of :mod:`repro.simulation.noise` in one vectorized draw
per ring, clamps the causality guard, and ``cumsum``s.  Because numpy's
``Generator`` produces the *same stream* whether sampled scalar-by-scalar
or as one array, and ``cumsum`` accumulates in the same order as the
event loop, the kernel is **bit-exact** against the event engine for the
same seed (the identity the batch==event tests pin down).

**STR** (:func:`simulate_str_batch`).  A self-timed ring is a marked
graph: stage ``i`` fires when it holds a token (``C_i != C_{i-1}``) and
its successor holds a bubble (``C_{i+1} == C_i``), and — crucially —
*neither neighbour of an enabled stage can fire again until it does*
(the token blocks the predecessor, the bubble blocks the successor).
Input timestamps of an enabled stage are therefore frozen, and the
event-driven run is equivalent to a synchronous fix-point iteration:
repeatedly fire **every** enabled stage of every ring in one vectorized
"wave", applying the Charlie-effect timing model

    t_fire = (t_f + t_r) / 2 + charlie((t_f - t_r)/2) + noise

to all of them at once.  The wave kernel reproduces the event engine's
firing times *exactly* for the same per-firing noise — bit-identical
when ``sigma = 0`` — and is statistically equivalent otherwise (the
noise stream is consumed in a different, but per-ring deterministic,
order; see docs/performance.md for the documented tolerance bounds).

Rings of different lengths batch together: stage axes are padded to the
longest ring and neighbours resolved through per-ring index maps, so a
mixed FIG11/FIG12-style workload runs as one kernel invocation.

Every result depends only on the owning ring's spec and seed — never on
which other rings share the batch — so batch composition is a pure
performance choice.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.simulation.noise import (
    ConstantModulation,
    DeterministicModulation,
    SeedLike,
    make_rng,
)
from repro.simulation.waveform import EdgeTrace
from repro.telemetry import default_registry, span

#: Causality guard used by the event engine when a noise draw would make
#: a delay non-positive; the kernels clamp with the same constant so the
#: guarded paths stay bit-compatible.
_CAUSALITY_GUARD_PS = 1e-6


class BatchUnsupported(ValueError):
    """A workload feature the batch kernel cannot reproduce exactly.

    Callers with a ``backend="batch"`` switch catch this and fall back
    to the per-event engine (counted under ``repro.batch.fallbacks``).
    """


def modulation_is_batchable(
    modulation: Optional[DeterministicModulation], family: str
) -> bool:
    """Whether the batch kernel handles ``modulation`` exactly.

    The STR wave kernel evaluates any modulation exactly (the event
    engine samples it at ``max(t_f, t_r)``, which the wave has).  The
    IRO kernel needs the factor to be time-independent — a hop's delay
    would otherwise depend on the not-yet-summed previous hop time — so
    only ``None``/:class:`ConstantModulation` qualify.
    """
    if family == "str":
        return True
    return modulation is None or isinstance(modulation, ConstantModulation)


@dataclasses.dataclass(frozen=True)
class IROBatchSpec:
    """One inverter ring instance of an IRO batch.

    ``edge_count`` is the number of edges to record at the output stage
    (the last stage), matching ``SimulationLimits(max_observed_edges)``.
    """

    stage_delays_ps: np.ndarray
    jitter_sigmas_ps: np.ndarray
    supply_weights: np.ndarray
    edge_count: int
    seed: SeedLike = None

    def __post_init__(self) -> None:
        delays = np.asarray(self.stage_delays_ps, dtype=float)
        if delays.ndim != 1 or delays.size < 1:
            raise ValueError("stage delays must be a non-empty 1-D sequence")
        if np.any(delays <= 0.0):
            raise ValueError("all stage delays must be positive")
        sigmas = np.broadcast_to(
            np.asarray(self.jitter_sigmas_ps, dtype=float), delays.shape
        ).copy()
        if np.any(sigmas < 0.0):
            raise ValueError("jitter sigmas must be non-negative")
        weights = np.broadcast_to(
            np.asarray(self.supply_weights, dtype=float), delays.shape
        ).copy()
        if self.edge_count < 1:
            raise ValueError(f"edge_count must be positive, got {self.edge_count}")
        object.__setattr__(self, "stage_delays_ps", delays)
        object.__setattr__(self, "jitter_sigmas_ps", sigmas)
        object.__setattr__(self, "supply_weights", weights)

    @classmethod
    def from_ring(cls, ring, edge_count: int, seed: SeedLike = None) -> "IROBatchSpec":
        """Spec for a resolved :class:`~repro.rings.iro.InverterRingOscillator`."""
        return cls(
            stage_delays_ps=ring.stage_delays_ps,
            jitter_sigmas_ps=ring.jitter_sigmas_ps,
            supply_weights=ring.supply_weights,
            edge_count=edge_count,
            seed=seed,
        )

    @property
    def stage_count(self) -> int:
        return int(self.stage_delays_ps.size)


@dataclasses.dataclass(frozen=True)
class STRBatchSpec:
    """One self-timed ring instance of an STR batch.

    The Charlie diagram of stage ``i`` is carried in its primitive form
    (``Ds``, ``s0``, ``Dcharlie`` — see :mod:`repro.core.charlie`), plus
    the per-stage drafting parameters, so the kernel stays free of any
    per-stage Python objects.
    """

    static_delays_ps: np.ndarray  # Ds = (Dff + Drr) / 2
    separation_offsets_ps: np.ndarray  # s0 = (Drr - Dff) / 2
    charlie_ps: np.ndarray  # Dcharlie
    jitter_sigmas_ps: np.ndarray
    supply_weights: np.ndarray
    drafting_amplitudes_ps: np.ndarray
    drafting_time_constants_ps: np.ndarray
    initial_state: np.ndarray
    edge_count: int
    output_stage: int = 0
    seed: SeedLike = None
    name: str = "STR"

    def __post_init__(self) -> None:
        static = np.asarray(self.static_delays_ps, dtype=float)
        if static.ndim != 1 or static.size < 3:
            raise ValueError("an STR spec needs at least 3 stages of delays")
        shape = static.shape

        def _stage_array(value, label: str) -> np.ndarray:
            array = np.broadcast_to(np.asarray(value, dtype=float), shape).copy()
            return array

        object.__setattr__(self, "static_delays_ps", static)
        object.__setattr__(
            self, "separation_offsets_ps", _stage_array(self.separation_offsets_ps, "s0")
        )
        object.__setattr__(self, "charlie_ps", _stage_array(self.charlie_ps, "Dc"))
        sigmas = _stage_array(self.jitter_sigmas_ps, "sigma")
        if np.any(sigmas < 0.0):
            raise ValueError("jitter sigmas must be non-negative")
        object.__setattr__(self, "jitter_sigmas_ps", sigmas)
        object.__setattr__(self, "supply_weights", _stage_array(self.supply_weights, "w"))
        object.__setattr__(
            self,
            "drafting_amplitudes_ps",
            _stage_array(self.drafting_amplitudes_ps, "drafting amplitude"),
        )
        object.__setattr__(
            self,
            "drafting_time_constants_ps",
            _stage_array(self.drafting_time_constants_ps, "drafting tau"),
        )
        state = np.asarray(self.initial_state, dtype=np.int8)
        if state.shape != shape:
            raise ValueError("initial state length must equal the stage count")
        object.__setattr__(self, "initial_state", state)
        if self.edge_count < 1:
            raise ValueError(f"edge_count must be positive, got {self.edge_count}")
        if not (0 <= self.output_stage < static.size):
            raise ValueError(
                f"output stage {self.output_stage} outside ring of {static.size}"
            )

    @classmethod
    def from_ring(
        cls,
        ring,
        edge_count: int,
        seed: SeedLike = None,
        output_stage: int = 0,
    ) -> "STRBatchSpec":
        """Spec for a resolved :class:`~repro.rings.str_ring.SelfTimedRing`."""
        diagrams = ring.diagrams
        return cls(
            static_delays_ps=np.array(
                [d.parameters.static_delay_ps for d in diagrams]
            ),
            separation_offsets_ps=np.array(
                [d.parameters.separation_offset_ps for d in diagrams]
            ),
            charlie_ps=np.array([d.parameters.charlie_ps for d in diagrams]),
            jitter_sigmas_ps=ring.jitter_sigmas_ps,
            supply_weights=ring.supply_weights,
            drafting_amplitudes_ps=np.array(
                [d.drafting.amplitude_ps for d in diagrams]
            ),
            drafting_time_constants_ps=np.array(
                [d.drafting.time_constant_ps for d in diagrams]
            ),
            initial_state=ring.initial_state,
            edge_count=edge_count,
            output_stage=output_stage,
            seed=seed,
            name=ring.name,
        )

    @property
    def stage_count(self) -> int:
        return int(self.static_delays_ps.size)


@dataclasses.dataclass(frozen=True)
class BatchSimulationResult:
    """Traces of every ring in a batch, in spec order.

    ``events_processed`` counts stage firings / hops across the whole
    batch; ``waves`` is the number of synchronous iterations the STR
    kernel ran (0 for IRO batches).
    """

    traces: List[EdgeTrace]
    events_processed: int
    waves: int = 0

    def __len__(self) -> int:
        return len(self.traces)


# ----------------------------------------------------------------------
# IRO kernel
# ----------------------------------------------------------------------
def _iro_noise(
    spec: IROBatchSpec, hop_count: int, rng: np.random.Generator
) -> np.ndarray:
    """Per-hop Gaussian jitter, bit-compatible with the event engine.

    The event process draws one scalar ``normal(0, sigma_stage)`` per
    scheduled hop and *skips the draw entirely* for zero-sigma stages.
    Reproducing that stream exactly means drawing standard normals only
    at the sigma>0 hop positions, in hop order, then scaling.
    """
    stage_count = spec.stage_count
    tiles = -(-hop_count // stage_count)  # ceil division
    tiled_sigmas = np.tile(spec.jitter_sigmas_ps, tiles)[:hop_count]
    noise = np.zeros(hop_count)
    mask = tiled_sigmas > 0.0
    active = int(np.count_nonzero(mask))
    if active == hop_count:
        noise = rng.standard_normal(hop_count) * tiled_sigmas
    elif active:
        noise[mask] = rng.standard_normal(active) * tiled_sigmas[mask]
    return noise


def simulate_iro_batch(
    specs: Sequence[IROBatchSpec],
    modulation: Optional[DeterministicModulation] = None,
) -> BatchSimulationResult:
    """Advance a batch of inverter rings with one cumsum per ring.

    Bit-exact against ``InverterRingOscillator.simulate`` for the same
    per-ring seed.  Only time-independent modulations are supported —
    :func:`modulation_is_batchable` tells callers in advance; anything
    else raises :class:`BatchUnsupported` (the event engine handles it).
    """
    specs = list(specs)
    if not modulation_is_batchable(modulation, "iro"):
        raise BatchUnsupported(
            f"IRO batch kernel cannot evaluate time-varying modulation "
            f"{modulation!r} exactly; use the event backend"
        )
    if not specs:
        return BatchSimulationResult(traces=[], events_processed=0)
    factor = 0.0 if modulation is None else modulation.factor(0.0)
    with span("batch_simulate", family="iro", rings=len(specs)) as tele:
        traces: List[EdgeTrace] = []
        total_events = 0
        for spec in specs:
            stage_count = spec.stage_count
            hop_count = spec.edge_count * stage_count
            tiles = -(-hop_count // stage_count)
            base = spec.stage_delays_ps
            if modulation is not None:
                # Same float ops as the event process: D * (1 + w * f).
                base = base * (1.0 + spec.supply_weights * factor)
            delays = np.tile(base, tiles)[:hop_count]
            delays = delays + _iro_noise(spec, hop_count, make_rng(spec.seed))
            np.maximum(delays, _CAUSALITY_GUARD_PS, where=delays <= 0.0, out=delays)
            times = np.cumsum(delays)
            # The observed node is the last stage: one edge per lap.
            edge_times = times[stage_count - 1 :: stage_count]
            traces.append(EdgeTrace(edge_times, first_value=1))
            total_events += hop_count
        tele.set("events", total_events)
        registry = default_registry()
        registry.counter("repro.batch.simulations").inc()
        registry.counter("repro.batch.rings").inc(len(specs))
        registry.counter("repro.batch.events").inc(total_events)
        return BatchSimulationResult(traces=traces, events_processed=total_events)


# ----------------------------------------------------------------------
# STR kernel
# ----------------------------------------------------------------------
def _noise_tensor(
    specs: Sequence[STRBatchSpec], budget: int, max_stages: int
) -> np.ndarray:
    """Pre-drawn jitter: ``[ring, n, stage]`` is the n-th firing's draw.

    Drawing the whole tensor up front keeps the per-wave cost at one
    gather instead of one Generator call per ring, and fixes a per-ring
    consumption order (stage-major within each firing index) so results
    are independent of batch composition.  All-zero-sigma rings skip
    their draws entirely (their slab stays zero).
    """
    noise = np.zeros((len(specs), budget, max_stages))
    for row, spec in enumerate(specs):
        if np.all(spec.jitter_sigmas_ps == 0.0):
            continue
        block = make_rng(spec.seed).standard_normal((budget, spec.stage_count))
        block *= spec.jitter_sigmas_ps[np.newaxis, :]
        noise[row, :, : spec.stage_count] = block
    return noise


def simulate_str_batch(
    specs: Sequence[STRBatchSpec],
    modulation: Optional[DeterministicModulation] = None,
) -> BatchSimulationResult:
    """Advance a batch of self-timed rings wave by wave.

    Each wave fires every enabled stage of every ring at once.  Firing
    times follow the event engine exactly (an enabled stage's inputs are
    frozen until it fires — see the module docstring), so the kernel is
    bit-identical to ``SelfTimedRing.simulate`` for noiseless rings and
    statistically equivalent with jitter.

    Two implementations share the same arithmetic, bit for bit: rings
    whose token pattern provably alternates between the even and the odd
    stages every wave (the standard evenly-spread configuration) run on
    a dense precomputed-structure kernel (:func:`_simulate_str_parity`);
    anything else falls back to the general masked-wave kernel.

    Raises ``RuntimeError`` when a ring deadlocks (no fireable stage
    left before its edge budget is met), mirroring the event path.
    """
    specs = list(specs)
    if not specs:
        return BatchSimulationResult(traces=[], events_processed=0)
    plans = _parity_plan(specs)
    if plans is not None:
        return _simulate_str_parity(specs, modulation, plans)
    return _simulate_str_waves(specs, modulation)


def _parity_plan(specs: Sequence[STRBatchSpec]) -> Optional[List[np.ndarray]]:
    """Prove, per ring, that firing alternates between even and odd stages.

    The *structural* evolution (which stages hold a token+bubble) never
    depends on timing, only on the state vector, so it can be iterated
    symbolically.  If wave 0 fires exactly one parity class, wave 1 the
    other, and two waves rotate the state by exactly two stages, then by
    ring symmetry the pattern repeats forever (parity classes are
    invariant under even rotations).  Returns each ring's wave-0 firing
    mask, or ``None`` when any ring breaks the pattern.
    """
    plans: List[np.ndarray] = []
    for spec in specs:
        stages = spec.stage_count
        if stages % 2:
            return None
        parity = np.arange(stages) % 2
        start = spec.initial_state.astype(np.int8)
        state = start.copy()
        masks = []
        for _ in range(2):
            pred = np.roll(state, 1)
            succ = np.roll(state, -1)
            enabled = (state != pred) & (succ == state)
            if not enabled.any():
                return None
            masks.append(enabled)
            state = np.where(enabled, pred, state)
        even, odd = parity == 0, parity == 1
        first_even = np.array_equal(masks[0], even) and np.array_equal(masks[1], odd)
        first_odd = np.array_equal(masks[0], odd) and np.array_equal(masks[1], even)
        if not (first_even or first_odd):
            return None
        if not np.array_equal(state, np.roll(start, 2)):
            return None
        plans.append(masks[0])
    return plans


def _noise_flat(
    specs: Sequence[STRBatchSpec], budget: int, bases: np.ndarray
) -> np.ndarray:
    """Pre-drawn jitter in flat layout: ``[n, base_r + stage]``.

    Draw-for-draw identical to :func:`_noise_tensor` for the same seeds
    and firing indices (both fill each ring's block row-major), so the
    parity and general kernels consume the very same values.
    """
    total = int(bases[-1]) + specs[-1].stage_count
    noise = np.zeros((budget, total))
    for spec, base in zip(specs, bases):
        if np.all(spec.jitter_sigmas_ps == 0.0):
            continue
        block = make_rng(spec.seed).standard_normal((budget, spec.stage_count))
        block *= spec.jitter_sigmas_ps[np.newaxis, :]
        noise[:, base : base + spec.stage_count] = block
    return noise


def _simulate_str_parity(
    specs: Sequence[STRBatchSpec],
    modulation: Optional[DeterministicModulation],
    plans: Sequence[np.ndarray],
) -> BatchSimulationResult:
    """Dense STR kernel for rings with a proven even/odd firing pattern.

    All rings' stages are packed into one flat vector (no padding), and
    because the firing sets are known a priori there is no per-wave
    enabled-mask computation, no done bookkeeping, and the noise row for
    firing index ``k`` is just row ``k`` of the pre-drawn matrix.  Every
    float operation mirrors :func:`_simulate_str_waves` exactly.
    """
    ring_count = len(specs)
    lengths = np.array([spec.stage_count for spec in specs], dtype=np.intp)
    bases = np.zeros(ring_count, dtype=np.intp)
    np.cumsum(lengths[:-1], out=bases[1:])
    total = int(lengths.sum())

    def packed(attr: str) -> np.ndarray:
        return np.concatenate([np.asarray(getattr(s, attr)) for s in specs])

    state = packed("initial_state").astype(np.int8)
    static_d = packed("static_delays_ps")
    offsets = packed("separation_offsets_ps")
    charlie = packed("charlie_ps")
    weights = packed("supply_weights")
    draft_amp = packed("drafting_amplitudes_ps")
    draft_tau = packed("drafting_time_constants_ps")
    drafting_active = bool(np.any(draft_amp > 0.0))
    pred = np.concatenate(
        [base + (np.arange(n) - 1) % n for base, n in zip(bases, lengths)]
    )
    succ = np.concatenate(
        [base + (np.arange(n) + 1) % n for base, n in zip(bases, lengths)]
    )
    last_time = np.zeros(total)

    edge_counts = np.array([spec.edge_count for spec in specs], dtype=np.intp)
    out_global = bases + np.array([spec.output_stage for spec in specs], dtype=np.intp)
    out_parity = np.array(
        [0 if plan[spec.output_stage] else 1 for spec, plan in zip(specs, plans)],
        dtype=np.intp,
    )
    budget = int(edge_counts.max()) + 4
    noise = _noise_flat(specs, budget, bases)

    # Per-parity structure, fixed for the whole run: firing positions,
    # their neighbours, and their parameter slices (gathered once).
    pos, pre, suc, par = [], [], [], []
    for phase in (0, 1):
        mask = np.concatenate(
            [plan if phase == 0 else ~plan for plan in plans]
        )
        p = np.flatnonzero(mask)
        pos.append(p)
        pre.append(pred.take(p))
        suc.append(succ.take(p))
        par.append(
            {
                "static": static_d.take(p),
                "offsets": offsets.take(p),
                "charlie": charlie.take(p),
                "weights": weights.take(p),
                "amp": draft_amp.take(p),
                "tau": draft_tau.take(p),
                "amp_positive": draft_amp.take(p) > 0.0,
            }
        )
    out_pos = [out_global[out_parity == phase] for phase in (0, 1)]
    out_rings = [np.flatnonzero(out_parity == phase) for phase in (0, 1)]

    edge_budget = int(edge_counts.max())
    edges_t = np.zeros((edge_budget, ring_count))
    first_values = np.full(ring_count, -1, dtype=np.int8)
    total_waves = int((2 * (edge_counts - 1) + out_parity).max()) + 1

    bufs = [
        {name: np.empty(pos[phase].size) for name in ("f", "r", "mean", "shift", "delay", "fire", "tmp", "z")}
        for phase in (0, 1)
    ]

    total_events = 0
    with span("batch_simulate", family="str", rings=ring_count, kernel="parity") as tele:
        for wave in range(total_waves):
            phase = wave & 1
            k = wave >> 1
            p = pos[phase]
            prm = par[phase]
            b = bufs[phase]
            f_t, r_t = b["f"], b["r"]
            mean_t, shifted, delay = b["mean"], b["shift"], b["delay"]
            fire_time, tmp = b["fire"], b["tmp"]

            last_time.take(pre[phase], out=f_t)
            last_time.take(suc[phase], out=r_t)
            np.add(f_t, r_t, out=mean_t)
            mean_t *= 0.5
            np.subtract(f_t, r_t, out=shifted)
            shifted *= 0.5
            shifted -= prm["offsets"]
            np.hypot(prm["charlie"], shifted, out=delay)
            delay += prm["static"]
            if drafting_active:
                np.add(mean_t, delay, out=tmp)
                tmp -= last_time.take(p)
                draft_mask = tmp > 0.0
                draft_mask &= prm["amp_positive"]
                np.maximum(tmp, 0.0, out=tmp)
                np.negative(tmp, out=tmp)
                tmp /= prm["tau"]
                np.exp(tmp, out=tmp)
                tmp *= prm["amp"]
                tmp *= draft_mask
                delay -= tmp
            floor_t = np.maximum(f_t, r_t, out=f_t)  # f_t no longer needed
            if modulation is not None:
                factor = modulation.factor_array(floor_t)
                factor *= prm["weights"]
                factor += 1.0
                delay *= factor
            noise[k].take(p, out=b["z"])
            delay += b["z"]

            np.add(mean_t, delay, out=fire_time)
            np.add(floor_t, _CAUSALITY_GUARD_PS, out=tmp)
            np.copyto(fire_time, tmp, where=fire_time <= floor_t)

            state.put(p, state.take(pre[phase]))
            last_time.put(p, fire_time)
            total_events += p.size

            rec = out_pos[phase]
            if rec.size:
                edges_t[k, out_rings[phase]] = last_time.take(rec)
                if k == 0:
                    first_values[out_rings[phase]] = state.take(rec)

        tele.set("events", total_events)
        tele.set("waves", total_waves)
        registry = default_registry()
        registry.counter("repro.batch.simulations").inc()
        registry.counter("repro.batch.rings").inc(ring_count)
        registry.counter("repro.batch.events").inc(total_events)
        registry.counter("repro.batch.waves").inc(total_waves)

    traces = [
        EdgeTrace(
            edges_t[: edge_counts[row], row].copy(),
            first_value=int(first_values[row]) if first_values[row] >= 0 else 1,
        )
        for row in range(ring_count)
    ]
    return BatchSimulationResult(
        traces=traces, events_processed=total_events, waves=total_waves
    )


def _simulate_str_waves(
    specs: Sequence[STRBatchSpec],
    modulation: Optional[DeterministicModulation] = None,
) -> BatchSimulationResult:
    """General masked-wave STR kernel (padded planes, any configuration)."""
    ring_count = len(specs)
    max_stages = max(spec.stage_count for spec in specs)
    max_edges = max(spec.edge_count for spec in specs)

    # --- padded state planes ------------------------------------------------
    state = np.zeros((ring_count, max_stages), dtype=np.int8)
    last_time = np.zeros((ring_count, max_stages))
    pred_idx = np.zeros((ring_count, max_stages), dtype=np.intp)
    succ_idx = np.zeros((ring_count, max_stages), dtype=np.intp)
    static_d = np.zeros((ring_count, max_stages))
    offsets = np.zeros((ring_count, max_stages))
    charlie = np.zeros((ring_count, max_stages))
    weights = np.zeros((ring_count, max_stages))
    draft_amp = np.zeros((ring_count, max_stages))
    draft_tau = np.ones((ring_count, max_stages))
    edge_counts = np.zeros(ring_count, dtype=np.intp)
    out_idx = np.zeros(ring_count, dtype=np.intp)

    for row, spec in enumerate(specs):
        stages = spec.stage_count
        state[row, :stages] = spec.initial_state
        # Padded columns point at themselves: state == state -> no token,
        # so they can never fire; no separate active mask is needed.
        pred_idx[row, :stages] = (np.arange(stages) - 1) % stages
        succ_idx[row, :stages] = (np.arange(stages) + 1) % stages
        pred_idx[row, stages:] = np.arange(stages, max_stages)
        succ_idx[row, stages:] = np.arange(stages, max_stages)
        static_d[row, :stages] = spec.static_delays_ps
        offsets[row, :stages] = spec.separation_offsets_ps
        charlie[row, :stages] = spec.charlie_ps
        weights[row, :stages] = spec.supply_weights
        draft_amp[row, :stages] = spec.drafting_amplitudes_ps
        draft_tau[row, :stages] = spec.drafting_time_constants_ps
        edge_counts[row] = spec.edge_count
        out_idx[row] = spec.output_stage

    drafting_active = bool(np.any(draft_amp > 0.0))
    amp_positive = draft_amp > 0.0
    # Per-stage firing budget: stages fire at most one lap apart, so the
    # output's edge budget plus slack bounds every stage; grown on demand.
    budget = max_edges + 8
    noise = _noise_tensor(specs, budget, max_stages)  # (ring, firing, stage)

    # Flat indices into the raveled (ring, stage) planes — `ndarray.take`
    # on a precomputed flat index plane is the fast path; take_along_axis
    # rebuilds its index grids on every call.
    rows = np.arange(ring_count)
    flat_pred = rows[:, np.newaxis] * max_stages + pred_idx
    flat_succ = rows[:, np.newaxis] * max_stages + succ_idx
    flat_out = rows * max_stages + out_idx
    cols = np.arange(max_stages)
    # noise[r, n, c] lives at flat offset r*budget*L + n*L + c.
    noise_rc = rows[:, np.newaxis] * (budget * max_stages) + cols[np.newaxis, :]

    fire_count = np.zeros((ring_count, max_stages), dtype=np.intp)
    edges = np.zeros((ring_count, max_edges))
    first_values = np.full(ring_count, -1, dtype=np.int8)
    filled = np.zeros(ring_count, dtype=np.intp)
    done = filled >= edge_counts
    active = ~done[:, np.newaxis]

    plane = (ring_count, max_stages)
    f_t = np.empty(plane)
    r_t = np.empty(plane)
    mean_t = np.empty(plane)
    shifted = np.empty(plane)
    delay = np.empty(plane)
    floor_t = np.empty(plane)
    fire_time = np.empty(plane)
    tmp = np.empty(plane)
    z = np.empty(plane)
    nidx = np.empty(plane, dtype=np.intp)
    count_bound = 0  # upper bound on fire_count.max(); tightened lazily

    total_events = 0
    waves = 0
    with span("batch_simulate", family="str", rings=ring_count) as tele:
        # The loop body works on whole (ring, stage) planes: the enabled
        # mask routes updates through masked np.copyto instead of
        # fancy-indexed scatter, keeping every op a contiguous vector pass
        # into preallocated buffers.
        while not done.all():
            s_pred = state.take(flat_pred)
            enabled = state != s_pred
            enabled &= state.take(flat_succ) == state
            enabled &= active
            fired = int(np.count_nonzero(enabled))
            if fired == 0:
                stuck = np.nonzero(~done)[0]
                labels = ", ".join(
                    f"{specs[row].name}[{row}] after {int(filled[row])} edges "
                    f"(wanted {int(edge_counts[row])}; state "
                    f"{''.join(str(int(v)) for v in state[row, : specs[row].stage_count])})"
                    for row in stuck[:4]
                )
                raise RuntimeError(f"STR batch deadlocked: {labels}")

            last_time.take(flat_pred, out=f_t)
            last_time.take(flat_succ, out=r_t)
            np.add(f_t, r_t, out=mean_t)
            mean_t *= 0.5
            np.subtract(f_t, r_t, out=shifted)
            shifted *= 0.5
            shifted -= offsets
            np.hypot(charlie, shifted, out=delay)
            delay += static_d
            if drafting_active:
                np.add(mean_t, delay, out=tmp)
                tmp -= last_time  # elapsed since this stage last fired
                draft_mask = tmp > 0.0
                draft_mask &= amp_positive
                np.maximum(tmp, 0.0, out=tmp)
                np.negative(tmp, out=tmp)
                tmp /= draft_tau
                np.exp(tmp, out=tmp)
                tmp *= draft_amp
                tmp *= draft_mask  # zero the reduction where inactive
                delay -= tmp
            np.maximum(f_t, r_t, out=floor_t)
            if modulation is not None:
                # The event engine samples the modulation at schedule time,
                # which is always max(t_f, t_r) — available vectorized.
                factor = modulation.factor_array(floor_t)
                factor *= weights
                factor += 1.0
                delay *= factor
            if count_bound >= budget:
                count_bound = int(fire_count.max())
                if count_bound >= budget:
                    noise = _grow_noise(noise, specs, max_stages)
                    budget = noise.shape[1]
                    noise_rc = rows[:, np.newaxis] * (
                        budget * max_stages
                    ) + cols[np.newaxis, :]
            np.multiply(fire_count, max_stages, out=nidx)
            nidx += noise_rc
            noise.take(nidx, out=z)
            delay += z

            np.add(mean_t, delay, out=fire_time)
            np.add(floor_t, _CAUSALITY_GUARD_PS, out=tmp)
            np.copyto(fire_time, tmp, where=fire_time <= floor_t)

            np.copyto(state, s_pred, where=enabled)
            np.copyto(last_time, fire_time, where=enabled)
            fire_count += enabled
            count_bound += 1
            total_events += fired
            waves += 1

            recording = enabled.take(flat_out)
            if recording.any():
                rec_rows = np.flatnonzero(recording)
                edges[rec_rows, filled[rec_rows]] = last_time[
                    rec_rows, out_idx[rec_rows]
                ]
                fresh = first_values[rec_rows] < 0
                if fresh.any():
                    first_values[rec_rows[fresh]] = state[
                        rec_rows[fresh], out_idx[rec_rows[fresh]]
                    ]
                filled[rec_rows] += 1
                done = filled >= edge_counts
                active = ~done[:, np.newaxis]

        tele.set("events", total_events)
        tele.set("waves", waves)
        registry = default_registry()
        registry.counter("repro.batch.simulations").inc()
        registry.counter("repro.batch.rings").inc(ring_count)
        registry.counter("repro.batch.events").inc(total_events)
        registry.counter("repro.batch.waves").inc(waves)

    traces = [
        EdgeTrace(
            edges[row, : edge_counts[row]],
            first_value=int(first_values[row]) if first_values[row] >= 0 else 1,
        )
        for row in range(ring_count)
    ]
    return BatchSimulationResult(
        traces=traces, events_processed=total_events, waves=waves
    )


def _grow_noise(
    noise: np.ndarray, specs: Sequence[STRBatchSpec], max_stages: int
) -> np.ndarray:
    """Double the firing budget of the pre-drawn noise tensor.

    ``standard_normal`` fills row-major, so the first ``F`` rows of a
    doubled draw are identical to the original ``F``-row draw — the
    values a ring consumes never depend on the budget, only on its seed.
    """
    return _noise_tensor(specs, noise.shape[1] * 2, max_stages)


__all__ = [
    "BatchSimulationResult",
    "BatchUnsupported",
    "IROBatchSpec",
    "STRBatchSpec",
    "modulation_is_batchable",
    "simulate_iro_batch",
    "simulate_str_batch",
]
