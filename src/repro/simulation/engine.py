"""A small deterministic discrete-event simulator.

The engine knows nothing about oscillators.  It maintains a time-ordered
queue of :class:`~repro.simulation.events.Transition` records and hands
each one to the *process* being simulated, which reacts by scheduling
further transitions.  Ring models implement the :class:`Process` protocol.

Determinism
-----------
Two transitions scheduled for the same instant pop in the order they were
scheduled (a monotonically increasing serial number breaks ties), so a
simulation is a pure function of the process state and its noise streams.
"""

from __future__ import annotations

import dataclasses
import enum
import heapq
from typing import Callable, Dict, List, Optional, Protocol, Tuple

from repro.simulation.events import Edge, Transition


class StopReason(enum.Enum):
    """Why a simulation run returned.

    ``QUEUE_EMPTY`` before any limit is the interesting one: the process
    stopped scheduling — for a ring oscillator that means a deadlock
    (e.g. an STR configuration with no fireable stage left).
    """

    QUEUE_EMPTY = "queue_empty"
    UNTIL_REACHED = "until_reached"
    MAX_EVENTS = "max_events"
    MAX_OBSERVED_EDGES = "max_observed_edges"


class Process(Protocol):
    """Protocol for anything the :class:`Simulator` can run."""

    def start(self, simulator: "Simulator") -> None:
        """Schedule the initial transitions."""

    def handle(self, simulator: "Simulator", transition: Transition) -> None:
        """React to a popped transition by updating state and scheduling."""


@dataclasses.dataclass
class SimulationLimits:
    """Stop conditions for a simulation run.

    A run stops at whichever limit is hit first.  ``max_events`` guards
    against runaway processes; ``until_ps`` bounds simulated time;
    ``max_observed_edges`` stops once enough waveform has been captured,
    which is the usual way to collect a fixed number of oscillation
    periods without guessing the simulated duration in advance.
    """

    until_ps: Optional[float] = None
    max_events: Optional[int] = None
    max_observed_edges: Optional[int] = None

    def __post_init__(self) -> None:
        if self.until_ps is None and self.max_events is None and self.max_observed_edges is None:
            raise ValueError("at least one stop condition must be set")
        if self.until_ps is not None and self.until_ps < 0:
            raise ValueError(f"until_ps must be non-negative, got {self.until_ps}")
        if self.max_events is not None and self.max_events <= 0:
            raise ValueError(f"max_events must be positive, got {self.max_events}")
        if self.max_observed_edges is not None and self.max_observed_edges <= 0:
            raise ValueError(f"max_observed_edges must be positive, got {self.max_observed_edges}")


class Simulator:
    """Heap-based discrete-event scheduler.

    Typical usage (done for you by the ring models)::

        sim = Simulator()
        sim.observe(output_node)
        sim.run(ring_process, SimulationLimits(max_observed_edges=2048))
        edges = sim.edges_for(output_node)
    """

    def __init__(self) -> None:
        self._queue: List[Tuple[float, int, Transition]] = []
        self._serial = 0
        self._now_ps = 0.0
        self._events_processed = 0
        self._observed_nodes: Dict[int, List[Edge]] = {}
        self._observed_edge_count = 0

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    @property
    def now_ps(self) -> float:
        """Current simulation time in picoseconds."""
        return self._now_ps

    @property
    def events_processed(self) -> int:
        """Number of transitions handled so far."""
        return self._events_processed

    @property
    def pending_count(self) -> int:
        """Number of transitions still queued."""
        return len(self._queue)

    def schedule(self, time_ps: float, node: int, value: int) -> Transition:
        """Queue a transition of ``node`` to ``value`` at ``time_ps``.

        Scheduling in the past is a programming error in the process model
        and raises immediately rather than silently corrupting causality.
        """
        if time_ps < self._now_ps:
            raise ValueError(
                f"cannot schedule at {time_ps} ps: simulation time is already {self._now_ps} ps"
            )
        self._serial += 1
        transition = Transition(time_ps=time_ps, node=node, value=value, serial=self._serial)
        heapq.heappush(self._queue, (time_ps, self._serial, transition))
        return transition

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------
    def observe(self, node: int) -> None:
        """Record every edge of ``node`` during the run."""
        self._observed_nodes.setdefault(node, [])

    def edges_for(self, node: int) -> List[Edge]:
        """Return the recorded edges of an observed node."""
        if node not in self._observed_nodes:
            raise KeyError(f"node {node} was not observed; call observe({node}) before run()")
        return self._observed_nodes[node]

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, process: Process, limits: SimulationLimits) -> StopReason:
        """Run ``process`` until a stop condition of ``limits`` is reached.

        Returns why the run stopped; ``StopReason.QUEUE_EMPTY`` signals
        that the process went quiescent (a ring deadlock) before any
        requested limit.
        """
        process.start(self)
        while self._queue:
            time_ps, _serial, transition = self._queue[0]
            if limits.until_ps is not None and time_ps > limits.until_ps:
                return StopReason.UNTIL_REACHED
            heapq.heappop(self._queue)
            self._now_ps = time_ps
            self._events_processed += 1
            process.handle(self, transition)
            bucket = self._observed_nodes.get(transition.node)
            if bucket is not None:
                bucket.append(Edge(time_ps=time_ps, node=transition.node, value=transition.value))
                self._observed_edge_count += 1
                if (
                    limits.max_observed_edges is not None
                    and self._observed_edge_count >= limits.max_observed_edges
                ):
                    return StopReason.MAX_OBSERVED_EDGES
            if limits.max_events is not None and self._events_processed >= limits.max_events:
                return StopReason.MAX_EVENTS
        return StopReason.QUEUE_EMPTY
