"""Event records exchanged between the simulator and the ring models.

The engine in :mod:`repro.simulation.engine` is deliberately small: it only
understands *transitions* — a named node changing logic value at an instant
in time.  Everything oscillator-specific (token bookkeeping, Charlie-effect
delays) lives in the ring models, which act as event *processes*.
"""

from __future__ import annotations

import dataclasses
from typing import Tuple


@dataclasses.dataclass(frozen=True, order=True)
class Transition:
    """A logic transition of one node at a given simulated time.

    Ordering is by time first, which is what the event queue needs.

    Attributes
    ----------
    time_ps:
        Simulation instant of the transition, in picoseconds.
    node:
        Index of the node (ring stage output) that switches.
    value:
        New logic value of the node after the transition (0 or 1).
    serial:
        Monotonic tie-breaker assigned by the scheduler so that
        simultaneous events pop in deterministic FIFO order.
    """

    time_ps: float
    node: int
    value: int
    serial: int = 0

    def __post_init__(self) -> None:
        if self.value not in (0, 1):
            raise ValueError(f"logic value must be 0 or 1, got {self.value!r}")


@dataclasses.dataclass(frozen=True)
class Edge:
    """A recorded signal edge on an observed node.

    ``polarity`` is +1 for a rising edge and -1 for a falling edge; this is
    redundant with ``value`` but convenient for waveform post-processing.
    """

    time_ps: float
    node: int
    value: int

    @property
    def polarity(self) -> int:
        """+1 for a rising edge, -1 for a falling edge."""
        return 1 if self.value else -1

    def as_tuple(self) -> Tuple[float, int, int]:
        """Return ``(time_ps, node, value)``, handy for array conversion."""
        return (self.time_ps, self.node, self.value)
