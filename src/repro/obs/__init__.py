"""Operational observability: drift detection and the live dashboard.

``repro.obs`` is the *operator-facing* layer on top of the in-process
telemetry plane (:mod:`repro.telemetry`):

* :mod:`repro.obs.drift` — online EWMA/CUSUM control charts over
  per-channel health statistics, the early-warning complement to the
  AIS-31 trip wires.  Wire into a serve pool with
  :meth:`repro.serve.pool.TrngPool.attach_drift_monitors` or into a
  supervised run via :attr:`repro.trng.supervisor.SupervisedTrng.block_observer`;
* :mod:`repro.obs.dashboard` — the ``repro dash`` terminal dashboard:
  scrapes the exposition sidecar (or tails its JSONL replay log) and
  renders pool health, per-channel state, SLO gauges and drift
  sparklines with plain ANSI.

Everything here is stdlib + numpy; time is injected everywhere so
drills replay deterministically.
"""

from __future__ import annotations

from repro.obs.dashboard import (
    Dashboard,
    DashboardError,
    JsonlSource,
    ScrapeSource,
    flatten_snapshot,
)
from repro.obs.drift import (
    DEFAULT_STATISTICS,
    ChannelDriftMonitor,
    CusumDetector,
    DriftSignal,
    EwmaDetector,
    StatisticConfig,
    block_statistics,
)

__all__ = [
    "DEFAULT_STATISTICS",
    "ChannelDriftMonitor",
    "CusumDetector",
    "Dashboard",
    "DashboardError",
    "DriftSignal",
    "EwmaDetector",
    "JsonlSource",
    "ScrapeSource",
    "StatisticConfig",
    "block_statistics",
    "flatten_snapshot",
]
