"""Online entropy-drift detection: EWMA and CUSUM control charts.

The AIS-31 health tests (:mod:`repro.trng.health`) are *trip wires*:
they fire only when the source is already producing blocks bad enough
to discard.  A fleet operator wants an earlier signal — "channel 3's
bias has been creeping for the last minute" — while the bytes are
still individually acceptable.  Saarinen (PAPERS.md) argues for
exactly this: continuous bit-pattern entropy estimation instead of
one-shot assessment.

This module implements that earlier signal as classical control
charts over per-block statistics:

* :class:`EwmaDetector` — an exponentially-weighted moving average
  chart.  A warmup phase estimates the statistic's baseline mean and
  standard deviation; afterwards the EWMA is compared against the
  baseline in units of its own steady-state sigma
  (``sigma * sqrt(alpha / (2 - alpha))``).  Sensitive to sustained
  small shifts, nearly immune to single-block noise;
* :class:`CusumDetector` — a two-sided cumulative-sum chart on the
  standardized statistic with reference value ``k`` and decision
  interval ``h`` (both in sigmas).  The textbook complement to EWMA:
  it accumulates evidence linearly, so a slow ramp that never moves
  the EWMA far still crosses ``h``;
* :class:`ChannelDriftMonitor` — one per pool channel.  Each observed
  block is reduced to the statistics named in the ISSUE (bias,
  Shannon and min-entropy proxies, health-alarm rate; latency can be
  fed via :meth:`ChannelDriftMonitor.observe_value`), every statistic
  feeds an EWMA *and* a CUSUM detector, and edge-triggered
  :class:`DriftSignal`\\ s come back when a chart newly crosses its
  threshold.  Signals also land on the telemetry plane
  (``obs.drift.*`` events, ``repro.obs.drift.*`` counters, per-channel
  score gauges) so the dashboard can sparkline them.

Time is always injected by the caller (the pool's deterministic
block clock, the supervisor's stream clock, or wall time in the
daemon), so drift drills replay bit-for-bit.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.telemetry import default_registry, emit_event

__all__ = [
    "DEFAULT_STATISTICS",
    "ChannelDriftMonitor",
    "CusumDetector",
    "DriftSignal",
    "EwmaDetector",
    "StatisticConfig",
    "block_statistics",
]


@dataclasses.dataclass(frozen=True)
class DriftSignal:
    """One chart crossing: ``channel``'s ``statistic`` is drifting."""

    channel: str
    statistic: str
    detector: str  #: ``"ewma"`` | ``"cusum"``
    time_s: float
    block_index: int
    value: float  #: the statistic's raw value this block
    score: float  #: chart score in sigmas at the crossing
    threshold: float

    def describe(self) -> str:
        return (
            f"{self.detector} drift on {self.channel}/{self.statistic}: "
            f"score={self.score:.2f} threshold={self.threshold:.2f} "
            f"value={self.value:.4f}"
        )


class _Baseline:
    """Welford-accumulated mean/std of the warmup observations."""

    def __init__(self, warmup: int, min_std: float) -> None:
        if warmup < 2:
            raise ValueError(f"warmup needs at least two blocks, got {warmup}")
        if min_std <= 0.0:
            raise ValueError(f"min std must be positive, got {min_std}")
        self.warmup = int(warmup)
        self.min_std = float(min_std)
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0

    @property
    def ready(self) -> bool:
        return self.count >= self.warmup

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def std(self) -> float:
        if self.count < 2:
            return self.min_std
        return max(math.sqrt(self._m2 / (self.count - 1)), self.min_std)

    def update(self, x: float) -> None:
        self.count += 1
        delta = x - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (x - self._mean)


class EwmaDetector:
    """EWMA control chart with a warmup-estimated baseline.

    Parameters
    ----------
    alpha:
        EWMA smoothing weight in (0, 1]; smaller = smoother = more
        sensitive to sustained shifts, slower to react.
    threshold_sigma:
        Alarm when ``|ewma - baseline mean|`` exceeds this many
        steady-state EWMA sigmas.
    warmup:
        Blocks used to estimate the baseline before the chart arms.
    min_std:
        Floor on the baseline standard deviation (guards a degenerate
        all-identical warmup, e.g. a zero alarm rate).
    """

    name = "ewma"

    def __init__(
        self,
        alpha: float = 0.2,
        threshold_sigma: float = 4.0,
        warmup: int = 16,
        min_std: float = 1e-4,
    ) -> None:
        if not (0.0 < alpha <= 1.0):
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if threshold_sigma <= 0.0:
            raise ValueError(f"threshold must be positive, got {threshold_sigma}")
        self.alpha = float(alpha)
        self.threshold = float(threshold_sigma)
        self.baseline = _Baseline(warmup, min_std)
        self.ewma: Optional[float] = None
        self.score = 0.0

    @property
    def armed(self) -> bool:
        return self.baseline.ready

    @property
    def drifted(self) -> bool:
        return self.armed and self.score >= self.threshold

    def update(self, x: float) -> float:
        """Feed one observation; return the current score in sigmas."""
        x = float(x)
        if not self.baseline.ready:
            self.baseline.update(x)
            self.ewma = x if self.ewma is None else (
                (1.0 - self.alpha) * self.ewma + self.alpha * x
            )
            self.score = 0.0
            return self.score
        assert self.ewma is not None
        self.ewma = (1.0 - self.alpha) * self.ewma + self.alpha * x
        sigma_ewma = self.baseline.std * math.sqrt(self.alpha / (2.0 - self.alpha))
        self.score = abs(self.ewma - self.baseline.mean) / sigma_ewma
        return self.score

    def reset(self) -> None:
        """Forget the chart *and* the baseline (fresh channel)."""
        self.baseline = _Baseline(self.baseline.warmup, self.baseline.min_std)
        self.ewma = None
        self.score = 0.0


class CusumDetector:
    """Two-sided CUSUM chart on the standardized statistic.

    ``S+ = max(0, S+ + z - k)`` and ``S- = max(0, S- - z - k)`` with
    ``z`` the warmup-standardized observation; the chart alarms when
    either sum reaches the decision interval ``h``.  ``k`` is the
    classical "allowance" — half the shift (in sigmas) the chart is
    tuned to detect quickly.
    """

    name = "cusum"

    def __init__(
        self,
        k_sigma: float = 0.5,
        h_sigma: float = 8.0,
        warmup: int = 16,
        min_std: float = 1e-4,
    ) -> None:
        if k_sigma < 0.0:
            raise ValueError(f"allowance must be non-negative, got {k_sigma}")
        if h_sigma <= 0.0:
            raise ValueError(f"decision interval must be positive, got {h_sigma}")
        self.k = float(k_sigma)
        self.threshold = float(h_sigma)
        self.baseline = _Baseline(warmup, min_std)
        self.s_pos = 0.0
        self.s_neg = 0.0
        self.score = 0.0

    @property
    def armed(self) -> bool:
        return self.baseline.ready

    @property
    def drifted(self) -> bool:
        return self.armed and self.score >= self.threshold

    def update(self, x: float) -> float:
        """Feed one observation; return the current score (max side)."""
        x = float(x)
        if not self.baseline.ready:
            self.baseline.update(x)
            self.score = 0.0
            return self.score
        z = (x - self.baseline.mean) / self.baseline.std
        self.s_pos = max(0.0, self.s_pos + z - self.k)
        self.s_neg = max(0.0, self.s_neg - z - self.k)
        self.score = max(self.s_pos, self.s_neg)
        return self.score

    def reset(self) -> None:
        self.baseline = _Baseline(self.baseline.warmup, self.baseline.min_std)
        self.s_pos = 0.0
        self.s_neg = 0.0
        self.score = 0.0


@dataclasses.dataclass(frozen=True)
class StatisticConfig:
    """Chart tuning for one monitored statistic."""

    name: str
    ewma_alpha: float = 0.2
    ewma_sigma: float = 5.0
    cusum_k: float = 0.75
    cusum_h: float = 12.0
    warmup: int = 48
    min_std: float = 1e-4

    def build(self) -> Tuple[EwmaDetector, CusumDetector]:
        return (
            EwmaDetector(self.ewma_alpha, self.ewma_sigma, self.warmup, self.min_std),
            CusumDetector(self.cusum_k, self.cusum_h, self.warmup, self.min_std),
        )


#: The default panel: per-channel health statistics with thresholds
#: tuned per distribution shape.  ``bias`` is symmetric (binomial), so
#: the plain Gaussian chart applies; the entropy proxies are one-sided
#: and heavy-tailed (quadratic / absolute functions of the bias), so
#: their thresholds sit higher — empirically zero spurious signals
#: over 30x500 clean 512-bit blocks while still flagging a slow bias
#: ramp >100 blocks before the AIS-31 adaptive-proportion cutoff.  The
#: alarm-rate floor is wide because a clean warmup has zero variance
#: there; latency is opt-in via
#: :meth:`ChannelDriftMonitor.observe_value`.
DEFAULT_STATISTICS: Tuple[StatisticConfig, ...] = (
    StatisticConfig("bias", ewma_sigma=6.0),
    StatisticConfig("shannon_entropy", ewma_sigma=10.0, cusum_k=1.0, cusum_h=18.0),
    StatisticConfig("min_entropy", ewma_sigma=8.0, cusum_k=1.0, cusum_h=15.0),
    StatisticConfig("alarm_rate", min_std=0.02),
)


def block_statistics(bits: Sequence[int], alarm_count: int = 0) -> Dict[str, float]:
    """Reduce one block to the monitored health statistics.

    ``bias`` is the signed deviation of the ones fraction from 1/2;
    the entropy figures are the bias-implied (IID binary) proxies —
    cheap enough for every block, and exactly the quantity that decays
    when an oscillator locks or its noise floor drops.
    """
    array = np.asarray(bits, dtype=float)
    if array.ndim != 1 or array.size == 0:
        raise ValueError("bits must be a non-empty one-dimensional sequence")
    p = float(np.mean(array))
    p_max = max(p, 1.0 - p)
    if 0.0 < p < 1.0:
        shannon = -(p * math.log2(p) + (1.0 - p) * math.log2(1.0 - p))
    else:
        shannon = 0.0
    return {
        "bias": p - 0.5,
        "shannon_entropy": shannon,
        "min_entropy": -math.log2(p_max),
        "alarm_rate": float(alarm_count) / float(array.size),
    }


class ChannelDriftMonitor:
    """Every statistic of one channel through an EWMA and a CUSUM chart.

    Signals are edge-triggered: a chart that crosses its threshold
    yields one :class:`DriftSignal` and stays silent until it falls
    back below and crosses again — so a sustained drift produces one
    actionable event, not one per block.
    """

    def __init__(
        self,
        channel: str,
        statistics: Sequence[StatisticConfig] = DEFAULT_STATISTICS,
        emit_telemetry: bool = True,
    ) -> None:
        self.channel = channel
        self.configs: Tuple[StatisticConfig, ...] = tuple(statistics)
        if not self.configs:
            raise ValueError("need at least one monitored statistic")
        self._charts: Dict[str, Tuple[EwmaDetector, CusumDetector]] = {
            config.name: config.build() for config in self.configs
        }
        self._latched: Dict[Tuple[str, str], bool] = {}
        self._emit = bool(emit_telemetry)
        self.block_index = 0
        self.signals: List[DriftSignal] = []

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------
    def observe_block(
        self, bits: Sequence[int], t_s: float, alarm_count: int = 0
    ) -> List[DriftSignal]:
        """Feed one sampled block; return newly-raised drift signals."""
        values = block_statistics(bits, alarm_count)
        return self._observe(values, t_s)

    def observe_value(self, statistic: str, value: float, t_s: float) -> List[DriftSignal]:
        """Feed one externally-computed statistic (e.g. latency)."""
        if statistic not in self._charts:
            config = StatisticConfig(statistic)
            self._charts[statistic] = config.build()
            self.configs = self.configs + (config,)
        return self._observe({statistic: value}, t_s, advance=False)

    def _observe(
        self, values: Dict[str, float], t_s: float, advance: bool = True
    ) -> List[DriftSignal]:
        new_signals: List[DriftSignal] = []
        for statistic, charts in self._charts.items():
            if statistic not in values:
                continue
            value = float(values[statistic])
            for chart in charts:
                score = chart.update(value)
                key = (statistic, chart.name)
                was = self._latched.get(key, False)
                now = chart.drifted
                self._latched[key] = now
                if now and not was:
                    new_signals.append(
                        DriftSignal(
                            channel=self.channel,
                            statistic=statistic,
                            detector=chart.name,
                            time_s=float(t_s),
                            block_index=self.block_index,
                            value=value,
                            score=score,
                            threshold=chart.threshold,
                        )
                    )
        if advance:
            self.block_index += 1
        if new_signals:
            self.signals.extend(new_signals)
            self._publish(new_signals)
        self._update_gauges()
        return new_signals

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def drifting(self) -> bool:
        """True while any chart is above its threshold."""
        return any(
            chart.drifted for charts in self._charts.values() for chart in charts
        )

    def drifting_statistics(self) -> List[str]:
        return sorted(
            {
                statistic
                for statistic, charts in self._charts.items()
                if any(chart.drifted for chart in charts)
            }
        )

    def scores(self) -> Dict[str, Dict[str, float]]:
        """Current chart scores, ``{statistic: {detector: score}}``."""
        return {
            statistic: {chart.name: chart.score for chart in charts}
            for statistic, charts in self._charts.items()
        }

    def reset(self) -> None:
        """Fresh charts and baselines (after quarantine/readmission)."""
        for charts in self._charts.values():
            for chart in charts:
                chart.reset()
        self._latched.clear()

    # ------------------------------------------------------------------
    # telemetry bridge
    # ------------------------------------------------------------------
    def _publish(self, signals: Sequence[DriftSignal]) -> None:
        if not self._emit:
            return
        registry = default_registry()
        for signal in signals:
            emit_event(
                f"obs.drift.{signal.detector}",
                channel=signal.channel,
                statistic=signal.statistic,
                time_s=signal.time_s,
                block_index=signal.block_index,
                value=signal.value,
                score=signal.score,
                threshold=signal.threshold,
            )
            registry.counter("repro.obs.drift.signals").inc()
            registry.counter(f"repro.obs.drift.{signal.detector}").inc()

    def _update_gauges(self) -> None:
        if not self._emit:
            return
        registry = default_registry()
        registry.gauge(f"repro.obs.drift.drifting.{self.channel}").set(
            1.0 if self.drifting else 0.0
        )
        for statistic, charts in self._charts.items():
            worst = max(chart.score for chart in charts)
            registry.gauge(f"repro.obs.drift.score.{self.channel}.{statistic}").set(
                worst
            )
