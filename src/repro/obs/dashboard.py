"""The ``repro dash`` live terminal dashboard.

Renders a serving process's operational state — pool health,
per-channel lifecycle, SLO gauges, drift charts — as a plain-ANSI
frame, refreshed in place.  Two data sources, same rendering path:

* :class:`ScrapeSource` — HTTP-GETs the exposition sidecar
  (``repro serve --obs-port``) and parses the Prometheus text back
  into a flat ``{metric: value}`` mapping;
* :class:`JsonlSource` — tails the sidecar's JSONL replay log (or any
  ``--trace`` file carrying ``metrics`` records), which makes the
  dashboard work offline: ``repro dash --follow run.jsonl`` replays a
  drill exactly as the live view would have shown it.

Metric keys are normalized to the *sanitized* (Prometheus) spelling on
both paths, so the panels don't care where the numbers came from.
History for the sparklines (via :func:`repro.reporting.ascii_plot.sparkline`)
is kept dashboard-side in bounded deques.

Keys: ``q`` quits, ``p`` pauses/resumes sampling.  No curses — frames
are repainted with a home-and-clear ANSI prefix, so the dashboard
survives dumb terminals and CI logs (``--once`` prints a single frame
and exits, which is also what the tests assert on).
"""

from __future__ import annotations

import dataclasses
import json
import select
import socket
import sys
import time
from collections import deque
from pathlib import Path
from typing import Callable, Deque, Dict, List, Optional, TextIO, Tuple, Union

from repro.reporting.ascii_plot import sparkline
from repro.telemetry import parse_prometheus, sanitize_metric_name
from repro.telemetry.registry import MetricsSnapshot

__all__ = [
    "Dashboard",
    "DashboardError",
    "JsonlSource",
    "ScrapeSource",
    "flatten_snapshot",
]

_ANSI_HOME_CLEAR = "\x1b[H\x1b[2J"


class DashboardError(RuntimeError):
    """The dashboard could not obtain a sample."""


def flatten_snapshot(snapshot: MetricsSnapshot) -> Dict[str, float]:
    """A snapshot as flat sanitized ``{metric: value}`` (scrape-shaped).

    Histograms contribute ``_sum``/``_count`` only — the panels read
    quantiles from the published ``repro.obs.window.*`` gauges, which
    carry the windowed figures the raw cumulative buckets cannot.
    """
    flat: Dict[str, float] = {}
    for name, value in snapshot.counters.items():
        flat[sanitize_metric_name(name)] = float(value)
    for name, value in snapshot.gauges.items():
        flat[sanitize_metric_name(name)] = float(value)
    for name, body in snapshot.histograms.items():
        metric = sanitize_metric_name(name)
        flat[f"{metric}_sum"] = float(body["sum"])
        flat[f"{metric}_count"] = float(body["count"])
    return flat


# ----------------------------------------------------------------------
# data sources
# ----------------------------------------------------------------------
class ScrapeSource:
    """Pull one exposition scrape per sample from the sidecar port."""

    def __init__(self, host: str, port: int, timeout_s: float = 2.0) -> None:
        self.host = host
        self.port = int(port)
        self.timeout_s = float(timeout_s)

    def describe(self) -> str:
        return f"scrape http://{self.host}:{self.port}/metrics"

    def sample(self) -> Dict[str, float]:
        try:
            with socket.create_connection(
                (self.host, self.port), timeout=self.timeout_s
            ) as conn:
                conn.sendall(
                    b"GET /metrics HTTP/1.0\r\n"
                    b"Host: " + self.host.encode("ascii") + b"\r\n\r\n"
                )
                chunks: List[bytes] = []
                conn.settimeout(self.timeout_s)
                while True:
                    chunk = conn.recv(65536)
                    if not chunk:
                        break
                    chunks.append(chunk)
        except OSError as error:
            raise DashboardError(
                f"scrape of {self.host}:{self.port} failed: {error}"
            ) from error
        raw = b"".join(chunks)
        head, sep, body = raw.partition(b"\r\n\r\n")
        text = (body if sep else raw).decode("utf-8", errors="replace")
        samples = parse_prometheus(text)
        return {sample.name: sample.value for sample in samples}


class JsonlSource:
    """Tail ``metrics`` records from a telemetry JSONL file.

    Each :meth:`sample` re-reads from the last byte offset and returns
    the newest complete ``metrics`` record seen so far — cheap enough
    to poll, and deterministic over a finished replay log.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._offset = 0
        self._latest: Optional[Dict[str, float]] = None
        self._carry = b""

    def describe(self) -> str:
        return f"tail {self.path}"

    def sample(self) -> Dict[str, float]:
        try:
            with open(self.path, "rb") as handle:
                handle.seek(self._offset)
                data = handle.read()
                self._offset = handle.tell()
        except OSError as error:
            raise DashboardError(f"cannot read {self.path}: {error}") from error
        buffer = self._carry + data
        lines = buffer.split(b"\n")
        self._carry = lines.pop()  # incomplete trailing line (usually b"")
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if record.get("type") != "metrics" or "metrics" not in record:
                continue
            snapshot = MetricsSnapshot.from_dict(record["metrics"])
            self._latest = flatten_snapshot(snapshot)
        if self._latest is None:
            raise DashboardError(f"no metrics records in {self.path} yet")
        return self._latest


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
_POOL_STATES = {0.0: "healthy", 1.0: "quarantined", 2.0: "tripped"}

#: (label, metric, format) rows of the SLO panel.
_SLO_ROWS: Tuple[Tuple[str, str, str], ...] = (
    ("bytes/s (10s)", "repro_obs_window_bytes_per_s", "{:,.0f}"),
    ("requests/s (10s)", "repro_obs_window_requests_per_s", "{:,.1f}"),
    ("errors/s (10s)", "repro_obs_window_errors_per_s", "{:,.2f}"),
    ("alarms/s (30s)", "repro_obs_window_alarms_per_s", "{:,.3f}"),
    ("p50 latency (30s)", "repro_obs_window_p50_latency_s", "{:.4f} s"),
    ("p99 latency (30s)", "repro_obs_window_p99_latency_s", "{:.4f} s"),
)

#: Metrics whose history feeds the sparkline column.
_SPARK_METRICS: Tuple[Tuple[str, str], ...] = (
    ("bytes/s", "repro_obs_window_bytes_per_s"),
    ("p99 lat", "repro_obs_window_p99_latency_s"),
    ("alarms/s", "repro_obs_window_alarms_per_s"),
    ("healthy", "repro_serve_pool_healthy"),
)

_CHANNEL_PREFIX = "repro_serve_pool_channel_"
_DRIFT_SCORE_PREFIX = "repro_obs_drift_score_"
_DRIFT_FLAG_PREFIX = "repro_obs_drift_drifting_"


@dataclasses.dataclass
class _History:
    """Bounded per-metric history for sparklines."""

    depth: int = 60
    series: Dict[str, Deque[float]] = dataclasses.field(default_factory=dict)

    def push(self, metrics: Dict[str, float], names: List[str]) -> None:
        for name in names:
            if name not in metrics:
                continue
            queue = self.series.setdefault(name, deque(maxlen=self.depth))
            queue.append(metrics[name])

    def values(self, name: str) -> List[float]:
        return list(self.series.get(name, ()))


class Dashboard:
    """Render loop: pull a sample, paint a frame, repeat.

    ``clock`` and ``sleep`` are injectable for tests; the public
    surface is :meth:`render_frame` (pure string) and :meth:`run`.
    """

    def __init__(
        self,
        source: Union[ScrapeSource, JsonlSource],
        interval_s: float = 1.0,
        width: int = 30,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if interval_s <= 0.0:
            raise ValueError(f"refresh interval must be positive, got {interval_s}")
        self.source = source
        self.interval_s = float(interval_s)
        self.width = int(width)
        self._clock = clock
        self.history = _History()
        self.frames = 0
        self.paused = False

    # -- panel helpers --------------------------------------------------
    def _channel_rows(self, metrics: Dict[str, float]) -> List[str]:
        channels: Dict[str, Dict[str, float]] = {}
        for name, value in metrics.items():
            if not name.startswith(_CHANNEL_PREFIX):
                continue
            rest = name[len(_CHANNEL_PREFIX):]
            for suffix in ("_state", "_flaps"):
                if rest.endswith(suffix):
                    channel = rest[: -len(suffix)]
                    channels.setdefault(channel, {})[suffix[1:]] = value
        rows: List[str] = []
        for channel in sorted(channels):
            fields = channels[channel]
            state = _POOL_STATES.get(fields.get("state", -1.0), "?")
            flaps = int(fields.get("flaps", 0))
            drifting = metrics.get(f"{_DRIFT_FLAG_PREFIX}{channel}", 0.0) > 0.0
            marker = " DRIFTING" if drifting else ""
            rows.append(f"  {channel:<24} {state:<12} flaps={flaps}{marker}")
        return rows or ["  (no per-channel gauges published)"]

    def _drift_rows(self, metrics: Dict[str, float]) -> List[str]:
        scores: List[Tuple[str, float]] = [
            (name[len(_DRIFT_SCORE_PREFIX):], value)
            for name, value in metrics.items()
            if name.startswith(_DRIFT_SCORE_PREFIX)
        ]
        if not scores:
            return ["  (no drift charts attached)"]
        scores.sort(key=lambda item: -item[1])
        rows = []
        for name, value in scores[:6]:
            history = self.history.values(_DRIFT_SCORE_PREFIX + name)
            spark = sparkline(history, width=self.width, low=0.0)
            rows.append(f"  {name:<34} {value:7.2f}  {spark}")
        return rows

    # -- frame ----------------------------------------------------------
    def render_frame(self, metrics: Dict[str, float]) -> str:
        """One full dashboard frame (no ANSI; the loop adds clearing)."""
        spark_names = [name for _label, name in _SPARK_METRICS] + [
            name for name in metrics if name.startswith(_DRIFT_SCORE_PREFIX)
        ]
        self.history.push(metrics, spark_names)
        healthy = int(metrics.get("repro_serve_pool_healthy", 0))
        quarantined = int(metrics.get("repro_serve_pool_quarantined", 0))
        tripped = int(metrics.get("repro_serve_pool_tripped", 0))
        brownout = metrics.get("repro_serve_pool_brownout", 0.0) > 0.0
        clients = int(metrics.get("repro_serve_clients", 0))
        lines: List[str] = []
        lines.append("repro dash — entropy service")
        lines.append(f"source: {self.source.describe()}   frame {self.frames}")
        lines.append("")
        banner = "BROWNOUT" if brownout else "nominal"
        lines.append(
            f"pool: {healthy} healthy / {quarantined} quarantined / "
            f"{tripped} tripped   [{banner}]   clients={clients}"
        )
        lines.append("")
        lines.append("channels:")
        lines.extend(self._channel_rows(metrics))
        lines.append("")
        lines.append("SLO:")
        for label, name, fmt in _SLO_ROWS:
            value = metrics.get(name)
            rendered = fmt.format(value) if value is not None else "—"
            spark = sparkline(self.history.values(name), width=self.width)
            lines.append(f"  {label:<18} {rendered:>12}  {spark}")
        lines.append("")
        lines.append("drift charts (worst scores, sigmas):")
        lines.extend(self._drift_rows(metrics))
        lines.append("")
        signals = int(metrics.get("repro_obs_drift_signals", 0))
        served = int(metrics.get("repro_serve_bytes_served", 0))
        ok = int(metrics.get("repro_serve_requests_ok", 0))
        errors = int(metrics.get("repro_serve_requests_error", 0))
        lines.append(
            f"totals: {served:,} bytes served, {ok:,} ok / {errors:,} error "
            f"requests, {signals} drift signals"
        )
        lines.append("[q] quit   [p] pause")
        self.frames += 1
        return "\n".join(lines)

    # -- loop -----------------------------------------------------------
    def render_once(self) -> str:
        """Sample once and return the frame (the ``--once`` path)."""
        return self.render_frame(self.source.sample())

    def _poll_key(self) -> Optional[str]:
        if not sys.stdin.isatty():
            return None
        ready, _, _ = select.select([sys.stdin], [], [], 0.0)
        if not ready:
            return None
        return sys.stdin.read(1)

    def run(
        self,
        iterations: Optional[int] = None,
        out: Optional[TextIO] = None,
    ) -> int:
        """Refresh until ``q``, EOF on a replay file, or ``iterations``.

        Returns the number of frames painted.
        """
        out = out if out is not None else sys.stdout
        painted = 0
        while iterations is None or painted < iterations:
            key = self._poll_key()
            if key == "q":
                break
            if key == "p":
                self.paused = not self.paused
            if not self.paused:
                try:
                    frame = self.render_once()
                except DashboardError as error:
                    frame = f"repro dash — waiting for data\n{error}"
                out.write(_ANSI_HOME_CLEAR + frame + "\n")
                out.flush()
                painted += 1
            if iterations is not None and painted >= iterations:
                break
            time.sleep(self.interval_s)
        return painted
