"""The paper's analytical contribution.

* :mod:`repro.core.charlie` — the Charlie-diagram delay model (Eq. 3) and
  the (neglected-in-FPGA) drafting effect.
* :mod:`repro.core.jitter_model` — the jitter accumulation laws (Eqs. 4-7)
  and the divider-based jitter measurement estimator (Eq. 6).
* :mod:`repro.core.temporal_model` — the steady-state solver of the
  Hamon-style time-accurate STR model (period, separation time, stability).
* :mod:`repro.core.characterization` — the experiment drivers: frequency
  vs voltage, extra-device dispersion, jitter vs ring length.
* :mod:`repro.core.comparison` — STR-vs-IRO comparison reports.
"""

from repro.core.charlie import CharlieDiagram, CharlieParameters, DraftingEffect
from repro.core.jitter_model import (
    iro_period_jitter_ps,
    str_period_jitter_ps,
    gate_jitter_from_iro_period_jitter,
    recover_period_jitter_from_divided,
    divided_cycle_to_cycle_jitter,
)
from repro.core.temporal_model import SteadyState, solve_steady_state
from repro.core.characterization import (
    VoltageSweepResult,
    sweep_voltage,
    normalized_excursion,
    measure_family_dispersion,
    FamilyDispersionResult,
    measure_period_jitter,
    JitterMeasurementResult,
)
from repro.core.comparison import ComparisonReport, compare_entropy_sources
from repro.core.campaign import CampaignReport, RingCampaignResult, RingSpec, run_campaign

__all__ = [
    "CharlieDiagram",
    "CharlieParameters",
    "DraftingEffect",
    "iro_period_jitter_ps",
    "str_period_jitter_ps",
    "gate_jitter_from_iro_period_jitter",
    "recover_period_jitter_from_divided",
    "divided_cycle_to_cycle_jitter",
    "SteadyState",
    "solve_steady_state",
    "VoltageSweepResult",
    "sweep_voltage",
    "normalized_excursion",
    "measure_family_dispersion",
    "FamilyDispersionResult",
    "measure_period_jitter",
    "JitterMeasurementResult",
    "ComparisonReport",
    "compare_entropy_sources",
    "CampaignReport",
    "RingCampaignResult",
    "RingSpec",
    "run_campaign",
]
