"""Analytical jitter model of the paper's Section IV (Eqs. 4-7).

Two jitter components are modelled for both oscillator families:

* **Local Gaussian jitter** — every LUT crossing adds independent
  ``N(0, sigma_g^2)`` noise.

  - IRO: one event crosses ``2k`` stages per period, so the period
    accumulates ``sigma_period = sqrt(2 k) * sigma_g``  (Eq. 4).
  - STR: the period is the spacing of *successive tokens* observed at one
    stage; each arrival carries one fresh stage-noise sample, the Charlie
    effect keeps re-centring the spacing, so
    ``sigma_period ~= sqrt(2) * sigma_g``  (Eq. 5) — independent of the
    ring length.

* **Global deterministic jitter** — a common delay modulation.  In the
  IRO it accumulates linearly over the ``2k`` crossings of one period; in
  the STR it shifts all in-flight events alike and mostly cancels out of
  the inter-token spacing.

The module also implements the divider-based measurement method of
Fig. 10 / Eq. 6 used to recover picosecond-level jitter that a real
oscilloscope cannot resolve directly.
"""

from __future__ import annotations

import math

import numpy as np

_SQRT2 = math.sqrt(2.0)


# ----------------------------------------------------------------------
# local Gaussian jitter (Eqs. 4, 5, 7)
# ----------------------------------------------------------------------
def iro_period_jitter_ps(stage_count: int, gate_sigma_ps: float) -> float:
    """Eq. 4: ``sigma_period = sqrt(2 k) * sigma_g`` for a k-stage IRO."""
    if stage_count < 1:
        raise ValueError(f"stage count must be positive, got {stage_count}")
    if gate_sigma_ps < 0.0:
        raise ValueError(f"gate sigma must be non-negative, got {gate_sigma_ps}")
    return math.sqrt(2.0 * stage_count) * gate_sigma_ps


def str_period_jitter_ps(gate_sigma_ps: float) -> float:
    """Eq. 5: ``sigma_period ~= sqrt(2) * sigma_g`` regardless of length."""
    if gate_sigma_ps < 0.0:
        raise ValueError(f"gate sigma must be non-negative, got {gate_sigma_ps}")
    return _SQRT2 * gate_sigma_ps


def gate_jitter_from_iro_period_jitter(period_jitter_ps: float, stage_count: int) -> float:
    """Eq. 7: invert Eq. 4 to estimate the single-LUT jitter ``sigma_g``."""
    if stage_count < 1:
        raise ValueError(f"stage count must be positive, got {stage_count}")
    if period_jitter_ps < 0.0:
        raise ValueError(f"period jitter must be non-negative, got {period_jitter_ps}")
    return period_jitter_ps / math.sqrt(2.0 * stage_count)


def accumulated_jitter_ps(period_jitter_ps: float, period_count: int) -> float:
    """Jitter of the sum of ``period_count`` independent periods.

    Random jitter accumulates with a square-root law, which is the basis
    of the measurement method: after ``N`` periods the accumulated jitter
    is ``sqrt(N) * sigma_p`` while scope noise stays constant.
    """
    if period_count < 1:
        raise ValueError(f"period count must be positive, got {period_count}")
    if period_jitter_ps < 0.0:
        raise ValueError(f"period jitter must be non-negative, got {period_jitter_ps}")
    return math.sqrt(period_count) * period_jitter_ps


# ----------------------------------------------------------------------
# divider measurement method (Fig. 10 / Eq. 6)
# ----------------------------------------------------------------------
def divided_cycle_to_cycle_jitter(period_jitter_ps: float, periods_per_measurement: int) -> float:
    """Expected cycle-to-cycle jitter of the divided signal ``osc_mes``.

    One ``osc_mes`` period sums ``N`` oscillator periods, so its variance
    is ``N * sigma_p^2``; the difference of two successive ``osc_mes``
    periods doubles it: ``sigma_cc = sqrt(2 N) * sigma_p``.
    """
    if periods_per_measurement < 1:
        raise ValueError(f"periods per measurement must be positive, got {periods_per_measurement}")
    return math.sqrt(2.0 * periods_per_measurement) * period_jitter_ps


def recover_period_jitter_from_divided(
    cycle_to_cycle_jitter_ps: float, periods_per_measurement: int
) -> float:
    """Eq. 6: recover ``sigma_p`` from the divided-signal jitter.

    With ``N = 2 n`` periods accumulated per ``osc_mes`` period this is
    exactly the paper's ``sigma_p = sigma_cc_mes / (2 sqrt(n))``.
    """
    if periods_per_measurement < 1:
        raise ValueError(f"periods per measurement must be positive, got {periods_per_measurement}")
    if cycle_to_cycle_jitter_ps < 0.0:
        raise ValueError(f"jitter must be non-negative, got {cycle_to_cycle_jitter_ps}")
    return cycle_to_cycle_jitter_ps / math.sqrt(2.0 * periods_per_measurement)


# ----------------------------------------------------------------------
# global deterministic jitter (Section IV-B)
# ----------------------------------------------------------------------
def iro_deterministic_period_shift_ps(
    stage_count: int, per_stage_deterministic_ps: float
) -> float:
    """Linear accumulation of a common per-stage delay shift over one period.

    ``D_det = sum over the 2k crossings`` — the IRO exposes the full
    modulation in its period, which is what the attacks of [1], [2]
    exploit.
    """
    if stage_count < 1:
        raise ValueError(f"stage count must be positive, got {stage_count}")
    return 2.0 * stage_count * per_stage_deterministic_ps


def str_deterministic_period_shift_ps(
    period_ps: float,
    modulation_factors: np.ndarray,
) -> np.ndarray:
    """First-order STR period shift under a slowly varying modulation.

    The STR period at time ``t`` is the spacing between two successive
    token arrivals; a global modulation ``m(t)`` of all stage delays
    shifts both arrivals almost alike, leaving only the *increment* of
    the modulation over one period::

        delta T(t) ~= T * (m(t) - m(t - T)) ~= T^2 * m'(t)

    Given samples of ``m`` at successive period boundaries this returns
    the per-period shifts, a quantity that is ``O(T * dm)`` instead of
    the IRO's ``O(T * m)`` — the attenuation the paper claims.
    """
    factors = np.asarray(modulation_factors, dtype=float)
    if factors.size < 2:
        raise ValueError("need at least two modulation samples")
    return period_ps * np.diff(factors)


def deterministic_attenuation_ratio(
    iro_shift_ps: float, str_shift_ps: float
) -> float:
    """How much smaller the STR's deterministic term is than the IRO's."""
    if str_shift_ps == 0.0:
        return math.inf
    return abs(iro_shift_ps) / abs(str_shift_ps)
