"""Steady-state solver for the evenly-spaced STR regime (paper Section III).

In the evenly-spaced propagation mode every stage fires periodically and
successive stages fire a constant *hop delay* ``D`` apart.  Writing
``rho = L / (2 NT)``, self-consistency of the Charlie timing model gives
two coupled relations (derived from the firing rule
``t_out = (t_f + t_r)/2 + charlie(s)``):

* the separation time every stage sees is ``s* = (rho - 1) * D``;
* the Charlie delay at that separation is ``charlie(s*) = rho * D``.

Eliminating ``s*`` leaves a single fixed-point equation in ``D`` which
this module solves.  The oscillation period (two output toggles per token
passage) is then::

    T = 2 * L * D / NT = 4 * charlie(s*) ... (for rho expressed back)

Special cases worth knowing:

* ``NT = NB`` and a symmetric diagram (the paper's FPGA hypothesis) give
  ``s* = 0`` and ``D = Ds + Dcharlie`` — every stage operates at the very
  bottom of the Charlie diagram, with maximal smoothing.  Hence the
  paper's statement that such rings have "null separation times ... with
  a maximal Charlie effect".
* For ``NT/NB`` away from the ``Dff/Drr`` ratio, ``|s*|`` grows and the
  operating point slides toward the linear part of the diagram where the
  Charlie slope approaches +-1 and regulation weakens — the precursor of
  the burst mode.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional

from scipy.optimize import brentq

from repro.core.charlie import CharlieDiagram
from repro.units import period_ps_to_mhz


class InvalidRingConfiguration(ValueError):
    """Raised for token/bubble configurations that cannot oscillate."""


def validate_token_configuration(stage_count: int, token_count: int) -> None:
    """Check the paper's oscillation conditions (Section II-C2).

    * ``L >= 3`` stages,
    * ``NT`` a positive even number of tokens,
    * ``NB = L - NT >= 1`` bubble.
    """
    if stage_count < 3:
        raise InvalidRingConfiguration(f"an STR needs at least 3 stages, got {stage_count}")
    if token_count <= 0:
        raise InvalidRingConfiguration(f"token count must be positive, got {token_count}")
    if token_count % 2 != 0:
        raise InvalidRingConfiguration(f"token count must be even, got {token_count}")
    if stage_count - token_count < 1:
        raise InvalidRingConfiguration(
            f"need at least one bubble: L={stage_count}, NT={token_count}"
        )


@dataclasses.dataclass(frozen=True)
class SteadyState:
    """Solved evenly-spaced operating point of an STR.

    Attributes
    ----------
    stage_count, token_count:
        The configuration (``NB = stage_count - token_count``).
    hop_delay_ps:
        Time between firings of adjacent stages (token propagation speed).
    separation_ps:
        Separation time ``s*`` every stage sees in the steady regime.
    period_ps:
        Oscillation period of any stage output.
    charlie_slope:
        Charlie-diagram slope at ``s*``; its magnitude in [0, 1) measures
        how weakly the ring regulates perturbations (0 = strongest).
    """

    stage_count: int
    token_count: int
    hop_delay_ps: float
    separation_ps: float
    period_ps: float
    charlie_slope: float

    @property
    def bubble_count(self) -> int:
        return self.stage_count - self.token_count

    @property
    def frequency_mhz(self) -> float:
        return period_ps_to_mhz(self.period_ps)

    @property
    def revolution_time_ps(self) -> float:
        """Time for one token to travel all around the ring."""
        return self.stage_count * self.hop_delay_ps

    @property
    def regulation_margin(self) -> float:
        """``1 - |slope|``: 1 means maximal Charlie regulation, 0 none."""
        return 1.0 - abs(self.charlie_slope)


def solve_steady_state(
    diagram: CharlieDiagram,
    stage_count: int,
    token_count: int,
    hop_delay_bracket_ps: Optional[float] = None,
) -> SteadyState:
    """Solve the evenly-spaced fixed point for the given configuration.

    Parameters
    ----------
    diagram:
        Charlie diagram of one (nominal) ring stage.
    stage_count, token_count:
        Ring length ``L`` and token count ``NT`` (``NB = L - NT``).
    hop_delay_bracket_ps:
        Optional upper bound for the root search; defaults to a generous
        multiple of the static delay.

    Returns
    -------
    SteadyState
        The solved operating point.
    """
    validate_token_configuration(stage_count, token_count)
    rho = stage_count / (2.0 * token_count)

    params = diagram.parameters
    if math.isclose(rho, 1.0):
        # NT = NB: the fixed point is explicit, s* = s0 of the diagram.
        separation = params.separation_offset_ps
        hop_delay = diagram.delay_ps(separation)
        # With asymmetry s* = (rho-1)*D = 0 requires symmetric diagrams;
        # for asymmetric ones at rho == 1 the exact solution still follows
        # the generic branch below.
        if params.is_symmetric:
            period = 2.0 * stage_count * hop_delay / token_count
            return SteadyState(
                stage_count=stage_count,
                token_count=token_count,
                hop_delay_ps=hop_delay,
                separation_ps=separation,
                period_ps=period,
                charlie_slope=diagram.slope(separation),
            )

    def residual(hop_delay: float) -> float:
        separation = (rho - 1.0) * hop_delay
        return diagram.delay_ps(separation) - rho * hop_delay

    # charlie((rho-1) D) - rho D is positive at D -> 0+ (it tends to
    # charlie(0) > 0) and eventually negative because the Charlie term
    # grows like |rho - 1| D < rho D.  A root therefore exists, near
    # D ~ scale / gap with gap = rho - |rho - 1|: for bubble-starved
    # rings (NB = 1, rho -> 1/2) the gap collapses and the hop delay
    # legitimately diverges (one bubble limits the whole ring), so the
    # bracket must scale accordingly.
    lower = 1e-9
    if hop_delay_bracket_ps is None:
        scale = params.static_delay_ps + params.charlie_ps + abs(params.separation_offset_ps)
        gap = rho - abs(rho - 1.0)
        if gap <= 0.0:
            raise InvalidRingConfiguration(
                f"no oscillatory fixed point for L={stage_count}, NT={token_count}"
            )
        upper = 10.0 * scale / gap + 10.0 * scale
    else:
        upper = hop_delay_bracket_ps
    if residual(upper) > 0.0:
        raise RuntimeError(
            f"steady-state bracket too small: residual({upper}) > 0 for "
            f"L={stage_count}, NT={token_count}"
        )
    hop_delay = float(brentq(residual, lower, upper, xtol=1e-9))
    separation = (rho - 1.0) * hop_delay
    period = 2.0 * stage_count * hop_delay / token_count
    return SteadyState(
        stage_count=stage_count,
        token_count=token_count,
        hop_delay_ps=hop_delay,
        separation_ps=separation,
        period_ps=period,
        charlie_slope=diagram.slope(separation),
    )


def balanced_token_count(stage_count: int) -> int:
    """Largest valid token count with ``NT = NB`` (or nearest even split).

    For even ``L`` this is exactly ``L / 2`` (rounded down to even); for
    odd ``L`` the closest valid balanced configuration is returned.
    """
    if stage_count < 3:
        raise InvalidRingConfiguration(f"an STR needs at least 3 stages, got {stage_count}")
    token_count = stage_count // 2
    if token_count % 2 != 0:
        token_count -= 1
    if token_count < 2:
        token_count = 2
    validate_token_configuration(stage_count, token_count)
    return token_count
