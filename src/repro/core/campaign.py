"""Full characterization campaigns over arbitrary ring sets.

:mod:`repro.core.comparison` answers the paper's specific question (one
IRO vs one STR).  This module is the general tool a downstream user
reaches for: declare any number of ring configurations, run the whole
Section V measurement program over a board bank, and get one
serializable report — frequencies, voltage robustness, extra-device
dispersion, jitter (single-period and long-run diffusion), and the
implied TRNG provisioning for each ring.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.core.characterization import (
    measure_family_dispersion,
    measure_period_jitter,
    sweep_voltage,
)
from repro.fpga.board import Board, BoardBank
from repro.rings.iro import InverterRingOscillator
from repro.rings.str_ring import SelfTimedRing
from repro.simulation.noise import SeedLike
from repro.stats.accumulation import accumulation_profile
from repro.trng.elementary import predicted_shannon_entropy
from repro.trng.phasewalk import reference_period_for_q


@dataclasses.dataclass(frozen=True)
class RingSpec:
    """One ring configuration to characterize."""

    kind: str  # "iro" | "str"
    stage_count: int
    token_count: Optional[int] = None  # STR only; None = balanced

    def __post_init__(self) -> None:
        if self.kind not in ("iro", "str"):
            raise ValueError(f"kind must be 'iro' or 'str', got {self.kind!r}")
        if self.stage_count < 3:
            raise ValueError(f"need at least 3 stages, got {self.stage_count}")
        if self.kind == "iro" and self.token_count is not None:
            raise ValueError("token_count only applies to STRs")

    @property
    def label(self) -> str:
        return f"{self.kind.upper()} {self.stage_count}C"

    def build(self, board: Board):
        if self.kind == "iro":
            return InverterRingOscillator.on_board(board, self.stage_count)
        return SelfTimedRing.on_board(
            board, self.stage_count, token_count=self.token_count
        )


@dataclasses.dataclass(frozen=True)
class RingCampaignResult:
    """Everything measured for one ring configuration."""

    label: str
    nominal_frequency_mhz: float
    delta_f: float
    linearity_r2: float
    sigma_rel: float
    board_frequencies_mhz: List[float]
    period_jitter_ps: float
    diffusion_sigma_ps: float
    trng_reference_period_ps: float
    trng_entropy_bound: float

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class CampaignReport:
    """All ring results plus the campaign configuration."""

    results: List[RingCampaignResult]
    voltages_v: List[float]
    board_count: int
    q_target: float

    def result_for(self, label: str) -> RingCampaignResult:
        for result in self.results:
            if result.label == label:
                return result
        raise KeyError(f"no campaign result for {label!r}")

    def render(self) -> str:
        header = (
            "ring",
            "F [MHz]",
            "delta F",
            "sigma_rel",
            "sigma_p [ps]",
            "diffusion [ps]",
            "T_ref(Q) [us]",
            "H bound",
        )
        rows = [header]
        for result in self.results:
            rows.append(
                (
                    result.label,
                    f"{result.nominal_frequency_mhz:.1f}",
                    f"{result.delta_f:.1%}",
                    f"{result.sigma_rel:.2%}",
                    f"{result.period_jitter_ps:.2f}",
                    f"{result.diffusion_sigma_ps:.2f}",
                    f"{result.trng_reference_period_ps / 1e6:.1f}",
                    f"{result.trng_entropy_bound:.4f}",
                )
            )
        widths = [max(len(row[i]) for row in rows) for i in range(len(header))]
        lines = [
            "  ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip()
            for row in rows
        ]
        lines.insert(1, "-" * (sum(widths) + 2 * (len(widths) - 1)))
        return "\n".join(lines)

    def to_json(self, indent: Optional[int] = 2) -> str:
        payload = {
            "voltages_v": self.voltages_v,
            "board_count": self.board_count,
            "q_target": self.q_target,
            "results": [result.to_dict() for result in self.results],
        }
        return json.dumps(payload, indent=indent)


def run_campaign(
    specs: Sequence[RingSpec],
    bank: Optional[BoardBank] = None,
    voltages_v: Sequence[float] = (1.0, 1.2, 1.4),
    jitter_periods: int = 2048,
    q_target: float = 0.2,
    seed: SeedLike = 0,
) -> CampaignReport:
    """Characterize every spec over the bank and assemble the report.

    The TRNG provisioning column uses the measured long-run *diffusion*
    rate (not the single-period sigma) — the conservative figure an STR
    designer must use (see docs/theory.md Section 7).
    """
    if not specs:
        raise ValueError("need at least one ring spec")
    bank = bank if bank is not None else BoardBank.manufacture(board_count=5, seed=0)
    nominal_board = bank[0]

    results: List[RingCampaignResult] = []
    for spec in specs:
        sweep = sweep_voltage(nominal_board, spec.build, voltages_v)
        dispersion = measure_family_dispersion(bank, spec.build)
        ring = spec.build(nominal_board)
        jitter = measure_period_jitter(
            ring,
            method="population",
            period_count=jitter_periods,
            seed=seed,
            warmup_periods=256,
        )
        periods = ring.simulate(
            jitter_periods, seed=seed, warmup_periods=256
        ).trace.periods_ps()
        diffusion = accumulation_profile(periods).diffusion_sigma_ps
        reference = reference_period_for_q(
            ring.predicted_period_ps(), diffusion, q_target
        )
        q_reached = q_target  # by construction of the reference period
        results.append(
            RingCampaignResult(
                label=spec.label,
                nominal_frequency_mhz=ring.predicted_frequency_mhz(),
                delta_f=float(sweep.excursion()),
                linearity_r2=float(sweep.linearity()),
                sigma_rel=float(dispersion.sigma_rel),
                board_frequencies_mhz=[float(f) for f in dispersion.frequencies_mhz],
                period_jitter_ps=float(jitter.sigma_period_ps),
                diffusion_sigma_ps=float(diffusion),
                trng_reference_period_ps=float(reference),
                trng_entropy_bound=float(predicted_shannon_entropy(q_reached)),
            )
        )
    return CampaignReport(
        results=results,
        voltages_v=[float(v) for v in voltages_v],
        board_count=len(bank),
        q_target=q_target,
    )
