"""Full characterization campaigns over arbitrary ring sets.

:mod:`repro.core.comparison` answers the paper's specific question (one
IRO vs one STR).  This module is the general tool a downstream user
reaches for: declare any number of ring configurations, run the whole
Section V measurement program over a board bank, and get one
serializable report — frequencies, voltage robustness, extra-device
dispersion, jitter (single-period and long-run diffusion), and the
implied TRNG provisioning for each ring.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.core.characterization import (
    measure_family_dispersion,
    measure_period_jitter,
    sweep_voltage,
)
from repro.fpga.board import Board, BoardBank
from repro.parallel.cache import ResultCache, _package_version, fingerprint
from repro.parallel.executor import GridStats, GridTask, ProgressCallback, run_grid
from repro.parallel.seeds import spawn_seeds
from repro.parallel.sharding import MergedRun, ShardRun, ShardSpec, run_shard
from repro.rings.iro import InverterRingOscillator
from repro.rings.str_ring import SelfTimedRing
from repro.simulation.noise import SeedLike
from repro.stats.accumulation import accumulation_profile
from repro.telemetry import get_logger, span
from repro.trng.elementary import predicted_shannon_entropy
from repro.trng.phasewalk import reference_period_for_q

_log = get_logger("repro.core.campaign")

#: Periods per jitter-simulation segment in the fanned-out campaign.
#: Segments are the unit of parallelism *within* one ring spec: a long
#: event-driven run is replaced by independent seed-spawned runs whose
#: period populations are concatenated, so a single slow spec (an STR
#: 96C dominates a TAB2-sized grid ~20:1) no longer bounds the whole
#: campaign's wall-clock.  Serial runs use the same segmentation, which
#: is what keeps ``jobs=N`` bit-identical to ``jobs=1``.
DEFAULT_SEGMENT_PERIODS = 512

#: Warm-up discarded before each segment's jitter statistics.
CAMPAIGN_WARMUP_PERIODS = 256


@dataclasses.dataclass(frozen=True)
class RingSpec:
    """One ring configuration to characterize."""

    kind: str  # "iro" | "str"
    stage_count: int
    token_count: Optional[int] = None  # STR only; None = balanced

    def __post_init__(self) -> None:
        if self.kind not in ("iro", "str"):
            raise ValueError(f"kind must be 'iro' or 'str', got {self.kind!r}")
        if self.stage_count < 3:
            raise ValueError(f"need at least 3 stages, got {self.stage_count}")
        if self.kind == "iro" and self.token_count is not None:
            raise ValueError("token_count only applies to STRs")

    @property
    def label(self) -> str:
        return f"{self.kind.upper()} {self.stage_count}C"

    def build(self, board: Board):
        if self.kind == "iro":
            return InverterRingOscillator.on_board(board, self.stage_count)
        return SelfTimedRing.on_board(
            board, self.stage_count, token_count=self.token_count
        )


@dataclasses.dataclass(frozen=True)
class RingCampaignResult:
    """Everything measured for one ring configuration."""

    label: str
    nominal_frequency_mhz: float
    delta_f: float
    linearity_r2: float
    sigma_rel: float
    board_frequencies_mhz: List[float]
    period_jitter_ps: float
    diffusion_sigma_ps: float
    trng_reference_period_ps: float
    trng_entropy_bound: float

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class CampaignReport:
    """All ring results plus the campaign configuration."""

    results: List[RingCampaignResult]
    voltages_v: List[float]
    board_count: int
    q_target: float

    def result_for(self, label: str) -> RingCampaignResult:
        for result in self.results:
            if result.label == label:
                return result
        raise KeyError(f"no campaign result for {label!r}")

    def render(self) -> str:
        header = (
            "ring",
            "F [MHz]",
            "delta F",
            "sigma_rel",
            "sigma_p [ps]",
            "diffusion [ps]",
            "T_ref(Q) [us]",
            "H bound",
        )
        rows = [header]
        for result in self.results:
            rows.append(
                (
                    result.label,
                    f"{result.nominal_frequency_mhz:.1f}",
                    f"{result.delta_f:.1%}",
                    f"{result.sigma_rel:.2%}",
                    f"{result.period_jitter_ps:.2f}",
                    f"{result.diffusion_sigma_ps:.2f}",
                    f"{result.trng_reference_period_ps / 1e6:.1f}",
                    f"{result.trng_entropy_bound:.4f}",
                )
            )
        widths = [max(len(row[i]) for row in rows) for i in range(len(header))]
        lines = [
            "  ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip()
            for row in rows
        ]
        lines.insert(1, "-" * (sum(widths) + 2 * (len(widths) - 1)))
        return "\n".join(lines)

    def to_json(self, indent: Optional[int] = 2) -> str:
        payload = {
            "voltages_v": self.voltages_v,
            "board_count": self.board_count,
            "q_target": self.q_target,
            "results": [result.to_dict() for result in self.results],
        }
        return json.dumps(payload, indent=indent)


def _segment_lengths(total_periods: int, segment_periods: int) -> List[int]:
    """Split a period budget into simulation segments.

    Full segments of ``segment_periods`` plus the remainder; a remainder
    too short to yield a jitter estimate (< 2 periods) is folded into
    the last segment.
    """
    if total_periods < 1:
        raise ValueError(f"need a positive period budget, got {total_periods}")
    if segment_periods < 2:
        raise ValueError(f"segments need at least 2 periods, got {segment_periods}")
    lengths = [segment_periods] * (total_periods // segment_periods)
    remainder = total_periods % segment_periods
    if remainder >= 2:
        lengths.append(remainder)
    elif remainder and lengths:
        lengths[-1] += remainder
    elif remainder:
        lengths.append(remainder + segment_periods)  # unreachable guard
    return lengths or [total_periods]


def _campaign_segment_worker(task: GridTask) -> List[float]:
    """Grid worker: the period population of one simulation segment."""
    payload = task.payload
    trace = payload["ring"].simulate(
        payload["period_count"],
        seed=task.seed,
        warmup_periods=payload["warmup_periods"],
    ).trace
    return [float(period) for period in trace.periods_ps()]


def _campaign_segments_batch(
    specs: Sequence[RingSpec],
    rings: Sequence[Any],
    lengths: Sequence[int],
    spec_seeds: Sequence[Optional[int]],
) -> List[List[float]]:
    """All jitter segments in two vectorized kernel calls (one per family).

    Segment boundaries and derived seeds are identical to the grid path,
    so IRO segments (bit-exact kernel) reproduce the event-backend
    campaign digits exactly; STR segments are statistically equivalent.
    """
    from repro.simulation.batch import (
        IROBatchSpec,
        STRBatchSpec,
        simulate_iro_batch,
        simulate_str_batch,
    )

    iro_specs: List[IROBatchSpec] = []
    str_specs: List[STRBatchSpec] = []
    slots: List[tuple] = []
    for spec, ring, spec_seed in zip(specs, rings, spec_seeds):
        segment_seeds = spawn_seeds(spec_seed, len(lengths))
        for length, segment_seed in zip(lengths, segment_seeds):
            edge_count = 2 * (length + CAMPAIGN_WARMUP_PERIODS) + 1
            if spec.kind == "iro":
                slots.append(("iro", len(iro_specs)))
                iro_specs.append(
                    IROBatchSpec.from_ring(ring, edge_count=edge_count, seed=segment_seed)
                )
            else:
                slots.append(("str", len(str_specs)))
                str_specs.append(
                    STRBatchSpec.from_ring(ring, edge_count=edge_count, seed=segment_seed)
                )
    iro_traces = simulate_iro_batch(iro_specs).traces if iro_specs else []
    str_traces = simulate_str_batch(str_specs).traces if str_specs else []
    segments: List[List[float]] = []
    for family, index in slots:
        trace = (iro_traces if family == "iro" else str_traces)[index]
        trimmed = trace.skip_edges(2 * CAMPAIGN_WARMUP_PERIODS)
        segments.append([float(period) for period in trimmed.periods_ps()])
    return segments


def _campaign_tasks(
    specs: Sequence[RingSpec],
    rings: Sequence[Any],
    lengths: Sequence[int],
    spec_seeds: Sequence[Optional[int]],
) -> List[GridTask]:
    """The campaign's flat segment grid, seeds derived before any split.

    Shared by the single-host path (:func:`run_campaign`) and the shard
    path (:func:`run_campaign_shard`): both build the *whole* grid from
    the same arguments, so a shard owns a subset of exactly the tasks —
    and seeds — the single-host run would have evaluated.
    """
    tasks: List[GridTask] = []
    for spec, ring, spec_seed in zip(specs, rings, spec_seeds):
        segment_seeds = spawn_seeds(spec_seed, len(lengths))
        for segment_index, (length, segment_seed) in enumerate(zip(lengths, segment_seeds)):
            tasks.append(
                GridTask(
                    kind="campaign_jitter_segment",
                    spec={
                        "ring": fingerprint(ring),
                        "label": spec.label,
                        "segment": segment_index,
                        "period_count": length,
                        "warmup_periods": CAMPAIGN_WARMUP_PERIODS,
                    },
                    seed=segment_seed,
                    payload={
                        "ring": ring,
                        "period_count": length,
                        "warmup_periods": CAMPAIGN_WARMUP_PERIODS,
                    },
                )
            )
    return tasks


def _assemble_result(
    spec: RingSpec,
    ring,
    sweep,
    dispersion,
    periods: np.ndarray,
    q_target: float,
) -> RingCampaignResult:
    """Fold one spec's measurements into its campaign row."""
    diffusion = accumulation_profile(periods).diffusion_sigma_ps
    reference = reference_period_for_q(ring.predicted_period_ps(), diffusion, q_target)
    q_reached = q_target  # by construction of the reference period
    return RingCampaignResult(
        label=spec.label,
        nominal_frequency_mhz=ring.predicted_frequency_mhz(),
        delta_f=float(sweep.excursion()),
        linearity_r2=float(sweep.linearity()),
        sigma_rel=float(dispersion.sigma_rel),
        board_frequencies_mhz=[float(f) for f in dispersion.frequencies_mhz],
        period_jitter_ps=float(np.std(periods, ddof=1)),
        diffusion_sigma_ps=float(diffusion),
        trng_reference_period_ps=float(reference),
        trng_entropy_bound=float(predicted_shannon_entropy(q_reached)),
    )


def run_campaign(
    specs: Sequence[RingSpec],
    bank: Optional[BoardBank] = None,
    voltages_v: Sequence[float] = (1.0, 1.2, 1.4),
    jitter_periods: int = 2048,
    q_target: float = 0.2,
    seed: SeedLike = 0,
    jobs: Optional[int] = 1,
    cache: Optional[ResultCache] = None,
    seed_mode: str = "spawn",
    segment_periods: int = DEFAULT_SEGMENT_PERIODS,
    progress: Optional[ProgressCallback] = None,
    backend: str = "event",
    stats: Optional[GridStats] = None,
) -> CampaignReport:
    """Characterize every spec over the bank and assemble the report.

    The TRNG provisioning column uses the measured long-run *diffusion*
    rate (not the single-period sigma) — the conservative figure an STR
    designer must use (see docs/theory.md Section 7).

    The jitter simulations — the campaign's entire cost — are cut into
    independent seed-spawned segments (``segment_periods`` each) and
    fanned out over ``jobs`` worker processes, consulting ``cache`` per
    segment.  Any job count produces bit-identical reports because the
    segment list and its seeds depend only on the arguments, never on
    scheduling.  ``seed_mode="shared"`` (or a ``numpy.random.Generator``
    seed) selects the legacy serial path: one unsegmented simulation per
    spec, every spec reusing the root seed.

    ``backend="batch"`` runs the very same segment/seed tree through the
    vectorized kernels instead of worker processes (``jobs``/``cache``
    are ignored): IRO rows stay bit-identical to the event path, STR
    rows are statistically equivalent.
    """
    if not specs:
        raise ValueError("need at least one ring spec")
    if backend not in ("event", "batch"):
        raise ValueError(f"backend must be 'event' or 'batch', got {backend!r}")
    bank = bank if bank is not None else BoardBank.manufacture(board_count=5, seed=0)
    nominal_board = bank[0]
    with span(
        "campaign", specs=len(specs), jitter_periods=jitter_periods
    ) as tele:
        _log.info(
            "campaign.start",
            specs=[spec.label for spec in specs],
            jitter_periods=jitter_periods,
            seed_mode=seed_mode,
        )
        if seed_mode == "shared" or isinstance(seed, np.random.Generator):
            report = _run_campaign_legacy(
                specs, bank, voltages_v, jitter_periods, q_target, seed
            )
            _log.info("campaign.complete", rings=len(report.results), path="legacy")
            return report

        rings = [spec.build(nominal_board) for spec in specs]
        spec_seeds = spawn_seeds(seed, len(specs))
        lengths = _segment_lengths(jitter_periods, segment_periods)
        if backend == "batch":
            tele.set("segments", len(lengths) * len(specs))
            segments = _campaign_segments_batch(specs, rings, lengths, spec_seeds)
            results = []
            for index, (spec, ring) in enumerate(zip(specs, rings)):
                sweep = sweep_voltage(nominal_board, spec.build, voltages_v)
                dispersion = measure_family_dispersion(bank, spec.build)
                own = segments[index * len(lengths) : (index + 1) * len(lengths)]
                periods = np.concatenate(
                    [np.asarray(segment, dtype=float) for segment in own]
                )
                results.append(
                    _assemble_result(spec, ring, sweep, dispersion, periods, q_target)
                )
            _log.info("campaign.complete", rings=len(results), path="batch")
            return CampaignReport(
                results=results,
                voltages_v=[float(v) for v in voltages_v],
                board_count=len(bank),
                q_target=q_target,
            )
        tasks = _campaign_tasks(specs, rings, lengths, spec_seeds)
        tele.set("segments", len(tasks))
        segments = run_grid(
            tasks,
            _campaign_segment_worker,
            jobs=jobs,
            cache=cache,
            progress=progress,
            stats=stats,
        )

        results: List[RingCampaignResult] = []
        for index, (spec, ring) in enumerate(zip(specs, rings)):
            sweep = sweep_voltage(nominal_board, spec.build, voltages_v)
            dispersion = measure_family_dispersion(bank, spec.build)
            own = segments[index * len(lengths) : (index + 1) * len(lengths)]
            periods = np.concatenate([np.asarray(segment, dtype=float) for segment in own])
            results.append(
                _assemble_result(spec, ring, sweep, dispersion, periods, q_target)
            )
        _log.info("campaign.complete", rings=len(results), segments=len(tasks))
        return CampaignReport(
            results=results,
            voltages_v=[float(v) for v in voltages_v],
            board_count=len(bank),
            q_target=q_target,
        )


def _run_campaign_legacy(
    specs: Sequence[RingSpec],
    bank: BoardBank,
    voltages_v: Sequence[float],
    jitter_periods: int,
    q_target: float,
    seed: SeedLike,
) -> CampaignReport:
    """The pre-parallel campaign loop, kept bit-compatible for ``seed_mode="shared"``."""
    nominal_board = bank[0]
    results: List[RingCampaignResult] = []
    for spec in specs:
        sweep = sweep_voltage(nominal_board, spec.build, voltages_v)
        dispersion = measure_family_dispersion(bank, spec.build)
        ring = spec.build(nominal_board)
        jitter = measure_period_jitter(
            ring,
            method="population",
            period_count=jitter_periods,
            seed=seed,
            warmup_periods=CAMPAIGN_WARMUP_PERIODS,
        )
        periods = ring.simulate(
            jitter_periods, seed=seed, warmup_periods=CAMPAIGN_WARMUP_PERIODS
        ).trace.periods_ps()
        diffusion = accumulation_profile(periods).diffusion_sigma_ps
        reference = reference_period_for_q(
            ring.predicted_period_ps(), diffusion, q_target
        )
        q_reached = q_target  # by construction of the reference period
        results.append(
            RingCampaignResult(
                label=spec.label,
                nominal_frequency_mhz=ring.predicted_frequency_mhz(),
                delta_f=float(sweep.excursion()),
                linearity_r2=float(sweep.linearity()),
                sigma_rel=float(dispersion.sigma_rel),
                board_frequencies_mhz=[float(f) for f in dispersion.frequencies_mhz],
                period_jitter_ps=float(jitter.sigma_period_ps),
                diffusion_sigma_ps=float(diffusion),
                trng_reference_period_ps=float(reference),
                trng_entropy_bound=float(predicted_shannon_entropy(q_reached)),
            )
        )
    return CampaignReport(
        results=results,
        voltages_v=[float(v) for v in voltages_v],
        board_count=len(bank),
        q_target=q_target,
    )


def campaign_workload(
    specs: Sequence[RingSpec],
    *,
    board_count: int,
    bank_seed: int,
    voltages_v: Sequence[float],
    jitter_periods: int,
    q_target: float,
    seed: int,
    segment_periods: int,
) -> Dict[str, Any]:
    """JSON-able description of a campaign, complete enough to rebuild it.

    Stored in every shard manifest so ``repro merge`` can reconstruct the
    grid and reassemble the final report without re-stating the original
    command line.
    """
    return {
        "workload": "campaign",
        "specs": [
            {
                "kind": spec.kind,
                "stage_count": spec.stage_count,
                "token_count": spec.token_count,
            }
            for spec in specs
        ],
        "board_count": int(board_count),
        "bank_seed": int(bank_seed),
        "voltages_v": [float(v) for v in voltages_v],
        "jitter_periods": int(jitter_periods),
        "q_target": float(q_target),
        "seed": int(seed),
        "segment_periods": int(segment_periods),
    }


def specs_from_workload(workload: Dict[str, Any]) -> List[RingSpec]:
    """Rebuild the ring-spec list from a campaign workload document."""
    return [
        RingSpec(
            kind=str(entry["kind"]),
            stage_count=int(entry["stage_count"]),
            token_count=None if entry.get("token_count") is None else int(entry["token_count"]),
        )
        for entry in workload["specs"]
    ]


def run_campaign_shard(
    specs: Sequence[RingSpec],
    shard: ShardSpec,
    out_dir: Any,
    *,
    board_count: int = 5,
    bank_seed: int = 0,
    voltages_v: Sequence[float] = (1.0, 1.2, 1.4),
    jitter_periods: int = 2048,
    q_target: float = 0.2,
    seed: int = 0,
    segment_periods: int = DEFAULT_SEGMENT_PERIODS,
    jobs: Optional[int] = 1,
    progress: Optional[ProgressCallback] = None,
    stats: Optional[GridStats] = None,
) -> ShardRun:
    """Run one shard of a campaign's segment grid into ``out_dir``.

    Builds exactly the grid :func:`run_campaign` would build from the
    same arguments — seeds fanned out over the *whole* grid before the
    round-robin split — then evaluates only this shard's subset.  The
    output directory is self-contained (result cache + metrics snapshot
    + crash-safe manifest); :func:`repro.parallel.sharding.merge_shards`
    plus :func:`assemble_campaign` turn a complete shard set into a
    report bit-identical to the single-host run.
    """
    if not specs:
        raise ValueError("need at least one ring spec")
    bank = BoardBank.manufacture(board_count=board_count, seed=bank_seed)
    rings = [spec.build(bank[0]) for spec in specs]
    spec_seeds = spawn_seeds(seed, len(specs))
    lengths = _segment_lengths(jitter_periods, segment_periods)
    tasks = _campaign_tasks(specs, rings, lengths, spec_seeds)
    workload = campaign_workload(
        specs,
        board_count=board_count,
        bank_seed=bank_seed,
        voltages_v=voltages_v,
        jitter_periods=jitter_periods,
        q_target=q_target,
        seed=seed,
        segment_periods=segment_periods,
    )
    return run_shard(
        tasks,
        _campaign_segment_worker,
        shard,
        out_dir,
        workload=workload,
        version=_package_version(),
        jobs=jobs,
        progress=progress,
        stats=stats,
    )


def assemble_campaign(
    merged: MergedRun,
    *,
    jobs: Optional[int] = 1,
    progress: Optional[ProgressCallback] = None,
    stats: Optional[GridStats] = None,
) -> CampaignReport:
    """Reassemble the final report from a merged campaign shard set.

    Replays the full grid against the merged cache — every segment is a
    hit (merge validation guarantees completeness), and the remaining
    assembly steps (voltage sweep, dispersion, provisioning) are
    deterministic — so the report, and its ``to_json()`` bytes, are
    identical to what the single-host run produces.
    """
    workload = merged.workload
    if workload.get("workload") != "campaign":
        raise ValueError(
            f"merged run holds a {workload.get('workload')!r} workload, not a campaign"
        )
    specs = specs_from_workload(workload)
    bank = BoardBank.manufacture(
        board_count=int(workload["board_count"]), seed=int(workload["bank_seed"])
    )
    return run_campaign(
        specs,
        bank,
        voltages_v=workload["voltages_v"],
        jitter_periods=int(workload["jitter_periods"]),
        q_target=float(workload["q_target"]),
        seed=int(workload["seed"]),
        jobs=jobs,
        cache=merged.cache,
        segment_periods=int(workload["segment_periods"]),
        progress=progress,
        stats=stats,
    )
