"""Side-by-side STR vs IRO comparison — the paper's bottom line.

:func:`compare_entropy_sources` runs the three campaigns of
:mod:`repro.core.characterization` for one IRO and one STR configuration
and condenses them into a :class:`ComparisonReport` that mirrors the
paper's conclusion section: robustness to voltage, extra-device
dispersion, period jitter, and the implied TRNG operating point.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

import numpy as np

from repro.core.characterization import (
    FamilyDispersionResult,
    JitterMeasurementResult,
    VoltageSweepResult,
    measure_family_dispersion,
    measure_period_jitter,
    sweep_voltage,
)
from repro.fpga.board import Board, BoardBank
from repro.rings.iro import InverterRingOscillator
from repro.rings.str_ring import SelfTimedRing
from repro.simulation.noise import SeedLike
from repro.trng.elementary import ElementaryTrng


@dataclasses.dataclass(frozen=True)
class SourceCharacterization:
    """All campaign results for one entropy source."""

    name: str
    stage_count: int
    nominal_frequency_mhz: float
    voltage_sweep: VoltageSweepResult
    dispersion: FamilyDispersionResult
    jitter: JitterMeasurementResult
    trng_entropy_bound: float

    @property
    def delta_f(self) -> float:
        return self.voltage_sweep.excursion()

    @property
    def sigma_rel(self) -> float:
        return self.dispersion.sigma_rel


@dataclasses.dataclass(frozen=True)
class ComparisonReport:
    """The verdicts of the paper's conclusion, computed."""

    iro: SourceCharacterization
    str_: SourceCharacterization

    @property
    def str_more_robust_to_voltage(self) -> bool:
        """Conclusion 1: the STR's delta F is smaller."""
        return self.str_.delta_f < self.iro.delta_f

    @property
    def str_lower_dispersion(self) -> bool:
        """Conclusion 2: the STR's extra-device sigma_rel is smaller."""
        return self.str_.sigma_rel < self.iro.sigma_rel

    @property
    def str_jitter_length_independent(self) -> bool:
        """Conclusion 3 proxy: STR jitter below the IRO's at this length."""
        return self.str_.jitter.sigma_period_ps <= self.iro.jitter.sigma_period_ps

    def render(self) -> str:
        """Plain-text comparison table for example scripts and logs."""
        rows = [
            ("metric", self.iro.name, self.str_.name),
            (
                "F nominal [MHz]",
                f"{self.iro.nominal_frequency_mhz:.1f}",
                f"{self.str_.nominal_frequency_mhz:.1f}",
            ),
            ("delta F (0.4 V sweep)", f"{self.iro.delta_f:.1%}", f"{self.str_.delta_f:.1%}"),
            ("sigma_rel (boards)", f"{self.iro.sigma_rel:.2%}", f"{self.str_.sigma_rel:.2%}"),
            (
                "sigma_period [ps]",
                f"{self.iro.jitter.sigma_period_ps:.2f}",
                f"{self.str_.jitter.sigma_period_ps:.2f}",
            ),
            (
                "TRNG entropy bound",
                f"{self.iro.trng_entropy_bound:.4f}",
                f"{self.str_.trng_entropy_bound:.4f}",
            ),
        ]
        widths = [max(len(row[column]) for row in rows) for column in range(3)]
        lines = []
        for index, row in enumerate(rows):
            lines.append(
                "  ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip()
            )
            if index == 0:
                lines.append("-" * (sum(widths) + 4))
        return "\n".join(lines)


def _characterize(
    bank: BoardBank,
    builder,
    voltages: Sequence[float],
    reference_period_ps: float,
    jitter_method: str,
    jitter_periods: int,
    seed: SeedLike,
) -> SourceCharacterization:
    board = bank[0]
    ring = builder(board)
    sweep = sweep_voltage(board, builder, voltages)
    dispersion = measure_family_dispersion(bank, builder)
    jitter = measure_period_jitter(
        ring, method=jitter_method, period_count=jitter_periods, seed=seed
    )
    trng = ElementaryTrng(ring, reference_period_ps)
    return SourceCharacterization(
        name=ring.name,
        stage_count=ring.stage_count,
        nominal_frequency_mhz=ring.predicted_frequency_mhz(),
        voltage_sweep=sweep,
        dispersion=dispersion,
        jitter=jitter,
        trng_entropy_bound=trng.predicted_entropy_per_bit(),
    )


def compare_entropy_sources(
    bank: Optional[BoardBank] = None,
    iro_stages: int = 5,
    str_stages: int = 96,
    voltages: Sequence[float] = tuple(np.round(np.arange(1.0, 1.41, 0.05), 3)),
    reference_period_ps: float = 1.0e6,
    jitter_method: str = "divider",
    jitter_periods: int = 8192,
    seed: SeedLike = 0,
) -> ComparisonReport:
    """Run the paper's full comparison for one IRO/STR configuration pair.

    Defaults follow the paper's flagship pair: the ~300 MHz 5-stage IRO
    against the ~320 MHz 96-stage STR (Fig. 9), a 1.0-1.4 V sweep, and a
    1 us reference clock for the implied TRNG.
    """
    bank = bank if bank is not None else BoardBank.manufacture(board_count=5, seed=0)
    iro = _characterize(
        bank,
        lambda board: InverterRingOscillator.on_board(board, iro_stages),
        voltages,
        reference_period_ps,
        jitter_method,
        jitter_periods,
        seed,
    )
    str_result = _characterize(
        bank,
        lambda board: SelfTimedRing.on_board(board, str_stages),
        voltages,
        reference_period_ps,
        jitter_method,
        jitter_periods,
        seed,
    )
    return ComparisonReport(iro=iro, str_=str_result)
