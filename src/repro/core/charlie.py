"""The Charlie-effect delay model of an STR stage (paper Section II-D/III).

A Muller C-element's propagation delay depends on how close together its
two input events arrive: the closer they are, the longer the delay.  The
*Charlie diagram* plots the stage delay (measured from the mean of the two
input arrival instants) against the separation time

    ``s = (t_forward - t_reverse) / 2``.

The paper's symmetric form (Eq. 3) is::

    charlie(s) = Ds + sqrt(Dcharlie^2 + s^2)

a hyperbola inscribed between the asymptotes ``Ds + s`` and ``Ds - s``.
This module implements the slightly more general asymmetric form used by
the time-accurate model of Hamon et al. [4], with distinct forward and
reverse static delays ``Dff`` / ``Drr``::

    charlie(s) = (Dff + Drr)/2 + sqrt(Dcharlie^2 + (s - s0)^2),
    s0 = (Drr - Dff)/2

whose asymptotes are ``Dff + s`` (token-limited) and ``Drr - s``
(bubble-limited).  With ``Dff == Drr == Ds`` this reduces exactly to
Eq. 3 — the FPGA hypothesis of the paper's Section III-A.

The *drafting effect* (delay reduction when the stage fired recently) is
also modelled, as an exponentially decaying delay reduction.  The paper
measured it to be negligible in FPGAs and neglects it; we keep it
available (default zero) so that the ASIC-oriented analyses of [3], [4]
can be replayed too.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np


@dataclasses.dataclass(frozen=True)
class CharlieParameters:
    """Static timing parameters of one STR stage.

    Attributes
    ----------
    forward_delay_ps:
        ``Dff`` — static delay when the forward input arrives much later
        than the reverse input (token-limited regime).
    reverse_delay_ps:
        ``Drr`` — static delay when the reverse input arrives much later
        (bubble-limited regime).
    charlie_ps:
        ``Dcharlie`` — magnitude of the Charlie effect: the extra delay at
        perfectly simultaneous inputs, and the half-width of the smoothed
        region of the diagram.
    """

    forward_delay_ps: float
    reverse_delay_ps: float
    charlie_ps: float

    def __post_init__(self) -> None:
        if self.forward_delay_ps <= 0.0:
            raise ValueError(f"Dff must be positive, got {self.forward_delay_ps}")
        if self.reverse_delay_ps <= 0.0:
            raise ValueError(f"Drr must be positive, got {self.reverse_delay_ps}")
        if self.charlie_ps < 0.0:
            raise ValueError(f"Dcharlie must be non-negative, got {self.charlie_ps}")

    @classmethod
    def symmetric(cls, static_delay_ps: float, charlie_ps: float) -> "CharlieParameters":
        """Parameters for the paper's symmetric Eq. 3 (``Dff == Drr == Ds``)."""
        return cls(
            forward_delay_ps=static_delay_ps,
            reverse_delay_ps=static_delay_ps,
            charlie_ps=charlie_ps,
        )

    @property
    def static_delay_ps(self) -> float:
        """``Ds = (Dff + Drr) / 2`` — the mean static delay."""
        return 0.5 * (self.forward_delay_ps + self.reverse_delay_ps)

    @property
    def separation_offset_ps(self) -> float:
        """``s0 = (Drr - Dff) / 2`` — diagram shift due to Dff/Drr asymmetry."""
        return 0.5 * (self.reverse_delay_ps - self.forward_delay_ps)

    @property
    def is_symmetric(self) -> bool:
        """True when ``Dff == Drr`` (the paper's FPGA hypothesis)."""
        return self.forward_delay_ps == self.reverse_delay_ps


@dataclasses.dataclass(frozen=True)
class DraftingEffect:
    """Exponentially decaying delay reduction after a recent output event.

    ``reduction(dt) = amplitude_ps * exp(-dt / time_constant_ps)`` where
    ``dt`` is the time elapsed since the stage's previous output event.
    ``amplitude_ps = 0`` disables the effect, which is the paper's choice
    for FPGA targets (Section II-D2).
    """

    amplitude_ps: float = 0.0
    time_constant_ps: float = 100.0

    def __post_init__(self) -> None:
        if self.amplitude_ps < 0.0:
            raise ValueError(f"amplitude must be non-negative, got {self.amplitude_ps}")
        if self.time_constant_ps <= 0.0:
            raise ValueError(f"time constant must be positive, got {self.time_constant_ps}")

    @property
    def is_active(self) -> bool:
        return self.amplitude_ps > 0.0

    def reduction_ps(self, elapsed_ps: float) -> float:
        """Delay reduction for an output event ``elapsed_ps`` after the last.

        ``numpy.exp`` for the same reason :meth:`CharlieDiagram.delay_ps`
        uses ``numpy.hypot``: the libm and numpy transcendentals round
        differently for a few percent of inputs, and the event engine
        must stay bit-identical to the batch kernel.
        """
        if elapsed_ps < 0.0:
            raise ValueError(f"elapsed time must be non-negative, got {elapsed_ps}")
        if self.amplitude_ps == 0.0:
            return 0.0
        return self.amplitude_ps * float(np.exp(-elapsed_ps / self.time_constant_ps))


class CharlieDiagram:
    """The Charlie diagram of one STR stage.

    Combines the static/Charlie parameters with an optional drafting
    effect and answers the two questions the event-driven simulator asks:

    * :meth:`delay_ps` — stage delay from the *mean* input arrival time,
      as a function of separation time ``s``;
    * :meth:`output_time_ps` — absolute firing instant given the two
      input event instants.
    """

    def __init__(
        self,
        parameters: CharlieParameters,
        drafting: DraftingEffect = DraftingEffect(),
    ) -> None:
        self._parameters = parameters
        self._drafting = drafting

    @property
    def parameters(self) -> CharlieParameters:
        return self._parameters

    @property
    def drafting(self) -> DraftingEffect:
        return self._drafting

    # ------------------------------------------------------------------
    # the diagram itself
    # ------------------------------------------------------------------
    def delay_ps(self, separation_ps: float) -> float:
        """Stage delay from the mean input arrival time (Eq. 3).

        Uses ``numpy.hypot`` rather than ``math.hypot``: the two round
        differently for ~0.7% of inputs (1 ulp), and the scalar path
        must stay bit-identical to :meth:`delay_array_ps` and the batch
        kernel (:mod:`repro.simulation.batch`), which are built on the
        numpy ufunc.

        >>> diagram = CharlieDiagram(CharlieParameters.symmetric(100.0, 50.0))
        >>> diagram.delay_ps(0.0)
        150.0
        """
        params = self._parameters
        shifted = separation_ps - params.separation_offset_ps
        return params.static_delay_ps + float(np.hypot(params.charlie_ps, shifted))

    def delay_array_ps(self, separations_ps: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`delay_ps` for plotting / sweeps."""
        params = self._parameters
        shifted = np.asarray(separations_ps, dtype=float) - params.separation_offset_ps
        return params.static_delay_ps + np.hypot(params.charlie_ps, shifted)

    def slope(self, separation_ps: float) -> float:
        """Derivative ``d charlie / d s`` at ``separation_ps``.

        The slope lies in (-1, 1); its magnitude near the operating point
        measures how much of an input-timing perturbation leaks into the
        output timing.  A small slope (deep Charlie region) is what makes
        the STR robust (Section III-B).
        """
        params = self._parameters
        shifted = separation_ps - params.separation_offset_ps
        if params.charlie_ps == 0.0 and shifted == 0.0:
            return 0.0
        return shifted / math.hypot(params.charlie_ps, shifted)

    def asymptote_gap_ps(self, separation_ps: float) -> float:
        """Distance between the diagram and its asymptotes at ``s``.

        Tends to zero for ``|s| >> Dcharlie`` — the "linear part" of the
        diagram where the Charlie effect is negligible (Section V-B).
        """
        params = self._parameters
        shifted = abs(separation_ps - params.separation_offset_ps)
        return math.hypot(params.charlie_ps, shifted) - shifted

    def is_in_linear_region(self, separation_ps: float, tolerance_ps: float = 1.0) -> bool:
        """True when the Charlie effect contributes under ``tolerance_ps``."""
        return self.asymptote_gap_ps(separation_ps) < tolerance_ps

    # ------------------------------------------------------------------
    # event timing
    # ------------------------------------------------------------------
    def separation_ps(self, forward_time_ps: float, reverse_time_ps: float) -> float:
        """``s = (t_forward - t_reverse) / 2`` for two input events."""
        return 0.5 * (forward_time_ps - reverse_time_ps)

    def output_time_ps(
        self,
        forward_time_ps: float,
        reverse_time_ps: float,
        last_output_time_ps: float = -math.inf,
    ) -> float:
        """Absolute firing instant for the given input event instants.

        The firing instant is ``(t_f + t_r)/2 + charlie(s)`` minus the
        drafting reduction.  Because ``charlie(s) >= |s - s0| + Ds`` the
        result is always causal (later than both inputs) as long as the
        drafting reduction stays below the static delay.
        """
        mean_time = 0.5 * (forward_time_ps + reverse_time_ps)
        separation = self.separation_ps(forward_time_ps, reverse_time_ps)
        delay = self.delay_ps(separation)
        if self._drafting.is_active and math.isfinite(last_output_time_ps):
            elapsed = mean_time + delay - last_output_time_ps
            if elapsed > 0.0:
                delay -= self._drafting.reduction_ps(elapsed)
        output_time = mean_time + delay
        latest_input = max(forward_time_ps, reverse_time_ps)
        if output_time <= latest_input:
            # The drafting reduction may not break causality.
            output_time = math.nextafter(latest_input, math.inf)
        return output_time

    def __repr__(self) -> str:
        return f"CharlieDiagram(parameters={self._parameters!r}, drafting={self._drafting!r})"
