"""Experiment drivers: the measurement campaigns of Section V.

Three campaigns, each mirroring one subsection of the paper's evaluation:

* :func:`sweep_voltage` — frequency vs core supply (Fig. 8, Table I);
* :func:`measure_family_dispersion` — the same bitstream on every board
  of a bank (Table II);
* :func:`measure_period_jitter` — period jitter through the full
  measurement chain (Figs. 9, 11, 12), with the divider method of
  Fig. 10 as the default instrument.

Each driver accepts a *ring builder* — a callable resolving a ring on a
given board — so the same campaign code runs for IROs, STRs, or anything
else implementing :class:`~repro.rings.base.RingOscillator`.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.fpga.board import Board, BoardBank
from repro.fpga.voltage import NOMINAL_CORE_VOLTAGE, SupplySpec
from repro.measurement.counters import RippleDivider
from repro.measurement.jitter import (
    DividerJitterReading,
    measure_period_jitter_direct,
    measure_period_jitter_divider,
)
from repro.rings.base import RingOscillator
from repro.simulation.noise import SeedLike
from repro.stats.descriptive import (
    linearity_r_squared,
    normalized_excursion,
    normalized_frequencies,
    relative_standard_deviation,
)

#: Resolves a ring oscillator on a board.
RingBuilder = Callable[[Board], RingOscillator]


# ----------------------------------------------------------------------
# voltage sweeps (Fig. 8 / Table I)
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class VoltageSweepResult:
    """Frequency response of one ring to a core-voltage sweep."""

    ring_name: str
    voltages_v: np.ndarray
    frequencies_mhz: np.ndarray
    nominal_voltage_v: float

    @property
    def nominal_frequency_mhz(self) -> float:
        """Frequency at (the closest sampled point to) the nominal voltage."""
        index = int(np.argmin(np.abs(self.voltages_v - self.nominal_voltage_v)))
        return float(self.frequencies_mhz[index])

    def normalized(self) -> np.ndarray:
        """``Fn`` series for the Fig. 8 plot."""
        return normalized_frequencies(self.frequencies_mhz, self.nominal_frequency_mhz)

    def excursion(self) -> float:
        """Table I metric over the sampled sweep ends."""
        return normalized_excursion(
            float(self.frequencies_mhz[np.argmin(self.voltages_v)]),
            float(self.frequencies_mhz[np.argmax(self.voltages_v)]),
            self.nominal_frequency_mhz,
        )

    def linearity(self) -> float:
        """R^2 of frequency vs voltage (the paper observes ~linear)."""
        return linearity_r_squared(self.voltages_v, self.frequencies_mhz)


def sweep_voltage(
    board: Board,
    ring_builder: RingBuilder,
    voltages_v: Sequence[float],
    measure: bool = False,
    period_count: int = 64,
    seed: SeedLike = 0,
) -> VoltageSweepResult:
    """Sweep the core supply and record the ring frequency at each point.

    ``measure=False`` reads the analytical frequency (exact, instant);
    ``measure=True`` runs the event-driven simulation at each point, as a
    real campaign would.
    """
    if len(voltages_v) < 2:
        raise ValueError("a sweep needs at least two voltage points")
    frequencies = []
    name = None
    for voltage in voltages_v:
        ring = ring_builder(board.with_supply(SupplySpec(voltage_v=float(voltage))))
        name = ring.name
        if measure:
            frequencies.append(ring.measure_frequency_mhz(period_count=period_count, seed=seed))
        else:
            frequencies.append(ring.predicted_frequency_mhz())
    return VoltageSweepResult(
        ring_name=name,
        voltages_v=np.asarray(voltages_v, dtype=float),
        frequencies_mhz=np.asarray(frequencies, dtype=float),
        nominal_voltage_v=NOMINAL_CORE_VOLTAGE,
    )


# ----------------------------------------------------------------------
# extra-device dispersion (Table II)
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class FamilyDispersionResult:
    """Same-bitstream frequencies across a board bank."""

    ring_name: str
    board_names: Sequence[str]
    frequencies_mhz: np.ndarray

    @property
    def mean_frequency_mhz(self) -> float:
        return float(np.mean(self.frequencies_mhz))

    @property
    def sigma_rel(self) -> float:
        """Table II metric."""
        return relative_standard_deviation(self.frequencies_mhz)


def measure_family_dispersion(
    bank: BoardBank,
    ring_builder: RingBuilder,
    measure: bool = False,
    period_count: int = 64,
    seed: SeedLike = 0,
) -> FamilyDispersionResult:
    """Send the same "bitstream" to every board and compare frequencies."""
    frequencies = []
    names = []
    ring_name = None
    for board in bank:
        ring = ring_builder(board)
        ring_name = ring.name
        names.append(board.name)
        if measure:
            frequencies.append(ring.measure_frequency_mhz(period_count=period_count, seed=seed))
        else:
            frequencies.append(ring.predicted_frequency_mhz())
    return FamilyDispersionResult(
        ring_name=ring_name,
        board_names=tuple(names),
        frequencies_mhz=np.asarray(frequencies, dtype=float),
    )


# ----------------------------------------------------------------------
# jitter campaigns (Figs. 9, 11, 12)
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class JitterMeasurementResult:
    """Period jitter of one ring through the chosen instrument chain."""

    ring_name: str
    stage_count: int
    sigma_period_ps: float
    mean_period_ps: float
    method: str
    divider_reading: Optional[DividerJitterReading] = None

    @property
    def frequency_mhz(self) -> float:
        return 1e6 / self.mean_period_ps


def measure_period_jitter(
    ring: RingOscillator,
    method: str = "divider",
    period_count: int = 8192,
    seed: SeedLike = 0,
    divider: Optional[RippleDivider] = None,
    warmup_periods: int = 64,
) -> JitterMeasurementResult:
    """Measure a ring's period jitter.

    Methods:

    * ``"population"`` — std of the simulated period population (no
      instrument error; ground truth);
    * ``"direct"`` — the naive scope reading (biased for ps jitter);
    * ``"divider"`` — the Fig. 10 on-chip divider method (the paper's).
    """
    if method not in ("population", "direct", "divider"):
        raise ValueError(f"unknown method {method!r}")
    # Process-varied rings settle slowly (weak restoring slopes near the
    # Charlie bottom); a generous warm-up keeps the start-up transient
    # out of the jitter statistics.
    result = ring.simulate(period_count, seed=seed, warmup_periods=warmup_periods)
    trace = result.trace
    mean_period = trace.mean_period_ps()
    divider_reading = None
    if method == "population":
        sigma = trace.period_jitter_ps()
    elif method == "direct":
        sigma = measure_period_jitter_direct(trace, seed=seed).sigma_period_ps
    else:
        divider = divider if divider is not None else RippleDivider()
        divider_reading = measure_period_jitter_divider(trace, divider=divider, seed=seed)
        sigma = divider_reading.sigma_period_ps
    return JitterMeasurementResult(
        ring_name=ring.name,
        stage_count=ring.stage_count,
        sigma_period_ps=sigma,
        mean_period_ps=mean_period,
        method=method,
        divider_reading=divider_reading,
    )


def jitter_versus_length(
    board: Board,
    lengths: Sequence[int],
    ring_family: str,
    method: str = "population",
    period_count: int = 4096,
    seed: SeedLike = 0,
) -> List[JitterMeasurementResult]:
    """Period jitter as a function of ring length (Figs. 11 and 12)."""
    from repro.rings.iro import InverterRingOscillator
    from repro.rings.str_ring import SelfTimedRing

    if ring_family not in ("iro", "str"):
        raise ValueError(f"ring_family must be 'iro' or 'str', got {ring_family!r}")
    results = []
    for length in lengths:
        if ring_family == "iro":
            ring: RingOscillator = InverterRingOscillator.on_board(board, length)
        else:
            ring = SelfTimedRing.on_board(board, length)
        results.append(
            measure_period_jitter(ring, method=method, period_count=period_count, seed=seed)
        )
    return results
