"""Experiment drivers: the measurement campaigns of Section V.

Three campaigns, each mirroring one subsection of the paper's evaluation:

* :func:`sweep_voltage` — frequency vs core supply (Fig. 8, Table I);
* :func:`measure_family_dispersion` — the same bitstream on every board
  of a bank (Table II);
* :func:`measure_period_jitter` — period jitter through the full
  measurement chain (Figs. 9, 11, 12), with the divider method of
  Fig. 10 as the default instrument.

Each driver accepts a *ring builder* — a callable resolving a ring on a
given board — so the same campaign code runs for IROs, STRs, or anything
else implementing :class:`~repro.rings.base.RingOscillator`.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.fpga.board import Board, BoardBank
from repro.fpga.voltage import NOMINAL_CORE_VOLTAGE, SupplySpec
from repro.measurement.counters import RippleDivider
from repro.measurement.jitter import (
    DividerJitterReading,
    measure_period_jitter_direct,
    measure_period_jitter_divider,
)
from repro.parallel.cache import ResultCache, fingerprint
from repro.parallel.executor import GridTask, run_grid
from repro.parallel.seeds import spawn_seeds
from repro.rings.base import RingOscillator
from repro.simulation.noise import SeedLike
from repro.stats.descriptive import (
    linearity_r_squared,
    normalized_excursion,
    normalized_frequencies,
    relative_standard_deviation,
)
from repro.stats.normality import NormalityReport
from repro.telemetry import get_logger, span

_log = get_logger("repro.core.characterization")

#: Resolves a ring oscillator on a board.
RingBuilder = Callable[[Board], RingOscillator]

#: Seed-handling modes of the grid campaigns.  ``"spawn"`` derives one
#: independent child seed per grid point (the fix for the historical
#: noise-stream correlation across boards/voltages); ``"shared"`` keeps
#: the legacy behaviour of passing the root seed to every point.
SEED_MODES = ("spawn", "shared")


def _point_seeds(seed: SeedLike, count: int, seed_mode: str) -> List[Optional[int]]:
    """Per-grid-point seeds under the chosen mode (see :data:`SEED_MODES`)."""
    if seed_mode not in SEED_MODES:
        raise ValueError(f"seed_mode must be one of {SEED_MODES}, got {seed_mode!r}")
    if seed_mode == "spawn":
        return spawn_seeds(seed, count)
    return [seed] * count  # type: ignore[list-item]


def _measure_frequency_worker(task: GridTask) -> float:
    """Grid worker: mean event-driven frequency of one resolved ring."""
    payload = task.payload
    return float(
        payload["ring"].measure_frequency_mhz(
            period_count=payload["period_count"], seed=task.seed
        )
    )


# ----------------------------------------------------------------------
# voltage sweeps (Fig. 8 / Table I)
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class VoltageSweepResult:
    """Frequency response of one ring to a core-voltage sweep."""

    ring_name: str
    voltages_v: np.ndarray
    frequencies_mhz: np.ndarray
    nominal_voltage_v: float

    @property
    def nominal_frequency_mhz(self) -> float:
        """Frequency at (the closest sampled point to) the nominal voltage."""
        index = int(np.argmin(np.abs(self.voltages_v - self.nominal_voltage_v)))
        return float(self.frequencies_mhz[index])

    def normalized(self) -> np.ndarray:
        """``Fn`` series for the Fig. 8 plot."""
        return normalized_frequencies(self.frequencies_mhz, self.nominal_frequency_mhz)

    def excursion(self) -> float:
        """Table I metric over the sampled sweep ends."""
        return normalized_excursion(
            float(self.frequencies_mhz[np.argmin(self.voltages_v)]),
            float(self.frequencies_mhz[np.argmax(self.voltages_v)]),
            self.nominal_frequency_mhz,
        )

    def linearity(self) -> float:
        """R^2 of frequency vs voltage (the paper observes ~linear)."""
        return linearity_r_squared(self.voltages_v, self.frequencies_mhz)


def sweep_voltage(
    board: Board,
    ring_builder: RingBuilder,
    voltages_v: Sequence[float],
    measure: bool = False,
    period_count: int = 64,
    seed: SeedLike = 0,
    jobs: Optional[int] = 1,
    cache: Optional[ResultCache] = None,
    seed_mode: str = "spawn",
) -> VoltageSweepResult:
    """Sweep the core supply and record the ring frequency at each point.

    ``measure=False`` reads the analytical frequency (exact, instant);
    ``measure=True`` runs the event-driven simulation at each point, as a
    real campaign would.  Measured sweeps fan out over ``jobs`` worker
    processes and consult the result ``cache``; each voltage point gets
    its own derived seed unless ``seed_mode="shared"`` requests the
    legacy single-seed behaviour.  Passing a ``numpy.random.Generator``
    as ``seed`` implies the legacy shared-stream serial path.
    """
    if len(voltages_v) < 2:
        raise ValueError("a sweep needs at least two voltage points")
    with span("sweep_voltage", points=len(voltages_v), measured=bool(measure)):
        rings = [
            ring_builder(board.with_supply(SupplySpec(voltage_v=float(voltage))))
            for voltage in voltages_v
        ]
        name = rings[-1].name
        if not measure:
            frequencies = [ring.predicted_frequency_mhz() for ring in rings]
        elif isinstance(seed, np.random.Generator):
            # Legacy coupled-stream path: one shared generator, strictly serial.
            frequencies = [
                ring.measure_frequency_mhz(period_count=period_count, seed=seed)
                for ring in rings
            ]
        else:
            seeds = _point_seeds(seed, len(rings), seed_mode)
            tasks = [
                GridTask(
                    kind="sweep_point",
                    spec={
                        "ring": fingerprint(ring),
                        "voltage_v": float(voltage),
                        "period_count": period_count,
                    },
                    seed=point_seed,
                    payload={"ring": ring, "period_count": period_count},
                )
                for ring, voltage, point_seed in zip(rings, voltages_v, seeds)
            ]
            frequencies = run_grid(tasks, _measure_frequency_worker, jobs=jobs, cache=cache)
        return VoltageSweepResult(
            ring_name=name,
            voltages_v=np.asarray(voltages_v, dtype=float),
            frequencies_mhz=np.asarray(frequencies, dtype=float),
            nominal_voltage_v=NOMINAL_CORE_VOLTAGE,
        )


# ----------------------------------------------------------------------
# extra-device dispersion (Table II)
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class FamilyDispersionResult:
    """Same-bitstream frequencies across a board bank."""

    ring_name: str
    board_names: Sequence[str]
    frequencies_mhz: np.ndarray

    @property
    def mean_frequency_mhz(self) -> float:
        return float(np.mean(self.frequencies_mhz))

    @property
    def sigma_rel(self) -> float:
        """Table II metric."""
        return relative_standard_deviation(self.frequencies_mhz)


def measure_family_dispersion(
    bank: BoardBank,
    ring_builder: RingBuilder,
    measure: bool = False,
    period_count: int = 64,
    seed: SeedLike = 0,
    jobs: Optional[int] = 1,
    cache: Optional[ResultCache] = None,
    seed_mode: str = "spawn",
) -> FamilyDispersionResult:
    """Send the same "bitstream" to every board and compare frequencies.

    Measured runs parallelize across boards (``jobs``) with per-board
    derived seeds — the historical shared seed made every board see the
    same noise stream, understating the dispersion of measured
    frequencies; ``seed_mode="shared"`` restores that behaviour.
    """
    with span("family_dispersion", boards=len(bank), measured=bool(measure)):
        rings = [ring_builder(board) for board in bank]
        names = tuple(board.name for board in bank)
        ring_name = rings[-1].name
        if not measure:
            frequencies = [ring.predicted_frequency_mhz() for ring in rings]
        elif isinstance(seed, np.random.Generator):
            frequencies = [
                ring.measure_frequency_mhz(period_count=period_count, seed=seed)
                for ring in rings
            ]
        else:
            seeds = _point_seeds(seed, len(rings), seed_mode)
            tasks = [
                GridTask(
                    kind="dispersion_point",
                    spec={
                        "ring": fingerprint(ring),
                        "board": board.name,
                        "period_count": period_count,
                    },
                    seed=point_seed,
                    payload={"ring": ring, "period_count": period_count},
                )
                for ring, board, point_seed in zip(rings, bank, seeds)
            ]
            frequencies = run_grid(tasks, _measure_frequency_worker, jobs=jobs, cache=cache)
        return FamilyDispersionResult(
            ring_name=ring_name,
            board_names=names,
            frequencies_mhz=np.asarray(frequencies, dtype=float),
        )


# ----------------------------------------------------------------------
# jitter campaigns (Figs. 9, 11, 12)
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class JitterMeasurementResult:
    """Period jitter of one ring through the chosen instrument chain."""

    ring_name: str
    stage_count: int
    sigma_period_ps: float
    mean_period_ps: float
    method: str
    divider_reading: Optional[DividerJitterReading] = None

    @property
    def frequency_mhz(self) -> float:
        return 1e6 / self.mean_period_ps


def _jitter_from_trace(
    ring: RingOscillator,
    trace,
    method: str,
    seed: SeedLike,
    divider: Optional[RippleDivider] = None,
) -> JitterMeasurementResult:
    """Apply the chosen jitter instrument to an already-simulated trace."""
    mean_period = trace.mean_period_ps()
    divider_reading = None
    if method == "population":
        sigma = trace.period_jitter_ps()
    elif method == "direct":
        sigma = measure_period_jitter_direct(trace, seed=seed).sigma_period_ps
    else:
        divider = divider if divider is not None else RippleDivider()
        divider_reading = measure_period_jitter_divider(trace, divider=divider, seed=seed)
        sigma = divider_reading.sigma_period_ps
    return JitterMeasurementResult(
        ring_name=ring.name,
        stage_count=ring.stage_count,
        sigma_period_ps=sigma,
        mean_period_ps=mean_period,
        method=method,
        divider_reading=divider_reading,
    )


def measure_period_jitter(
    ring: RingOscillator,
    method: str = "divider",
    period_count: int = 8192,
    seed: SeedLike = 0,
    divider: Optional[RippleDivider] = None,
    warmup_periods: int = 64,
    backend: str = "event",
) -> JitterMeasurementResult:
    """Measure a ring's period jitter.

    Methods:

    * ``"population"`` — std of the simulated period population (no
      instrument error; ground truth);
    * ``"direct"`` — the naive scope reading (biased for ps jitter);
    * ``"divider"`` — the Fig. 10 on-chip divider method (the paper's).

    ``backend`` selects the simulation engine (see
    :meth:`~repro.rings.base.RingOscillator.simulate`); the instrument
    chain on top of the trace is identical either way.
    """
    if method not in ("population", "direct", "divider"):
        raise ValueError(f"unknown method {method!r}")
    with span("measure_period_jitter", ring=ring.name, method=method):
        # Process-varied rings settle slowly (weak restoring slopes near
        # the Charlie bottom); a generous warm-up keeps the start-up
        # transient out of the jitter statistics.
        result = ring.simulate(
            period_count, seed=seed, warmup_periods=warmup_periods, backend=backend
        )
        return _jitter_from_trace(ring, result.trace, method, seed, divider)


def _jitter_result_to_payload(result: JitterMeasurementResult) -> Dict[str, Any]:
    """JSON-able form of a jitter measurement (for grid workers/cache)."""
    payload = dataclasses.asdict(result)
    return payload


def _jitter_result_from_payload(payload: Dict[str, Any]) -> JitterMeasurementResult:
    """Rebuild a jitter measurement from :func:`_jitter_result_to_payload`."""
    reading = payload.get("divider_reading")
    divider_reading = None
    if reading is not None:
        divider_reading = DividerJitterReading(
            **{**reading, "normality": NormalityReport(**reading["normality"])}
        )
    return JitterMeasurementResult(
        ring_name=payload["ring_name"],
        stage_count=payload["stage_count"],
        sigma_period_ps=payload["sigma_period_ps"],
        mean_period_ps=payload["mean_period_ps"],
        method=payload["method"],
        divider_reading=divider_reading,
    )


def _jitter_point_worker(task: GridTask) -> Dict[str, Any]:
    """Grid worker: full jitter measurement of one resolved ring."""
    payload = task.payload
    result = measure_period_jitter(
        payload["ring"],
        method=payload["method"],
        period_count=payload["period_count"],
        seed=task.seed,
        warmup_periods=payload["warmup_periods"],
    )
    return _jitter_result_to_payload(result)


#: Replica fan-out of the batched STR jitter driver: one long run is
#: split into this many independently seeded shorter runs so the batch
#: kernel gets width to vectorize over.  Statistically equivalent for
#: the population method (independent periods either way); capped so
#: per-replica warm-up stays a minority of the simulated periods.
STR_BATCH_REPLICAS = 8

#: Warm-up discarded by every jitter campaign point (see
#: :func:`measure_period_jitter`).
_JITTER_WARMUP_PERIODS = 64


def _jitter_versus_length_batch(
    rings: Sequence[RingOscillator],
    ring_family: str,
    method: str,
    period_count: int,
    seeds: Sequence[Optional[int]],
    divider: Optional[RippleDivider] = None,
) -> List[JitterMeasurementResult]:
    """Batched jitter-vs-length: one vectorized kernel call for all lengths.

    IRO campaigns are bit-identical to the event path (single stream per
    length, same derived seed).  STR campaigns with the ``population``
    method split each length into :data:`STR_BATCH_REPLICAS` seed-derived
    replicas and pool the period populations — statistically equivalent,
    and what gives the wave kernel its batch width.  Other STR methods
    need one contiguous trace and run a single replica per length.
    """
    from repro.simulation.batch import (
        IROBatchSpec,
        STRBatchSpec,
        simulate_iro_batch,
        simulate_str_batch,
    )

    warmup = _JITTER_WARMUP_PERIODS
    if ring_family == "iro":
        specs = [
            IROBatchSpec.from_ring(
                ring, edge_count=2 * (period_count + warmup) + 1, seed=point_seed
            )
            for ring, point_seed in zip(rings, seeds)
        ]
        result = simulate_iro_batch(specs)
        return [
            _jitter_from_trace(
                ring, trace.skip_edges(2 * warmup), method, point_seed, divider
            )
            for ring, trace, point_seed in zip(rings, result.traces, seeds)
        ]

    replicas = 1
    if method == "population":
        replicas = max(1, min(STR_BATCH_REPLICAS, period_count // (2 * warmup)))
    per_replica = -(-period_count // replicas)  # ceil division
    specs = []
    for ring, point_seed in zip(rings, seeds):
        for child in spawn_seeds(point_seed, replicas):
            specs.append(
                STRBatchSpec.from_ring(
                    ring,
                    edge_count=2 * (per_replica + warmup) + 1,
                    seed=child,
                )
            )
    result = simulate_str_batch(specs)
    measurements = []
    for index, (ring, point_seed) in enumerate(zip(rings, seeds)):
        traces = [
            trace.skip_edges(2 * warmup)
            for trace in result.traces[index * replicas : (index + 1) * replicas]
        ]
        if replicas == 1:
            measurements.append(
                _jitter_from_trace(ring, traces[0], method, point_seed, divider)
            )
            continue
        pooled = np.concatenate([trace.periods_ps() for trace in traces])
        measurements.append(
            JitterMeasurementResult(
                ring_name=ring.name,
                stage_count=ring.stage_count,
                sigma_period_ps=float(np.std(pooled, ddof=1)),
                mean_period_ps=float(np.mean(pooled)),
                method=method,
            )
        )
    return measurements


def jitter_versus_length(
    board: Board,
    lengths: Sequence[int],
    ring_family: str,
    method: str = "population",
    period_count: int = 4096,
    seed: SeedLike = 0,
    jobs: Optional[int] = 1,
    cache: Optional[ResultCache] = None,
    seed_mode: str = "spawn",
    backend: str = "event",
) -> List[JitterMeasurementResult]:
    """Period jitter as a function of ring length (Figs. 11 and 12).

    ``backend="event"`` fans one grid task per ring length out over
    ``jobs`` processes; lengths get independent derived seeds
    (``seed_mode="shared"`` keeps the legacy behaviour of reusing the
    root seed at every length).  ``backend="batch"`` advances every
    length in one vectorized kernel call instead (``jobs``/``cache`` are
    ignored — the kernel outruns the process pool by a wide margin).
    """
    from repro.rings.iro import InverterRingOscillator
    from repro.rings.str_ring import SelfTimedRing

    if ring_family not in ("iro", "str"):
        raise ValueError(f"ring_family must be 'iro' or 'str', got {ring_family!r}")
    if backend not in ("event", "batch"):
        raise ValueError(f"backend must be 'event' or 'batch', got {backend!r}")
    with span(
        "jitter_versus_length", family=ring_family, lengths=len(lengths), backend=backend
    ):
        _log.info(
            "jitter_versus_length.start",
            family=ring_family,
            lengths=[int(length) for length in lengths],
            period_count=period_count,
        )
        rings: List[RingOscillator] = []
        for length in lengths:
            if ring_family == "iro":
                rings.append(InverterRingOscillator.on_board(board, length))
            else:
                rings.append(SelfTimedRing.on_board(board, length))
        if isinstance(seed, np.random.Generator):
            # Legacy coupled-stream path: one shared generator, serial, event-only.
            return [
                measure_period_jitter(ring, method=method, period_count=period_count, seed=seed)
                for ring in rings
            ]
        seeds = _point_seeds(seed, len(rings), seed_mode)
        if backend == "batch":
            results = _jitter_versus_length_batch(
                rings, ring_family, method, period_count, seeds
            )
            _log.info(
                "jitter_versus_length.complete",
                family=ring_family,
                points=len(results),
                backend=backend,
            )
            return results
        tasks = [
            GridTask(
                kind="jitter_point",
                spec={
                    "ring": fingerprint(ring),
                    "length": int(length),
                    "family": ring_family,
                    "method": method,
                    "period_count": period_count,
                    "warmup_periods": 64,
                },
                seed=point_seed,
                payload={
                    "ring": ring,
                    "method": method,
                    "period_count": period_count,
                    "warmup_periods": 64,
                },
            )
            for ring, length, point_seed in zip(rings, lengths, seeds)
        ]
        payloads = run_grid(tasks, _jitter_point_worker, jobs=jobs, cache=cache)
        _log.info("jitter_versus_length.complete", family=ring_family, points=len(payloads))
        return [_jitter_result_from_payload(payload) for payload in payloads]
