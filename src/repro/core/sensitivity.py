"""Closed-form environmental sensitivity of composite delay stacks.

A ring's period is a sum of delay components, each following its own
supply law ``D_i(V) = D_i0 / (1 + beta_i (V - V0))``.  This module does
the small algebra the calibration fit and the attack analyses both rest
on, in one audited place:

* :func:`frequency_scale` — the composite frequency vs supply;
* :func:`normalized_excursion` — the Table I ``delta F`` of a stack;
* :func:`sensitivity_weight` — the stack's first-order relative response
  to a delay disturbance referenced to a pure-transistor delay (the
  quantity ``StageTiming.supply_weight`` carries per stage);
* :func:`blended_beta` — the effective single beta of the stack.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, List, Sequence, Tuple

from repro.fpga.voltage import (
    MAX_SWEEP_VOLTAGE,
    MIN_SWEEP_VOLTAGE,
    NOMINAL_CORE_VOLTAGE,
    VoltageSensitivity,
)


@dataclasses.dataclass(frozen=True)
class DelayComponent:
    """One member of a delay stack: a nominal delay and its supply law."""

    delay_ps: float
    beta_per_volt: float

    def __post_init__(self) -> None:
        if self.delay_ps < 0.0:
            raise ValueError(f"delay must be non-negative, got {self.delay_ps}")

    def delay_at(self, supply_v: float) -> float:
        return self.delay_ps * VoltageSensitivity(self.beta_per_volt).delay_factor(
            supply_v
        )


def _validated(components: Iterable[DelayComponent]) -> List[DelayComponent]:
    stack = list(components)
    if not stack:
        raise ValueError("delay stack cannot be empty")
    if sum(component.delay_ps for component in stack) <= 0.0:
        raise ValueError("delay stack must have positive total delay")
    return stack


def total_delay_ps(components: Iterable[DelayComponent], supply_v: float) -> float:
    """Composite delay of the stack at a supply voltage."""
    return sum(component.delay_at(supply_v) for component in _validated(components))


def frequency_scale(components: Iterable[DelayComponent], supply_v: float) -> float:
    """Frequency at ``supply_v`` relative to the nominal point."""
    stack = _validated(components)
    return total_delay_ps(stack, NOMINAL_CORE_VOLTAGE) / total_delay_ps(stack, supply_v)


def normalized_excursion(
    components: Iterable[DelayComponent],
    v_min: float = MIN_SWEEP_VOLTAGE,
    v_max: float = MAX_SWEEP_VOLTAGE,
) -> float:
    """Table I's ``delta F`` for the stack over ``[v_min, v_max]``."""
    stack = _validated(components)
    return frequency_scale(stack, v_max) - frequency_scale(stack, v_min)


def blended_beta(components: Iterable[DelayComponent]) -> float:
    """First-order effective beta: the delay-weighted mean of the betas.

    Exact in the limit of small sweeps; for a single-component stack it
    returns that component's beta exactly.
    """
    stack = _validated(components)
    total = sum(component.delay_ps for component in stack)
    return sum(component.delay_ps * component.beta_per_volt for component in stack) / total


def sensitivity_weight(
    components: Iterable[DelayComponent], reference_beta: float
) -> float:
    """Relative response to a supply disturbance, vs a reference class.

    ``blended_beta / reference_beta`` — a stack made purely of the
    reference class weighs 1.0; a stack diluted by low-beta components
    (the STR's Charlie penalty) weighs below 1.  This is the closed form
    of ``StageTiming.supply_weight``.
    """
    if reference_beta == 0.0:
        raise ValueError("reference beta cannot be zero")
    return blended_beta(components) / reference_beta


def iro_stage_stack(constants=None) -> List[DelayComponent]:
    """The calibrated IRO stage (single-LAB): LUT + intra-LAB route."""
    from repro.fpga.device import TimingConstants

    constants = constants if constants is not None else TimingConstants()
    return [
        DelayComponent(constants.lut_delay_ps, constants.transistor_sensitivity.beta_per_volt),
        DelayComponent(
            constants.intra_lab_route_ps, constants.interconnect_sensitivity.beta_per_volt
        ),
    ]


def str_stage_stack(stage_count: int, calibration=None) -> List[DelayComponent]:
    """The calibrated balanced-STR stage: LUT + mean route + Charlie penalty."""
    from repro.fpga.calibration import cyclone_iii_calibration, mean_route_delay_ps

    calibration = calibration if calibration is not None else cyclone_iii_calibration()
    constants = calibration.constants
    return [
        DelayComponent(constants.lut_delay_ps, constants.transistor_sensitivity.beta_per_volt),
        DelayComponent(
            mean_route_delay_ps(constants, stage_count),
            constants.interconnect_sensitivity.beta_per_volt,
        ),
        DelayComponent(
            calibration.confinement.penalty_ps(stage_count),
            calibration.confinement.beta_per_volt(stage_count),
        ),
    ]
