"""Registry mapping experiment ids to their ``run`` callables."""

from __future__ import annotations

import inspect
from typing import Callable, Dict, Tuple

from repro.experiments import (
    abl1_charlie,
    abl2_routing,
    abl3_process,
    abl4_drafting,
    abl5_placement,
    ext1_trng_attack,
    ext2_coherent,
    ext3_accumulation,
    ext4_multiphase,
    ext5_restarts,
    ext6_temperature,
    ext7_coherent_counter,
    ext8_tradeoff,
    ext9_xored_baseline,
    ext10_fault_recovery,
    ext11_puf_population,
    ext12_differential,
    fig04_propagation,
    fig05_modes,
    fig07_charlie,
    fig08_voltage,
    fig09_histograms,
    fig10_method,
    fig11_iro_jitter,
    fig12_str_jitter,
    sec5a_locking,
    table1_rvv,
    table2_process,
)
from repro.experiments.base import ExperimentResult
from repro.telemetry import default_registry, get_logger, span

_log = get_logger("repro.experiments")

_REGISTRY: Dict[str, Callable[..., ExperimentResult]] = {
    "FIG4": fig04_propagation.run,
    "FIG5": fig05_modes.run,
    "FIG7": fig07_charlie.run,
    "FIG8": fig08_voltage.run,
    "TAB1": table1_rvv.run,
    "TAB2": table2_process.run,
    "FIG9": fig09_histograms.run,
    "FIG10": fig10_method.run,
    "FIG11": fig11_iro_jitter.run,
    "FIG12": fig12_str_jitter.run,
    "SEC5A": sec5a_locking.run,
    "EXT1": ext1_trng_attack.run,
    "EXT2": ext2_coherent.run,
    "EXT3": ext3_accumulation.run,
    "EXT4": ext4_multiphase.run,
    "EXT5": ext5_restarts.run,
    "EXT6": ext6_temperature.run,
    "EXT7": ext7_coherent_counter.run,
    "EXT8": ext8_tradeoff.run,
    "EXT9": ext9_xored_baseline.run,
    "EXT10": ext10_fault_recovery.run,
    "EXT11": ext11_puf_population.run,
    "EXT12": ext12_differential.run,
    "ABL1": abl1_charlie.run,
    "ABL2": abl2_routing.run,
    "ABL3": abl3_process.run,
    "ABL4": abl4_drafting.run,
    "ABL5": abl5_placement.run,
}

#: All known experiment ids, in paper order.
EXPERIMENT_IDS: Tuple[str, ...] = tuple(_REGISTRY)


def get_experiment(experiment_id: str) -> Callable[..., ExperimentResult]:
    """Look up the ``run`` callable for an experiment id."""
    try:
        return _REGISTRY[experiment_id.upper()]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known ids: {', '.join(_REGISTRY)}"
        ) from None


def experiment_title(experiment_id: str) -> str:
    """The experiment's human title, from its module docstring.

    Every experiment module's docstring starts ``"ID — title."``; this
    strips the id prefix and the trailing period, so ``repro list`` can
    print real titles without running anything.
    """
    run = get_experiment(experiment_id)
    module = inspect.getmodule(run)
    doc = (module.__doc__ or "").strip()
    first_line = doc.splitlines()[0].strip() if doc else ""
    prefix, separator, rest = first_line.partition("—")
    if separator and prefix.strip().upper() == experiment_id.upper():
        first_line = rest.strip()
    return first_line.rstrip(".")


def run_experiment(experiment_id: str, **kwargs) -> ExperimentResult:
    """Run an experiment by id with optional config overrides.

    The run is wrapped in the top-level ``experiment`` span, so a traced
    CLI invocation nests as experiment -> campaign/driver -> run_grid ->
    grid_point -> simulate.
    """
    experiment_id = experiment_id.upper()
    run = get_experiment(experiment_id)
    with span("experiment", id=experiment_id):
        _log.info("experiment.start", id=experiment_id, overrides=sorted(kwargs))
        result = run(**kwargs)
        default_registry().counter("repro.experiments.runs").inc()
        _log.info("experiment.complete", id=experiment_id)
        return result
