"""FIG9 — period jitter histograms (paper Fig. 9).

The paper shows scope histograms for a 96-stage STR and a 5-stage IRO at
similar frequencies (~300 MHz) and concludes both are Gaussian — a known
result for IROs, the relevant *new* result for STRs.  We simulate both
rings, build the same histograms through the virtual scope chain, and run
a normality test on the underlying populations.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.experiments.base import ExperimentResult
from repro.fpga.board import Board
from repro.rings.iro import InverterRingOscillator
from repro.rings.str_ring import SelfTimedRing
from repro.stats.normality import check_normality


def run(
    board: Optional[Board] = None,
    period_count: int = 4096,
    seed: int = 11,
    iro_stages: int = 5,
    str_stages: int = 96,
) -> ExperimentResult:
    """Reproduce the Fig. 9 histograms and their Gaussianity verdicts."""
    board = board if board is not None else Board()
    str_ring = SelfTimedRing.on_board(board, str_stages)
    iro_ring = InverterRingOscillator.on_board(board, iro_stages)

    rows: List[Tuple] = []
    reports = {}
    frequencies = {}
    for ring in (str_ring, iro_ring):
        trace = ring.simulate(period_count, seed=seed).trace
        periods = trace.periods_ps()
        report = check_normality(periods)
        reports[ring.name] = report
        frequencies[ring.name] = trace.mean_frequency_mhz()
        rows.append(
            (
                ring.name,
                frequencies[ring.name],
                float(periods.mean()),
                float(periods.std(ddof=1)),
                report.p_value,
                report.skewness,
                report.excess_kurtosis,
                "yes" if report.is_normal else "no",
            )
        )

    str_report = reports[str_ring.name]
    iro_report = reports[iro_ring.name]
    return ExperimentResult(
        experiment_id="FIG9",
        title="Period jitter histograms: 96-stage STR vs 5-stage IRO (Fig. 9)",
        columns=(
            "ring",
            "F [MHz]",
            "mean T [ps]",
            "sigma T [ps]",
            "normality p",
            "skew",
            "ex. kurtosis",
            "gaussian",
        ),
        rows=rows,
        paper_reference={
            "claim": "both the IRO and the STR exhibit a Gaussian period jitter",
            "frequencies": "both rings around 300 MHz",
        },
        checks={
            "str_jitter_gaussian": str_report.is_normal and str_report.moments_look_gaussian,
            "iro_jitter_gaussian": iro_report.is_normal and iro_report.moments_look_gaussian,
            "similar_frequencies": abs(
                frequencies[str_ring.name] - frequencies[iro_ring.name]
            )
            < 0.35 * max(frequencies.values()),
        },
        notes=(
            "Normality checked on the simulated period population (the "
            "scope histogram adds only quantization); Shapiro-Wilk at "
            "alpha = 0.01."
        ),
    )
