"""TAB1 — normalized frequency excursions for a 0.4 V sweep (Table I).

Reproduces the paper's Table I for the full ring list, reporting the
nominal frequency and the normalized excursion ``delta F`` side by side
with the published values, and verifying the table's two structural
claims:

* the IRO rows are flat — IRO robustness "cannot be improved by design";
* the STR rows improve monotonically with the ring length.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.characterization import sweep_voltage
from repro.experiments.base import ExperimentResult
from repro.fpga.board import Board
from repro.fpga.calibration import TABLE1_TARGETS, Table1Row
from repro.rings.iro import InverterRingOscillator
from repro.rings.str_ring import SelfTimedRing


def run(
    board: Optional[Board] = None,
    voltages_v: Sequence[float] = (1.0, 1.2, 1.4),
    targets: Sequence[Table1Row] = TABLE1_TARGETS,
) -> ExperimentResult:
    """Reproduce Table I for every published ring configuration."""
    board = board if board is not None else Board()
    rows: List[Tuple] = []
    measured = {}
    for target in targets:
        if target.kind == "iro":
            builder = lambda b, L=target.stage_count: InverterRingOscillator.on_board(b, L)
        else:
            builder = lambda b, L=target.stage_count: SelfTimedRing.on_board(b, L)
        sweep = sweep_voltage(board, builder, voltages_v)
        label = f"{target.kind.upper()} {target.stage_count}C"
        measured[label] = (sweep.nominal_frequency_mhz, sweep.excursion())
        rows.append(
            (
                label,
                sweep.nominal_frequency_mhz,
                f"{sweep.excursion():.0%}",
                target.nominal_frequency_mhz,
                f"{target.delta_f:.0%}",
            )
        )

    iro_excursions = [measured[f"IRO {t.stage_count}C"][1] for t in targets if t.kind == "iro"]
    str_targets = [t for t in targets if t.kind == "str"]
    str_excursions = [measured[f"STR {t.stage_count}C"][1] for t in str_targets]
    frequency_errors = [
        abs(measured[f"{t.kind.upper()} {t.stage_count}C"][0] - t.nominal_frequency_mhz)
        / t.nominal_frequency_mhz
        for t in targets
    ]
    excursion_errors = [
        abs(measured[f"{t.kind.upper()} {t.stage_count}C"][1] - t.delta_f) for t in targets
    ]
    return ExperimentResult(
        experiment_id="TAB1",
        title="Normalized frequency excursions for a 0.4 V sweep (Table I)",
        columns=("ring", "Fn [MHz]", "delta F", "paper Fn", "paper delta F"),
        rows=rows,
        paper_reference={
            f"{t.kind.upper()} {t.stage_count}C": (t.nominal_frequency_mhz, t.delta_f)
            for t in targets
        },
        checks={
            "iro_rvv_flat": max(iro_excursions) - min(iro_excursions) < 0.02,
            "str_rvv_improves_with_length": all(
                earlier >= later - 1e-9
                for earlier, later in zip(str_excursions, str_excursions[1:])
            ),
            "str96_best": str_excursions[-1] == min(str_excursions),
            "frequencies_within_2pct": max(frequency_errors) < 0.02,
            "excursions_within_2pts": max(excursion_errors) < 0.02,
        },
        notes=(
            "STR nominal frequencies and excursions anchor the confinement "
            "calibration (see DESIGN.md Section 5); IRO rows are genuine "
            "predictions of the placed timing model."
        ),
    )
