"""EXT6 — temperature sweep (extension; the other knob of [1]).

The paper's reference [1] attacks ring-oscillator TRNGs by "changing
operating conditions such as power supply voltage or operating
temperature".  The paper sweeps only the voltage (Fig. 8 / Table I);
this extension turns the other knob over the commercial 0–85 °C range.

The model gives the Charlie penalty the same *relative* response to
temperature as the confinement fit found for voltage (a stated
assumption, see DESIGN.md), so the structural prediction carries over:
IRO sensitivity is flat in length, long STRs are the most stable.
Absolute coefficients are typical-CMOS figures, not paper data — the
checks assert shape only.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.experiments.base import ExperimentResult
from repro.fpga.board import Board
from repro.fpga.voltage import SupplySpec
from repro.rings.iro import InverterRingOscillator
from repro.rings.str_ring import SelfTimedRing
from repro.stats.descriptive import linearity_r_squared

RINGS: Tuple[Tuple[str, int], ...] = (("iro", 5), ("iro", 80), ("str", 4), ("str", 96))


def run(
    board: Optional[Board] = None,
    temperatures_c: Sequence[float] = (0.0, 25.0, 50.0, 85.0),
) -> ExperimentResult:
    """Sweep the junction temperature for the Fig. 8 ring set."""
    board = board if board is not None else Board()
    frequencies: Dict[str, List[float]] = {}
    names = []
    for kind, stage_count in RINGS:
        name = f"{kind.upper()} {stage_count}C"
        names.append(name)
        series = []
        for temperature in temperatures_c:
            supply = SupplySpec(temperature_c=float(temperature))
            if kind == "iro":
                ring = InverterRingOscillator.on_board(
                    board.with_supply(supply), stage_count
                )
            else:
                ring = SelfTimedRing.on_board(board.with_supply(supply), stage_count)
            series.append(ring.predicted_frequency_mhz())
        frequencies[name] = series

    rows: List[Tuple] = []
    for index, temperature in enumerate(temperatures_c):
        rows.append(
            (float(temperature), *(frequencies[name][index] for name in names))
        )

    def drift(name: str) -> float:
        series = frequencies[name]
        nominal = series[list(temperatures_c).index(25.0)]
        return (max(series) - min(series)) / nominal

    drifts = {name: drift(name) for name in names}
    linearities = {
        name: linearity_r_squared(list(temperatures_c), frequencies[name])
        for name in names
    }
    return ExperimentResult(
        experiment_id="EXT6",
        title="Temperature sweep 0-85 C (extension; the other knob of [1])",
        columns=("T [C]", *[f"F {name} [MHz]" for name in names]),
        rows=rows,
        paper_reference={
            "ref_1": "changing operating conditions such as power supply "
            "voltage or operating temperature may affect the output quality",
        },
        checks={
            "frequency_falls_with_heat": all(
                frequencies[name][0] > frequencies[name][-1] for name in names
            ),
            "linear_drift": all(value > 0.999 for value in linearities.values()),
            "str96_most_stable": drifts["STR 96C"] == min(drifts.values()),
            "iro_drift_flat_in_length": abs(drifts["IRO 5C"] - drifts["IRO 80C"])
            < 0.1 * drifts["IRO 5C"],
            "str4_matches_iro": abs(drifts["STR 4C"] - drifts["IRO 5C"])
            < 0.15 * drifts["IRO 5C"],
        },
        notes=(
            "Relative drifts over 0-85 C: "
            + ", ".join(f"{name} {drifts[name]:.2%}" for name in names)
            + ".  Temperature coefficients are typical-CMOS modelling "
            "assumptions (the paper sweeps voltage only); the *shape* "
            "mirrors Table I because the Charlie penalty inherits its "
            "fitted low sensitivity to global disturbances."
        ),
    )
