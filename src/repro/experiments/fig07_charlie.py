"""FIG7 — the Charlie diagram (paper Fig. 7, Eq. 3).

Sweeps the separation time and records the stage delay, verifying the
three geometric properties the paper reads off the figure:

* the minimum sits at ``s = 0`` (symmetric stage) with value
  ``Ds + Dcharlie``;
* the curve approaches the asymptotes ``Ds +/- s`` for large ``|s|``;
* the derivative vanishes at the bottom — the smoothing that makes
  balanced STRs robust.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.core.charlie import CharlieDiagram, CharlieParameters
from repro.experiments.base import ExperimentResult
from repro.fpga.calibration import cyclone_iii_calibration


def run(
    stage_count: int = 96,
    separation_span_ps: float = 600.0,
    sample_count: int = 25,
) -> ExperimentResult:
    """Sweep the calibrated Charlie diagram of an STR stage."""
    calibration = cyclone_iii_calibration()
    static_delay = (
        calibration.constants.lut_delay_ps + calibration.constants.intra_lab_route_ps
    )
    charlie = calibration.confinement.penalty_ps(stage_count)
    diagram = CharlieDiagram(CharlieParameters.symmetric(static_delay, charlie))

    separations = np.linspace(-separation_span_ps, separation_span_ps, sample_count)
    delays = diagram.delay_array_ps(separations)
    rows: List[Tuple] = [
        (float(s), float(d), diagram.slope(float(s))) for s, d in zip(separations, delays)
    ]

    minimum_index = int(np.argmin(delays))
    asymptote_gap_far = diagram.asymptote_gap_ps(separation_span_ps)
    asymptote_gap_zero = diagram.asymptote_gap_ps(0.0)
    return ExperimentResult(
        experiment_id="FIG7",
        title="Example of a Charlie diagram (Fig. 7)",
        columns=("separation s [ps]", "charlie(s) [ps]", "d charlie / d s"),
        rows=rows,
        paper_reference={
            "equation": "charlie(s) = Ds + sqrt(Dcharlie^2 + s^2)",
            "shape": "parabola-like bottom inscribed in the lines Ds - s and Ds + s",
        },
        checks={
            "minimum_at_zero_separation": abs(float(separations[minimum_index])) < 1e-9
            or minimum_index == sample_count // 2,
            "minimum_value_is_static_plus_charlie": abs(
                float(delays[minimum_index]) - (static_delay + charlie)
            )
            < 1e-9,
            "flat_at_bottom": abs(diagram.slope(0.0)) < 1e-12,
            "approaches_asymptotes": asymptote_gap_far < 0.5 * asymptote_gap_zero,
            "slope_bounded_by_one": all(abs(row[2]) < 1.0 for row in rows),
        },
        notes=(
            f"Calibrated stage for a {stage_count}-stage balanced STR: "
            f"Ds = {static_delay:.1f} ps, Dcharlie = {charlie:.1f} ps."
        ),
    )
