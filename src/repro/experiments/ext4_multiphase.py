"""EXT4 — the multi-phase STR TRNG (the paper's announced future work).

"Our future works will focus on exploiting the STR properties for
designing a robust TRNG."  The property being exploited: STR period
jitter is per-*stage* (Eq. 5), so all L stages are simultaneously usable
entropy sources.  Sampling every stage and XOR-ing is equivalent to
sampling a virtual oscillator ``L`` times faster, cutting the reference
period needed for a given entropy target by ``L^2``.

The experiment:

1. builds a gcd(L, NT) = 1 STR (L = 63, NT = 20 — detuned from balance
   so the Charlie restoring slope is strong and the phases equalize;
   near-balanced rings sit at the flat diagram bottom where the comb
   relaxes only diffusively) and verifies the merged toggle comb is
   uniform with spacing ``T / (2L)`` (noise-free run);
2. measures the ring's collective diffusion rate;
3. provisions an elementary and a multi-phase sampler for the same
   quality factor and compares their throughput;
4. generates bits through the fast model (battery-checked) and
   cross-validates a short run of the exact event-driven sampler.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.experiments.base import ExperimentResult
from repro.fpga.board import Board
from repro.rings.str_ring import SelfTimedRing
from repro.stats.entropy import markov_entropy_per_bit
from repro.stats.randomness import run_battery
from repro.trng.multiphase import (
    MultiphaseModel,
    MultiphaseStrTrng,
    measure_diffusion_sigma_ps,
    reference_period_for_multiphase_q,
)
from repro.trng.phasewalk import reference_period_for_q


def run(
    board: Optional[Board] = None,
    stage_count: int = 63,
    token_count: int = 20,
    q_target: float = 0.25,
    fast_bits: int = 30_000,
    exact_bits: int = 96,
    seed: int = 43,
) -> ExperimentResult:
    """Evaluate the multi-phase extraction against the elementary sampler."""
    board = board if board is not None else Board()
    ring = SelfTimedRing.on_board(board, stage_count, token_count=token_count)
    period = ring.predicted_period_ps()

    # 1. comb uniformity.  Two noise-free replicas: a homogeneous ring
    # (every stage at the ring-mean timing — the single-LAB ideal the
    # authors' manual placement aims for) whose comb must be exactly
    # uniform, and the placed ring, whose inter-LAB routing hops distort
    # the comb — a real placement effect worth reporting.
    homogeneous = SelfTimedRing(
        [ring.mean_diagram()] * stage_count,
        token_count,
        jitter_sigmas_ps=0.0,
        name="STR homogeneous",
    )
    comb = homogeneous.simulate_phases(
        24, seed=seed, warmup_periods=2048
    ).merged_spacings_ps()
    comb_spacing = float(np.mean(comb))
    comb_spread = float(np.std(comb))
    expected_spacing = homogeneous.predicted_period_ps() / (2.0 * stage_count)

    placed_quiet = SelfTimedRing(
        ring.diagrams, token_count, jitter_sigmas_ps=0.0, name="STR placed"
    )
    placed_comb = placed_quiet.simulate_phases(
        24, seed=seed, warmup_periods=2048
    ).merged_spacings_ps()
    placed_spread = float(np.std(placed_comb))

    # 2. diffusion rate of the noisy ring.
    diffusion = measure_diffusion_sigma_ps(ring, period_count=3072, seed=seed)

    # 3. provisioning comparison at the same Q.
    elementary_ref = reference_period_for_q(period, diffusion, q_target)
    multiphase_ref = reference_period_for_multiphase_q(
        period, stage_count, diffusion, q_target
    )
    speedup = elementary_ref / multiphase_ref

    # 4. bit quality.
    model = MultiphaseModel(period, stage_count, diffusion, multiphase_ref)
    fast = model.generate(fast_bits, seed=seed)
    battery = run_battery(fast)

    exact_sampler = MultiphaseStrTrng(ring, multiphase_ref)
    exact = exact_sampler.generate(exact_bits, seed=seed, warmup_periods=128)

    rows: List[Tuple] = [
        ("comb spacing [ps]", comb_spacing, expected_spacing),
        ("comb spread, homogeneous ring [ps]", comb_spread, 0.0),
        ("comb spread, placed ring [ps]", placed_spread, "routing-limited"),
        ("diffusion sigma [ps/sqrt(T)]", diffusion, "-"),
        ("elementary T_ref [ns]", elementary_ref / 1e3, "-"),
        ("multi-phase T_ref [ns]", multiphase_ref / 1e3, "-"),
        ("throughput speedup", speedup, float(stage_count**2)),
        ("fast-path Markov entropy", float(markov_entropy_per_bit(fast)), 1.0),
        ("fast-path battery", "PASS" if battery.all_passed else "FAIL", "PASS"),
        ("exact-path bias", float(np.mean(exact) - 0.5), 0.0),
    ]
    return ExperimentResult(
        experiment_id="EXT4",
        title="Multi-phase STR TRNG: L stages as parallel entropy sources (extension)",
        columns=("quantity", "measured", "expected"),
        rows=rows,
        paper_reference={
            "conclusion": "each ring stage can be considered as an "
            "independent entropy source",
            "future_work": "exploiting the STR properties for designing a "
            "robust TRNG",
        },
        checks={
            "comb_spacing_is_T_over_2L": abs(comb_spacing - expected_spacing)
            < 0.05 * expected_spacing,
            "comb_uniform_when_noise_free": comb_spread < 0.02 * expected_spacing,
            "speedup_is_L_squared": abs(speedup - stage_count**2) < 1.0,
            "multiphase_battery_passes": battery.all_passed,
            "multiphase_markov_entropy_high": markov_entropy_per_bit(fast) > 0.995,
            "exact_path_unbiased": abs(float(np.mean(exact)) - 0.5) < 0.17,
            "megabit_class_throughput": 1e12 / multiphase_ref > 1e5,  # >100 kbit/s
            "placement_distorts_comb": placed_spread > 5.0 * comb_spread,
        },
        notes=(
            f"L = {stage_count}, NT = {token_count} (gcd = 1).  At equal "
            f"Q = {q_target}, the multi-phase sampler runs {speedup:.0f}x "
            f"faster than the elementary one ({1e12 / multiphase_ref / 1e6:.2f} "
            "Mbit/s vs ~0.1 kbit/s) — the authors' follow-up 'very high "
            "speed TRNG' direction.  The exact-path cross-check uses few "
            "bits (event-driven cost grows with T_ref), hence the loose "
            "bias bound.  The placed ring's inter-LAB hops distort the "
            "phase comb — the model's version of why the authors place "
            "ring LUTs manually in one LAB."
        ),
    )
