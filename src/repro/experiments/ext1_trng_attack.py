"""EXT1 — deterministic jitter under a supply-ripple attack (extension).

The paper's security conclusion ("STR-based TRNGs should be more robust
to attacks than IRO-based TRNGs") rests on the Section IV argument that
the STR's delay responds less to global deterministic disturbances.
This extension quantifies that mechanism end to end:

1. inject sinusoidal supply ripple of increasing amplitude into the
   ~300 MHz IRO 5C / STR 96C pair of Fig. 9, through the event-driven
   simulator;
2. separate the deterministic period modulation from the Gaussian jitter
   in quadrature (same noise seed with and without the attack);
3. report the *relative deterministic response* (period modulation per
   unit injected amplitude) and the entropy-accounting hazard — the
   factor by which a designer reading the attacked jitter figure would
   overestimate the TRNG quality factor (the masquerade warning of the
   paper's reference [2]).

Expected outcome: the IRO's response tracks its full supply weight
(~0.97 / sqrt 2), the STR's is ~25 % lower because its Charlie-penalty
delay share barely follows the supply (the same confinement effect that
produces Table I), and only the random part of either figure delivers
entropy.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from repro.experiments.base import ExperimentResult
from repro.fpga.board import Board
from repro.rings.iro import InverterRingOscillator
from repro.rings.str_ring import SelfTimedRing
from repro.trng.attacks import SupplyAttack, measure_deterministic_response
from repro.trng.phasewalk import PhaseWalkTrng, reference_period_for_q

#: Relative delay-modulation amplitudes swept by the attacker.
DEFAULT_AMPLITUDES: Tuple[float, ...] = (0.002, 0.008)


def run(
    board: Optional[Board] = None,
    amplitudes: Sequence[float] = DEFAULT_AMPLITUDES,
    ripple_period_ps: float = 1.0e5,
    period_count: int = 2048,
    q_target: float = 0.2,
    seed: int = 31,
) -> ExperimentResult:
    """Measure the deterministic response of both rings to supply ripple."""
    board = board if board is not None else Board()
    rings = (
        InverterRingOscillator.on_board(board, 5),
        SelfTimedRing.on_board(board, 96),
    )
    rows: List[Tuple] = []
    responses = {ring.name: [] for ring in rings}
    clean_pass = True
    for ring in rings:
        # Provision the elementary TRNG from the *clean* jitter figure.
        model = PhaseWalkTrng.from_ring(
            ring,
            reference_period_for_q(
                ring.predicted_period_ps(), ring.predicted_period_jitter_ps(), q_target
            ),
        )
        from repro.stats.randomness import run_battery

        clean_bits = model.generate(16384, seed=seed)
        clean_pass = clean_pass and run_battery(clean_bits).all_passed
        for amplitude in amplitudes:
            attack = SupplyAttack(
                delay_amplitude=float(amplitude), period_ps=ripple_period_ps
            )
            response = measure_deterministic_response(
                ring, attack, period_count=period_count, seed=seed
            )
            responses[ring.name].append(response)
            rows.append(
                (
                    ring.name,
                    amplitude,
                    response.clean_sigma_ps,
                    response.attacked_sigma_ps,
                    response.deterministic_sigma_ps,
                    response.relative_response,
                    response.apparent_q_inflation,
                )
            )

    iro_responses = [r.relative_response for r in responses["IRO 5C"]]
    str_responses = [r.relative_response for r in responses["STR 96C"]]
    iro_weight = rings[0].mean_supply_weight
    str_weight = rings[1].mean_supply_weight
    sqrt2 = math.sqrt(2.0)
    return ExperimentResult(
        experiment_id="EXT1",
        title="Deterministic jitter under supply-ripple attack (extension)",
        columns=(
            "ring",
            "ripple amplitude",
            "sigma clean [ps]",
            "sigma attacked [ps]",
            "sigma det [ps]",
            "relative response",
            "apparent Q inflation",
        ),
        rows=rows,
        paper_reference={
            "section_iv": "global deterministic jitter accumulates in IROs, "
            "is attenuated in STRs",
            "conclusion": "STRs exhibit a lower deterministic jitter",
        },
        checks={
            "clean_trngs_pass_battery": clean_pass,
            "ripple_inflates_apparent_jitter": all(
                r.attacked_sigma_ps > r.clean_sigma_ps
                for rs in responses.values()
                for r in rs
            )
            and all(
                rs[-1].attacked_sigma_ps > 2.0 * rs[-1].clean_sigma_ps
                for rs in responses.values()
            ),
            "str_response_lower_than_iro": all(
                s < i for s, i in zip(str_responses, iro_responses)
            ),
            "responses_match_supply_weights": all(
                abs(r.relative_response - weight / sqrt2) < 0.15 * weight
                for rs, weight in (
                    (responses["IRO 5C"], iro_weight),
                    (responses["STR 96C"], str_weight),
                )
                for r in rs
            ),
            "deterministic_jitter_carries_no_entropy": all(
                r.apparent_q_inflation > 2.0
                for r in responses["IRO 5C"] + responses["STR 96C"]
                if r.attack.delay_amplitude >= 0.008
            ),
        },
        notes=(
            f"Supply weights: IRO 5C = {iro_weight:.2f}, STR 96C = "
            f"{str_weight:.2f}; the measured relative responses should sit "
            "near weight/sqrt(2) for a sinusoidal ripple.  'Apparent Q "
            "inflation' is how far a designer trusting the attacked sigma "
            "would overestimate the entropy budget."
        ),
    )
