"""EXT11 — RO-PUF population quality on the process model (extension).

The paper reads Table II as an *entropy* liability: process dispersion
is deterministic, so it cannot feed a TRNG.  This experiment reads the
same dispersion as an *identity* asset — the RO-PUF view — and scores a
simulated device population on the three Maiti-Schaumont figures of
merit plus threshold authentication:

* **uniqueness**: mean inter-device Hamming distance of the response
  bits (ideal 50 %);
* **reliability**: intra-device HD between enrollment and
  re-measurements under readout noise and the voltage/temperature
  stress corners of the fault library (ideal 0 %);
* **bit-aliasing**: per-bit one-rate across the population;
* **FAR/FRR/EER**: the threshold-authentication error trade-off.

Two model findings frame the table.  First, with the *aligned*
placement (every ring an identical single-LAB footprint) a noiseless
readout is perfectly corner-stable: all rings share their routing
delays, so a supply or temperature excursion rescales every period by
the same pair of positive factors and the frequency *ordering* — all a
comparison PUF sees — cannot change.  Residual bit flips are therefore
a readout-noise effect, not an environmental one.  Second, the paper's
own *sequential* placement breaks that symmetry: rings straddling a LAB
boundary pay two inter-LAB hops (~190 ps of systematic period offset
against the ~9 ps process signal), which aliases the adjacent
comparison bits and visibly depresses uniqueness — placement discipline
matters more for identity than it does for entropy.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.experiments.base import ExperimentResult
from repro.fpga.voltage import SupplySpec
from repro.puf import (
    PufDesign,
    authentication_report,
    enroll_population,
    measure_population,
    score_population,
)
from repro.stats.puf import hamming_distance, mean_pairwise_hamming


def run(
    devices: int = 256,
    ring_count: int = 16,
    stage_count: int = 3,
    measure_periods: int = 2048,
    seed: int = 11,
    jobs: Optional[int] = 1,
    progress=None,
) -> ExperimentResult:
    """Score one simulated population and the placement-policy contrast."""
    noisy_design = PufDesign(
        ring_count=ring_count,
        stage_count=stage_count,
        measure_periods=measure_periods,
    )
    score = score_population(
        devices, design=noisy_design, seed=seed, jobs=jobs, progress=progress
    )

    # The deterministic limit: a noiseless readout of the same design
    # must reproduce enrollment bit for bit, stressed corner included.
    clean_design = PufDesign(ring_count=ring_count, stage_count=stage_count)
    clean = measure_population(
        devices,
        design=clean_design,
        corners=(SupplySpec(), SupplySpec(voltage_v=1.0)),
        seed=seed,
        jobs=jobs,
    )
    zero_noise_intra = float(
        hamming_distance(clean.responses[0], clean.responses[1], fraction=True).mean()
    )

    # Authentication at the nominal corner under fresh readout noise.
    noisy = measure_population(
        devices,
        design=noisy_design,
        corners=(SupplySpec(), SupplySpec()),
        seed=seed,
        jobs=jobs,
    )
    auth = authentication_report(noisy.responses[0], noisy.responses[1])

    # The paper's sequential placement, rings crossing LAB boundaries.
    sequential = enroll_population(
        devices,
        design=PufDesign(
            ring_count=2 * ring_count,
            stage_count=stage_count,
            placement_policy="sequential",
        ),
        seed=seed,
        jobs=jobs,
    )
    sequential_inter = mean_pairwise_hamming(sequential.responses)

    uniq = score.uniqueness
    rows: List[Tuple] = [
        ("inter-device HD (aligned)", f"{uniq.mean_inter_hd:.4f}", "0.5",
         f"{devices} devices x {uniq.bit_length} bits"),
        ("inter-device HD (sequential)", f"{sequential_inter:.4f}", "< aligned",
         "LAB-boundary hops alias neighbor bits"),
        ("bit-aliasing range", f"{uniq.aliasing_min:.3f}..{uniq.aliasing_max:.3f}",
         "0.5", "per-bit one-rate"),
        ("uniformity", f"{uniq.mean_uniformity:.4f}", "0.5", "per-device one-rate"),
        ("intra-HD, zero noise", f"{zero_noise_intra:.4f}", "0",
         "noiseless readout, 1.0 V corner included"),
    ]
    for row in score.reliability:
        rows.append(
            (f"intra-HD, {row.label}", f"{row.mean_intra_hd:.4f}", "~0",
             f"worst device {row.max_intra_hd:.4f}")
        )
    rows.append(
        ("authentication EER", f"{auth.eer:.4%}", "~0",
         f"threshold {auth.eer_threshold}/{auth.bit_length} bits")
    )

    worst_corner_intra = max(row.mean_intra_hd for row in score.reliability)
    checks = {
        "inter_hd_in_band": 0.45 <= uniq.mean_inter_hd <= 0.55,
        "zero_noise_intra_is_zero": zero_noise_intra == 0.0,
        "corner_intra_small": worst_corner_intra < 0.05,
        "aliasing_within_band": 0.2 <= uniq.aliasing_min and uniq.aliasing_max <= 0.8,
        "eer_usable": auth.eer < 0.05,
        "sequential_placement_aliases": sequential_inter < uniq.mean_inter_hd - 0.02,
    }
    return ExperimentResult(
        experiment_id="EXT11",
        title="RO-PUF population quality on the process model (extension)",
        columns=("metric", "value", "ideal", "note"),
        rows=rows,
        paper_reference={
            "basis": "Table II: per-LUT mismatch dominates ring-to-ring "
            "frequency differences (sigma_local ~ 1.8%)",
            "reading": "the same dispersion the paper rejects as TRNG "
            "entropy is the PUF's identity signal",
        },
        checks=checks,
        notes=(
            "Aligned single-LAB placement makes a noiseless readout exactly "
            "corner-invariant (shared routing => orderings are preserved "
            "under the voltage/temperature delay rescaling); flips under "
            "stress are readout-noise effects. The sequential row shows the "
            "paper's own placement policy costing uniqueness through "
            "routing-induced bit aliasing."
        ),
    )
