"""Experiment modules: one per table/figure of the paper (plus extensions).

Every module exposes ``run(...) -> ExperimentResult`` with fast,
deterministic defaults.  The benchmark harness under ``benchmarks/``
calls these and prints the same rows the paper reports;
``EXPERIMENTS.md`` records paper-vs-measured for each.

Index (see DESIGN.md Section 4 for the full mapping):

========  ==========================================================
FIG4      token/bubble propagation demonstration
FIG5      burst vs evenly-spaced oscillation modes
FIG7      the Charlie diagram
FIG8      normalized frequency vs supply voltage
TAB1      normalized frequency excursions (robustness to voltage)
TAB2      extra-device frequency dispersion over five boards
FIG9      period jitter histograms and their Gaussianity
FIG10     the divider-based jitter measurement method
FIG11     IRO period jitter vs number of stages (sqrt law)
FIG12     STR period jitter vs number of stages (constant)
SEC5A     evenly-spaced locking across lengths and token counts
EXT1      TRNG robustness under a supply-ripple attack
EXT2      coherent-sampling feasibility across the board family
EXT3      jitter accumulation profiles
EXT4      the multi-phase STR TRNG
EXT5      restart experiments
EXT6      temperature sweep
EXT7      counter statistics of the coherent-sampling TRNG
EXT8      the throughput/entropy design tradeoff
EXT9      XOR-of-IROs baseline vs the multi-phase STR
EXT10     fault-injection campaign over the supervised runtime
EXT11     RO-PUF population quality on the process model
EXT12     differential jitter measurement vs the counter method
ABL1-5    design-choice ablations (Charlie, routing, process, ...)
========  ==========================================================
"""

from repro.experiments.base import ExperimentResult
from repro.experiments.registry import EXPERIMENT_IDS, get_experiment, run_experiment

__all__ = ["ExperimentResult", "EXPERIMENT_IDS", "get_experiment", "run_experiment"]
