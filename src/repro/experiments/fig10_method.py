"""FIG10 — the divider-based jitter measurement method (Fig. 10, Eq. 6).

Reproduces the paper's methodological argument in three readings of the
same simulated oscillator:

* ``population`` — the true sigma of the simulated period population
  (inaccessible in hardware; our ground truth);
* ``direct`` — the naive scope reading, inflated by the scope's constant
  time-stamp error;
* ``divider`` — the Fig. 10 method: divide on-chip by 2^n, measure the
  cycle-to-cycle jitter of the slow signal, recover sigma_p via Eq. 6.

For the IRO (independent periods — the method's hypothesis) the divider
reading recovers the true value within a few percent while the direct
reading is far off.  The experiment also runs the method on an STR and
reports the deviation caused by the STR's anticorrelated periods — a
model prediction worth knowing when interpreting the paper's Fig. 12
absolute values (see EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.characterization import measure_period_jitter
from repro.experiments.base import ExperimentResult
from repro.fpga.board import Board
from repro.measurement.counters import RippleDivider
from repro.rings.iro import InverterRingOscillator
from repro.rings.str_ring import SelfTimedRing


def run(
    board: Optional[Board] = None,
    iro_period_count: int = 16384,
    str_period_count: int = 8192,
    seed: int = 5,
    divider_bits: int = 7,
) -> ExperimentResult:
    """Compare the three jitter readings on an IRO and an STR."""
    board = board if board is not None else Board()
    divider = RippleDivider(bit_count=divider_bits)
    rows: List[Tuple] = []
    readings = {}
    for ring, period_count in (
        (InverterRingOscillator.on_board(board, 5), iro_period_count),
        (SelfTimedRing.on_board(board, 96), str_period_count),
    ):
        for method in ("population", "direct", "divider"):
            result = measure_period_jitter(
                ring, method=method, period_count=period_count, seed=seed, divider=divider
            )
            readings[(ring.name, method)] = result.sigma_period_ps
            hypothesis = ""
            if result.divider_reading is not None:
                hypothesis = "yes" if result.divider_reading.hypothesis_ok else "no"
            rows.append((ring.name, method, result.sigma_period_ps, hypothesis))

    iro_true = readings[("IRO 5C", "population")]
    iro_direct = readings[("IRO 5C", "direct")]
    iro_divider = readings[("IRO 5C", "divider")]
    str_true = readings[("STR 96C", "population")]
    str_direct = readings[("STR 96C", "direct")]
    return ExperimentResult(
        experiment_id="FIG10",
        title="Jitter measurement through the on-chip divider (Fig. 10 / Eq. 6)",
        columns=("ring", "method", "sigma_p [ps]", "c2c hypothesis ok"),
        rows=rows,
        paper_reference={
            "equation_6": "sigma_p = sigma_cc_mes / (2 sqrt(n))",
            "motivation": "direct scope readings of ps jitter are biased",
        },
        checks={
            "direct_reading_biased_iro": iro_direct > 1.15 * iro_true,
            "direct_reading_biased_str": str_direct > 1.15 * str_true,
            "divider_recovers_iro_jitter": abs(iro_divider - iro_true) < 0.15 * iro_true,
            "divider_beats_direct_on_iro": abs(iro_divider - iro_true)
            < abs(iro_direct - iro_true),
        },
        notes=(
            "Eq. 6 assumes independent successive periods; exact for the "
            "IRO.  STR periods are anticorrelated (the Charlie regulation), "
            "so the divider reading converges to the long-run diffusion "
            "rate, below the single-period sigma."
        ),
    )
