"""EXT12 — differential jitter measurement vs the counter method under ripple (extension).

The paper's counter method (Fig. 10, Eq. 6) first-differences successive
accumulation windows, which makes it blind to a *static* frequency
offset but fully exposed to supply ripple near half the re-arm rate:
successive windows then average anti-phase half-cycles of the ripple
and the recovered sigma inflates with amplitude.  This experiment runs
the alternative of :mod:`repro.measurement.differential` — two
co-located IROs on one board, sharing the device's global speed factor
and the board-level modulation, measured over simultaneously triggered
windows and subtracted — against the counter method on the *same*
window data, sweeping worst-case ripple amplitude:

* with no ripple both estimators track the analytic period jitter;
* as ripple grows the counter estimate inflates without bound while the
  differential estimate stays within a few percent — the common mode
  cancels in each simultaneous window pair.

The amplitude x repeat grid runs through :func:`repro.parallel.run_grid`
with per-point derived seeds, so the experiment shards and merges like
any campaign (``repro run EXT12 --shard I/N``).
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.experiments.base import ExperimentResult
from repro.fpga.board import BoardBank
from repro.measurement.differential import (
    ColocatedPair,
    measure_pair,
    worst_case_ripple,
)
from repro.parallel import GridStats, GridTask, ResultCache, run_grid, spawn_seeds
from repro.parallel.cache import _package_version
from repro.parallel.sharding import MergedRun, ShardRun, ShardSpec, run_shard

#: Cache kind for EXT12 grid points.
TASK_KIND = "ext12_differential_point"

#: Worst-case ripple amplitudes swept (relative supply factor).
DEFAULT_AMPLITUDES: Tuple[float, ...] = (0.0, 2e-4, 7e-4)


def _build_pair(spec: Mapping[str, Any]) -> ColocatedPair:
    """The measured pair, rebuilt deterministically from a task spec."""
    bank = BoardBank.manufacture(board_count=1, seed=int(spec["bank_seed"]))
    return ColocatedPair.on_board(bank[0], int(spec["stage_count"]))


def _pair_task_worker(task: GridTask) -> Dict[str, Any]:
    """Module-level (hence picklable) worker: one reading of the pair."""
    spec = task.spec
    pair = _build_pair(spec)
    amplitude = float(spec["amplitude"])
    modulation = (
        worst_case_ripple(pair, int(spec["periods_per_window"]), amplitude)
        if amplitude > 0.0
        else None
    )
    reading = measure_pair(
        pair,
        window_count=int(spec["window_count"]),
        periods_per_window=int(spec["periods_per_window"]),
        seed=task.seed,
        modulation=modulation,
    )
    return {
        "differential_sigma_ps": reading.differential_sigma_ps,
        "counter_sigma_ps": reading.counter_sigma_a_ps,
        "differential_bias": reading.differential_bias,
        "counter_bias": reading.counter_bias,
    }


def _ext12_tasks(
    amplitudes: Sequence[float],
    repeats: int,
    window_count: int,
    periods_per_window: int,
    stage_count: int,
    bank_seed: int,
    seed: int,
) -> List[GridTask]:
    """The full amplitude x repeat grid; shared by direct and shard paths."""
    if repeats < 1:
        raise ValueError(f"repeats must be positive, got {repeats}")
    seeds = spawn_seeds(seed, len(amplitudes) * repeats)
    tasks: List[GridTask] = []
    for a_index, amplitude in enumerate(amplitudes):
        for repeat in range(repeats):
            tasks.append(
                GridTask(
                    kind=TASK_KIND,
                    spec={
                        "amplitude": float(amplitude),
                        "repeat": repeat,
                        "window_count": int(window_count),
                        "periods_per_window": int(periods_per_window),
                        "stage_count": int(stage_count),
                        "bank_seed": int(bank_seed),
                    },
                    seed=seeds[a_index * repeats + repeat],
                )
            )
    return tasks


def run(
    amplitudes: Sequence[float] = DEFAULT_AMPLITUDES,
    repeats: int = 4,
    window_count: int = 256,
    periods_per_window: int = 64,
    stage_count: int = 9,
    bank_seed: int = 3,
    seed: int = 41,
    jobs: Optional[int] = 1,
    cache: Optional[ResultCache] = None,
    progress: Optional[Any] = None,
    stats: Optional[GridStats] = None,
) -> ExperimentResult:
    """Sweep worst-case ripple amplitude; compare the two estimators."""
    amplitudes = tuple(float(a) for a in amplitudes)
    tasks = _ext12_tasks(
        amplitudes, repeats, window_count, periods_per_window,
        stage_count, bank_seed, seed,
    )
    raw = run_grid(
        tasks, _pair_task_worker, jobs=jobs, cache=cache,
        progress=progress, stats=stats,
    )

    pair = _build_pair(tasks[0].spec)
    relative_detuning = abs(
        pair.ring_a.predicted_period_ps() - pair.ring_b.predicted_period_ps()
    ) / pair.ring_a.predicted_period_ps()

    rows: List[Tuple] = []
    diff_by_amp: List[float] = []
    counter_by_amp: List[float] = []
    cursor = 0
    for amplitude in amplitudes:
        chunk = raw[cursor : cursor + repeats]
        cursor += repeats
        diff_bias = float(np.mean([point["differential_bias"] for point in chunk]))
        counter_bias = float(np.mean([point["counter_bias"] for point in chunk]))
        diff_by_amp.append(diff_bias)
        counter_by_amp.append(counter_bias)
        if abs(counter_bias) < 0.10 and abs(diff_bias) < 0.10:
            verdict = "both track"
        elif abs(diff_bias) < 0.10:
            verdict = "counter inflated, differential immune"
        else:
            verdict = "both contaminated"
        rows.append(
            (
                f"{amplitude:.1e}",
                round(float(np.mean([p["differential_sigma_ps"] for p in chunk])), 3),
                round(float(np.mean([p["counter_sigma_ps"] for p in chunk])), 3),
                f"{diff_bias:+.3f}",
                f"{counter_bias:+.3f}",
                verdict,
            )
        )

    quiet_index = amplitudes.index(0.0) if 0.0 in amplitudes else None
    ripple_indices = [i for i, a in enumerate(amplitudes) if a > 0.0]
    checks = {
        "differential_unbiased_quiet": (
            quiet_index is not None and abs(diff_by_amp[quiet_index]) < 0.10
        ),
        "counter_unbiased_quiet": (
            quiet_index is not None and abs(counter_by_amp[quiet_index]) < 0.10
        ),
        "differential_immune_to_ripple": all(
            abs(diff_by_amp[i]) < 0.10 for i in ripple_indices
        ),
        "counter_inflated_by_ripple": bool(ripple_indices)
        and counter_by_amp[max(ripple_indices, key=lambda i: amplitudes[i])] > 1.0,
        "differential_beats_counter_under_ripple": all(
            counter_by_amp[i] > diff_by_amp[i] + 0.10 for i in ripple_indices
        ),
    }

    return ExperimentResult(
        experiment_id="EXT12",
        title="Differential jitter measurement vs the counter method under ripple (extension)",
        columns=(
            "ripple amplitude",
            "differential sigma (ps)",
            "counter sigma (ps)",
            "differential bias",
            "counter bias",
            "verdict",
        ),
        rows=rows,
        paper_reference={
            "fig_10": "counter method: divide-by-2^n windows, first difference",
            "eq_6": "sigma_p = sigma_cc / sqrt(2 N)",
            "sec_4": "deterministic supply modulation as a jitter contaminant",
        },
        checks=checks,
        notes=(
            f"Co-located IRO {stage_count}C pair on one board (bank seed "
            f"{bank_seed}), nominal detuning {relative_detuning:.1%}; "
            f"{len(amplitudes)} ripple amplitudes x {repeats} repeats, "
            f"{window_count} windows of {periods_per_window} periods.  The "
            f"ripple period is two re-arm intervals — the counter method's "
            f"worst case — yet the simultaneously-triggered difference "
            f"cancels it."
        ),
    )


def ext12_workload(
    amplitudes: Sequence[float],
    repeats: int,
    window_count: int,
    periods_per_window: int,
    stage_count: int,
    bank_seed: int,
    seed: int,
) -> Dict[str, Any]:
    """Shard-manifest workload descriptor for an EXT12 grid."""
    return {
        "workload": "experiment",
        "experiment": "EXT12",
        "amplitudes": [float(a) for a in amplitudes],
        "repeats": int(repeats),
        "window_count": int(window_count),
        "periods_per_window": int(periods_per_window),
        "stage_count": int(stage_count),
        "bank_seed": int(bank_seed),
        "seed": int(seed),
    }


def run_ext12_shard(
    shard: ShardSpec,
    out_dir: Any,
    *,
    amplitudes: Sequence[float] = DEFAULT_AMPLITUDES,
    repeats: int = 4,
    window_count: int = 256,
    periods_per_window: int = 64,
    stage_count: int = 9,
    bank_seed: int = 3,
    seed: int = 41,
    jobs: Optional[int] = 1,
    progress: Optional[Any] = None,
    stats: Optional[GridStats] = None,
) -> ShardRun:
    """Run one shard of the EXT12 amplitude x repeat grid into ``out_dir``."""
    amplitudes = tuple(float(a) for a in amplitudes)
    tasks = _ext12_tasks(
        amplitudes, repeats, window_count, periods_per_window,
        stage_count, bank_seed, seed,
    )
    workload = ext12_workload(
        amplitudes, repeats, window_count, periods_per_window,
        stage_count, bank_seed, seed,
    )
    return run_shard(
        tasks,
        _pair_task_worker,
        shard,
        out_dir,
        workload=workload,
        version=_package_version(),
        jobs=jobs,
        progress=progress,
        stats=stats,
    )


def assemble_ext12(
    merged: MergedRun,
    *,
    jobs: Optional[int] = 1,
    progress: Optional[Any] = None,
    stats: Optional[GridStats] = None,
) -> ExperimentResult:
    """Reassemble the EXT12 result from a merged shard set (all cache hits)."""
    workload = merged.workload
    if workload.get("experiment") != "EXT12":
        raise ValueError(
            f"merged run holds a {workload.get('experiment') or workload.get('workload')!r} "
            f"workload, not an EXT12 grid"
        )
    return run(
        amplitudes=workload["amplitudes"],
        repeats=int(workload["repeats"]),
        window_count=int(workload["window_count"]),
        periods_per_window=int(workload["periods_per_window"]),
        stage_count=int(workload["stage_count"]),
        bank_seed=int(workload["bank_seed"]),
        seed=int(workload["seed"]),
        jobs=jobs,
        cache=merged.cache,
        progress=progress,
        stats=stats,
    )
