"""ABL3 — ablating the two process-variation layers (Table II ablation).

Table II's structure needs *both* statistical layers of the process
model:

* with only the **local** (per-LUT) layer, dispersion keeps falling as
  ``1/sqrt(L)`` — the 96-stage STR would be implausibly perfect and the
  IRO rows would extrapolate to zero;
* with only the **global** (per-device) layer, every ring on a board
  shifts alike — sigma_rel would be identical for all rings and the
  IRO3 -> IRO5 improvement would vanish;
* with both, short rings are local-dominated and the long STR is
  global-limited, which is exactly the paper's pattern.

Measured on a large bank so the layer signatures are statistically
unambiguous.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.characterization import measure_family_dispersion
from repro.experiments.base import ExperimentResult
from repro.fpga.board import BoardBank
from repro.fpga.calibration import CalibratedTiming, cyclone_iii_calibration
from repro.fpga.process import ProcessVariation
from repro.rings.iro import InverterRingOscillator
from repro.rings.str_ring import SelfTimedRing

RINGS = (("iro", 3), ("iro", 5), ("str", 96), ("str", 384))


def _bank_with_process(process: ProcessVariation, board_count: int, seed: int) -> BoardBank:
    reference = cyclone_iii_calibration()
    calibration = CalibratedTiming(
        constants=reference.constants,
        confinement=reference.confinement,
        process=process,
    )
    return BoardBank.manufacture(board_count=board_count, seed=seed, calibration=calibration)


def run(
    board_count: int = 40,
    seed: int = 59,
) -> ExperimentResult:
    """Measure sigma_rel per ring under each process-layer ablation."""
    reference = cyclone_iii_calibration().process
    variants = {
        "both layers": reference,
        "local only": ProcessVariation(0.0, reference.local_sigma_rel),
        "global only": ProcessVariation(reference.global_sigma_rel, 0.0),
    }
    sigma: Dict[str, Dict[str, float]] = {}
    rows: List[Tuple] = []
    for variant_name, process in variants.items():
        bank = _bank_with_process(process, board_count, seed)
        sigma[variant_name] = {}
        for kind, length in RINGS:
            if kind == "iro":
                builder = lambda b, L=length: InverterRingOscillator.on_board(b, L)
            else:
                builder = lambda b, L=length: SelfTimedRing.on_board(b, L)
            label = f"{kind.upper()} {length}C"
            result = measure_family_dispersion(bank, builder)
            sigma[variant_name][label] = result.sigma_rel
        rows.append(
            (
                variant_name,
                *(f"{sigma[variant_name][f'{k.upper()} {n}C']:.3%}" for k, n in RINGS),
            )
        )

    both = sigma["both layers"]
    local = sigma["local only"]
    global_ = sigma["global only"]
    return ExperimentResult(
        experiment_id="ABL3",
        title="Ablation: process-variation layers vs Table II structure",
        columns=("process model", "IRO 3C", "IRO 5C", "STR 96C", "STR 384C"),
        rows=rows,
        paper_reference={
            "table_ii": "IRO 3C 0.79%, IRO 5C 0.62%, STR 96C 0.15%",
        },
        checks={
            # Local mismatch alone keeps averaging out: no dispersion
            # floor, sigma ~ 1/sqrt(L) all the way down.
            "local_only_has_no_floor": local["STR 384C"] < 0.65 * local["STR 96C"],
            # The global layer is that floor: with both layers the 4x
            # longer ring barely improves any more.
            "global_floor_limits_long_rings": both["STR 384C"] > 0.75 * global_["STR 96C"],
            "global_only_flattens_ring_dependence": abs(
                global_["IRO 3C"] - global_["STR 96C"]
            )
            < 0.1 * both["IRO 3C"],
            "both_layers_reproduce_ordering": both["STR 96C"]
            < both["IRO 5C"]
            < both["IRO 3C"],
        },
        notes=(
            f"{board_count} manufactured boards per variant; reference "
            f"sigmas: global {reference.global_sigma_rel:.2%}, local "
            f"{reference.local_sigma_rel:.2%} (fitted from the two IRO "
            "rows of Table II)."
        ),
    )
