"""FIG4 — token and bubble propagation (paper Fig. 4).

The paper's Fig. 4 steps a small STR and shows tokens moving to the right
while bubbles move to the left.  We replay the logical (untimed) firing
semantics on the paper's example size and record the census at each step,
checking the two invariants the figure illustrates:

* every fired stage moves its token one position forward (mod L);
* the total token/bubble census is conserved.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.experiments.base import ExperimentResult
from repro.rings.tokens import (
    count_bubbles,
    count_tokens,
    fire_stage,
    fireable_stages,
    spread_tokens_evenly,
    token_positions,
)


def run(stage_count: int = 5, token_count: int = 2, steps: int = 10) -> ExperimentResult:
    """Step the logical STR and record token motion."""
    state = spread_tokens_evenly(stage_count, token_count)
    rows: List[Tuple] = []
    forward_moves = 0
    census_conserved = True
    for step in range(steps):
        fireable = fireable_stages(state)
        if not fireable:
            break
        stage = fireable[0]
        tokens_before = set(token_positions(state))
        state = fire_stage(state, stage)
        tokens_after = set(token_positions(state))
        moved_to = (stage + 1) % stage_count
        if moved_to in tokens_after and stage in tokens_before and stage not in tokens_after:
            forward_moves += 1
        if count_tokens(state) != token_count or count_bubbles(state) != stage_count - token_count:
            census_conserved = False
        rows.append(
            (
                step,
                stage,
                "".join(str(v) for v in state),
                ",".join(str(p) for p in token_positions(state)),
            )
        )
    return ExperimentResult(
        experiment_id="FIG4",
        title="Propagation of tokens and bubbles in STRs (Fig. 4)",
        columns=("step", "fired stage", "state C[0..L-1]", "token positions"),
        rows=rows,
        paper_reference={
            "claim": "tokens move to the right, bubbles to the left",
        },
        checks={
            "every_firing_moves_token_forward": forward_moves == len(rows),
            "token_bubble_census_conserved": census_conserved,
            "ring_keeps_firing": len(rows) == steps,
        },
        notes=(
            "Logical (untimed) replay of the Section II-C firing rule on an "
            f"L={stage_count}, NT={token_count} ring."
        ),
    )
