"""SEC5A — evenly-spaced mode locking (paper Section V-A).

The paper verifies experimentally that

* STRs with ``NT = NB`` lock into the evenly-spaced mode for ring
  lengths from 4 to 96, and
* a 32-stage ring stays evenly spaced for every configuration
  ``NT in {10, 12, 14, 16, 18, 20}`` — which "suggests a high Charlie
  effect in the selected devices".

We replay both sweeps on the calibrated device model and classify the
steady regime of each configuration.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.temporal_model import solve_steady_state
from repro.experiments.base import ExperimentResult
from repro.fpga.board import Board
from repro.rings.modes import OscillationMode, classify_trace
from repro.rings.str_ring import SelfTimedRing

#: Balanced ring lengths checked by the paper ("from 4 to 96").
BALANCED_LENGTHS: Tuple[int, ...] = (4, 8, 16, 24, 32, 48, 64, 96)
#: Token counts of the 32-stage sweep.
TOKEN_SWEEP_32: Tuple[int, ...] = (10, 12, 14, 16, 18, 20)


def run(
    board: Optional[Board] = None,
    balanced_lengths: Sequence[int] = BALANCED_LENGTHS,
    token_counts_32: Sequence[int] = TOKEN_SWEEP_32,
    period_count: int = 192,
    seed: int = 23,
) -> ExperimentResult:
    """Classify the steady regime of every configuration the paper lists."""
    board = board if board is not None else Board()
    rows: List[Tuple] = []
    verdicts: List[bool] = []

    def classify(ring: SelfTimedRing, label: str) -> None:
        steady = solve_steady_state(ring.mean_diagram(), ring.stage_count, ring.token_count)
        result = ring.simulate(period_count, seed=seed, warmup_periods=48)
        classification = classify_trace(result.trace)
        evenly = classification.mode is OscillationMode.EVENLY_SPACED
        verdicts.append(evenly)
        rows.append(
            (
                label,
                ring.stage_count,
                ring.token_count,
                classification.mode.value,
                classification.coefficient_of_variation,
                steady.separation_ps,
                steady.regulation_margin,
            )
        )

    for length in balanced_lengths:
        classify(SelfTimedRing.on_board(board, length), "balanced sweep")
    balanced_ok = all(verdicts)

    token_verdicts_start = len(verdicts)
    for token_count in token_counts_32:
        classify(SelfTimedRing.on_board(board, 32, token_count=token_count), "NT sweep L=32")
    token_sweep_ok = all(verdicts[token_verdicts_start:])

    return ExperimentResult(
        experiment_id="SEC5A",
        title="Evenly-spaced mode locking (Section V-A observations)",
        columns=(
            "sweep",
            "L",
            "NT",
            "steady mode",
            "interval CV",
            "s* [ps]",
            "regulation margin",
        ),
        rows=rows,
        paper_reference={
            "balanced": "NT = NB locks evenly-spaced for L = 4..96",
            "token_sweep": "L = 32 evenly-spaced for NT = 10..20",
        },
        checks={
            "balanced_rings_lock": balanced_ok,
            "token_sweep_locks": token_sweep_ok,
        },
        notes=(
            "The wide NT window at L = 32 requires the calibrated Charlie "
            "magnitude; with a weak Charlie effect the detuned "
            "configurations would drift toward the linear diagram region."
        ),
    )
