"""EXT8 — the throughput/entropy design tradeoff (extension).

A TRNG designer picks a point on one curve: slow down the sampler and
the entropy bound rises toward 1; speed it up and it collapses.  This
experiment draws that curve for three designs on the same calibrated
silicon —

* the elementary IRO 5C sampler,
* the elementary STR 96C sampler (using its *diffusion* rate — the
  conservative figure, see docs/theory.md §7),
* the multi-phase STR 63C sampler (the follow-up design),

and verifies the orderings that the paper's results imply: at any given
entropy target the multi-phase sampler is ``L^2`` faster than its own
elementary version, and the IRO's larger per-period jitter buys it a
faster *elementary* sampler than the STR — the honest trade the paper's
conclusion glosses over (the STR's wins are robustness and per-stage
parallelism, not single-output entropy rate).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.experiments.base import ExperimentResult
from repro.fpga.board import Board
from repro.rings.iro import InverterRingOscillator
from repro.rings.str_ring import SelfTimedRing
from repro.stats.accumulation import accumulation_profile
from repro.trng.elementary import predicted_shannon_entropy, quality_factor


def _entropy_at(
    reference_period_ps: float,
    period_ps: float,
    sigma_ps: float,
    virtual_divisor: int = 1,
) -> float:
    """Entropy bound of a (possibly virtual-L) sampler at T_ref."""
    q = quality_factor(sigma_ps, period_ps, reference_period_ps) * virtual_divisor**2
    return predicted_shannon_entropy(q)


def run(
    board: Optional[Board] = None,
    entropy_target: float = 0.997,
    period_count: int = 3072,
    multiphase_stages: int = 63,
    multiphase_tokens: int = 20,
    seed: int = 79,
) -> ExperimentResult:
    """Draw entropy-vs-throughput curves and locate the target crossings."""
    board = board if board is not None else Board()
    iro = InverterRingOscillator.on_board(board, 5)
    str96 = SelfTimedRing.on_board(board, 96)
    str63 = SelfTimedRing.on_board(board, multiphase_stages, token_count=multiphase_tokens)

    # Measure the quantity that actually accumulates for each design.
    designs: Dict[str, Tuple[float, float, int]] = {}
    for name, ring, divisor in (
        ("IRO 5C elementary", iro, 1),
        ("STR 96C elementary", str96, 1),
        (f"STR {multiphase_stages}C multi-phase", str63, multiphase_stages),
    ):
        periods = ring.simulate(period_count, seed=seed).trace.periods_ps()
        diffusion = accumulation_profile(periods).diffusion_sigma_ps
        designs[name] = (ring.predicted_period_ps(), diffusion, divisor)

    # Sample the tradeoff curves over six decades of reference period.
    reference_periods = np.logspace(4, 10, 25)  # 10 ns .. 10 ms
    rows: List[Tuple] = []
    for reference in reference_periods:
        row = [float(reference) / 1e6]
        for name, (period, sigma, divisor) in designs.items():
            if reference <= period:
                row.append(float("nan"))
                continue
            row.append(_entropy_at(reference, period, sigma, divisor))
        rows.append(tuple(row))

    def reference_for_target(name: str) -> float:
        period, sigma, divisor = designs[name]
        # Invert H(Q) = target for Q, then Q for T_ref.
        q_needed = -math.log(
            (1.0 - entropy_target) * math.pi**2 * math.log(2.0) / 4.0
        ) / (4.0 * math.pi**2)
        return q_needed * period**3 / (sigma**2 * divisor**2)

    crossings = {name: reference_for_target(name) for name in designs}
    iro_cross = crossings["IRO 5C elementary"]
    str_cross = crossings["STR 96C elementary"]
    multi_cross = crossings[f"STR {multiphase_stages}C multi-phase"]
    multiphase_speedup = str_cross_vs_multi = None
    # The multi-phase sampler uses the *same ring family*; compare it to
    # an elementary sampler on its own ring for the clean L^2 statement.
    period63, sigma63, _ = designs[f"STR {multiphase_stages}C multi-phase"]
    elementary63_cross = (
        -math.log((1.0 - entropy_target) * math.pi**2 * math.log(2.0) / 4.0)
        / (4.0 * math.pi**2)
        * period63**3
        / sigma63**2
    )
    multiphase_speedup = elementary63_cross / multi_cross

    curves_monotone = all(
        all(
            earlier <= later + 1e-12
            for earlier, later in zip(column, column[1:])
            if not (math.isnan(earlier) or math.isnan(later))
        )
        for column in (
            [row[i] for row in rows] for i in range(1, 1 + len(designs))
        )
    )
    return ExperimentResult(
        experiment_id="EXT8",
        title="Throughput vs entropy tradeoff for three designs (extension)",
        columns=("T_ref [us]", *designs.keys()),
        rows=rows,
        paper_reference={
            "implied": "entropy comes from accumulated random jitter; the "
            "designs differ only in how fast they accumulate it",
        },
        checks={
            "entropy_monotone_in_reference_period": curves_monotone,
            "multiphase_speedup_is_L_squared": abs(
                multiphase_speedup - multiphase_stages**2
            )
            < 0.01 * multiphase_stages**2,
            "iro_elementary_faster_than_str_elementary": iro_cross < str_cross,
            "multiphase_fastest_overall": multi_cross < iro_cross,
        },
        notes=(
            f"Reference periods reaching H >= {entropy_target}: "
            f"IRO 5C {iro_cross / 1e6:.1f} us, STR 96C {str_cross / 1e6:.1f} us, "
            f"multi-phase STR {multiphase_stages}C {multi_cross / 1e6:.3f} us "
            f"(x{multiphase_speedup:.0f} vs its own elementary sampler).  "
            "Note the honest trade: the IRO's bigger per-period jitter makes "
            "its *elementary* sampler faster than the STR's; the STR wins on "
            "robustness (TAB1/TAB2/EXT1) and on per-stage parallelism (EXT4)."
        ),
    )
