"""EXT9 — the XOR-of-IROs baseline vs the multi-phase STR (extension).

The paper positions the STR against "the most widely used solution" —
IRO-based TRNGs.  The strongest IRO-side design of the era is the
Sunar-style XOR of many small rings.  This experiment pits the two
silicon-multiplication strategies against each other at an **equal LUT
budget** (~96 LUTs):

* 19 x IRO 5C, sampled together and XOR-ed (95 LUTs);
* one multi-phase STR 63C (63 LUTs, all stages tapped);
* a single elementary IRO 5C as the floor.

Both aggregated designs pass the battery at a reference period where
the single ring is still blatantly patterned; the comparison table
records the bias suppression and the entropy bounds under each design's
own assumptions (independence for the XOR bank; uniform comb for the
multi-phase ring).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.experiments.base import ExperimentResult
from repro.fpga.board import Board
from repro.rings.str_ring import SelfTimedRing
from repro.stats.entropy import bias, markov_entropy_per_bit
from repro.stats.randomness import run_battery
from repro.trng.multiphase import MultiphaseModel, measure_diffusion_sigma_ps
from repro.trng.phasewalk import PhaseWalkTrng
from repro.trng.xored_rings import XoredRingTrng


def run(
    board: Optional[Board] = None,
    reference_period_ps: float = 900_000.0,
    ring_count: int = 19,
    iro_stages: int = 5,
    multiphase_stages: int = 63,
    multiphase_tokens: int = 20,
    bit_count: int = 30_000,
    seed: int = 83,
) -> ExperimentResult:
    """Compare the three designs at one (deliberately fast) sampling rate.

    The default rate is set so the multi-phase sampler's comb wander per
    sample comfortably exceeds one comb tick (Q ~ 0.5): right at Q ~ 0.25
    the parity of the tick count retains marginal serial correlation —
    the multi-phase analogue of under-provisioning Q in an elementary
    sampler.
    """
    board = board if board is not None else Board()

    # Floor: one elementary IRO at this fast reference period.
    from repro.rings.iro import InverterRingOscillator

    single_ring = InverterRingOscillator.on_board(board, iro_stages)
    single = PhaseWalkTrng.from_ring(single_ring, reference_period_ps)
    single_bits = single.generate(bit_count, seed=seed)

    # Sunar-style bank at ~96 LUTs.
    bank = XoredRingTrng.on_board(
        board, iro_stages, ring_count, reference_period_ps
    )
    bank_bits = bank.generate(bit_count, seed=seed + 1)
    bank_point = bank.design_point()

    # Multi-phase STR at 63 LUTs.
    str_ring = SelfTimedRing.on_board(
        board, multiphase_stages, token_count=multiphase_tokens
    )
    diffusion = measure_diffusion_sigma_ps(str_ring, period_count=2048, seed=seed)
    multiphase = MultiphaseModel.from_ring(
        str_ring, reference_period_ps, diffusion_sigma_ps=diffusion
    )
    multiphase_bits = multiphase.generate(bit_count, seed=seed + 2)

    rows: List[Tuple] = []
    verdicts = {}
    for label, bits, luts, entropy_note in (
        (f"1 x IRO {iro_stages}C", single_bits, iro_stages,
         f"per-ring H = {bank_point.per_ring_entropy:.3f}"),
        (f"{ring_count} x IRO {iro_stages}C XOR", bank_bits, ring_count * iro_stages,
         f"XOR bias bound = {bank_point.xor_bias_bound:.2e}"),
        (f"multi-phase STR {multiphase_stages}C", multiphase_bits, multiphase_stages,
         f"Q_virtual = {multiphase.design_point().q_factor:.2f}"),
    ):
        battery = run_battery(bits)
        verdicts[label] = battery.all_passed
        rows.append(
            (
                label,
                luts,
                f"{bias(bits):+.4f}",
                f"{markov_entropy_per_bit(bits):.4f}",
                "PASS" if battery.all_passed else "FAIL",
                entropy_note,
            )
        )

    single_label = f"1 x IRO {iro_stages}C"
    xor_label = f"{ring_count} x IRO {iro_stages}C XOR"
    multi_label = f"multi-phase STR {multiphase_stages}C"
    return ExperimentResult(
        experiment_id="EXT9",
        title="Equal-silicon shootout: XOR-of-IROs vs multi-phase STR (extension)",
        columns=("design", "LUTs", "bias", "Markov H", "battery", "model note"),
        rows=rows,
        paper_reference={
            "intro": "IROs are the most widely used solution ... due to their "
            "low area",
            "lineage": "Sunar-style XOR banks are the era's strong IRO design "
            "(the [1] lineage)",
        },
        checks={
            "single_ring_fails_at_this_rate": not verdicts[single_label],
            "xor_bank_passes": verdicts[xor_label],
            "multiphase_passes": verdicts[multi_label],
            "aggregation_suppresses_bias": abs(float(np.mean(bank_bits)) - 0.5)
            < abs(float(np.mean(single_bits)) - 0.5) + 0.02,
        },
        notes=(
            f"All designs sampled every {reference_period_ps / 1e3:.0f} ns.  "
            "Both aggregation strategies rescue a rate where one ring is "
            "blatantly patterned; the XOR bank leans on ring independence "
            "(optimistic on real silicon — coupling/locking between "
            "identical rings is the known failure), the multi-phase STR on "
            "one ring's per-stage jitter (Eq. 5) — the paper's robustness "
            "results favour the latter's assumptions."
        ),
    )
