"""EXT5 — restart experiments (extension; the [2]-lineage methodology).

Restarting an oscillator from the *same* initial state many times and
looking at the spread of the k-th output edge across restarts is the
classic way to separate randomness from determinism (used by the
authors' group for entropy assessment):

* the deterministic part of the trajectory is identical in every
  restart, so it drops out of the across-restart variance entirely —
  even an injected supply ripple, as long as it is restart-synchronous;
* the random part accumulates: the across-restart standard deviation of
  the n-th period boundary grows like sqrt(n).

Measured here for both rings:

* IRO 5C — accumulation rate per period = sqrt(2L) sigma_g (Eq. 4's
  random walk, observed directly);
* STR 96C — accumulation at the ring's much smaller collective
  diffusion rate: per period of the *same ~300 MHz output*, the STR
  accumulates several times less absolute phase noise — the
  length-independence dividend;
* under a restart-synchronous ripple the mean trajectory shifts but the
  spread does not: deterministic jitter carries no entropy.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.experiments.base import ExperimentResult
from repro.fpga.board import Board
from repro.rings.base import RingOscillator
from repro.rings.iro import InverterRingOscillator
from repro.rings.str_ring import SelfTimedRing
from repro.simulation.noise import SinusoidalModulation
from repro.stats.fitting import fit_power_law


def _restart_spread(
    ring: RingOscillator,
    restarts: int,
    period_count: int,
    seed: int,
    modulation=None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Across-restart mean and std of each period boundary.

    Returns (period indices, mean time, std time), using the rising-edge
    boundaries common to all restarts.
    """
    edge_count = 2 * period_count
    times = np.empty((restarts, period_count))
    for restart in range(restarts):
        result = ring.simulate(
            period_count + 1,
            seed=seed + restart,
            warmup_periods=0,
            modulation=modulation,
        )
        boundary_times = result.warmup_trace.times_ps[:edge_count:2]
        times[restart] = boundary_times[:period_count]
    indices = np.arange(1, period_count + 1)
    return indices, times.mean(axis=0), times.std(axis=0)


def run(
    board: Optional[Board] = None,
    restarts: int = 160,
    period_count: int = 48,
    ripple_amplitude: float = 0.004,
    seed: int = 61,
) -> ExperimentResult:
    """Run restart campaigns for both rings, clean and under ripple."""
    board = board if board is not None else Board()
    iro = InverterRingOscillator.on_board(board, 5)
    str_ring = SelfTimedRing.on_board(board, 96)

    rows: List[Tuple] = []
    fits = {}
    rates = {}
    for ring in (iro, str_ring):
        indices, _mean, spread = _restart_spread(ring, restarts, period_count, seed)
        # Skip the first few boundaries (start-up transient for the STR).
        keep = indices >= 4
        fit = fit_power_law(indices[keep], spread[keep])
        fits[ring.name] = fit
        rates[ring.name] = spread[-1] / np.sqrt(period_count)
        for n in (1, 4, 16, period_count):
            position = int(np.searchsorted(indices, n))
            rows.append((ring.name, "clean", n, float(spread[position])))

    # Restart-synchronous ripple: same modulation phase every restart.
    ripple = SinusoidalModulation(amplitude=ripple_amplitude, period_ps=5e4)
    _indices, mean_clean, spread_clean = _restart_spread(
        iro, restarts, period_count, seed
    )
    _indices, mean_rippled, spread_rippled = _restart_spread(
        iro, restarts, period_count, seed, modulation=ripple
    )
    mean_shift = float(abs(mean_rippled[-1] - mean_clean[-1]))
    spread_change = float(abs(spread_rippled[-1] - spread_clean[-1]))
    rows.append(("IRO 5C", "ripple: mean shift [ps]", period_count, mean_shift))
    rows.append(("IRO 5C", "ripple: spread change [ps]", period_count, spread_change))

    sigma_g = board.calibration.constants.gate_jitter_sigma_ps
    iro_expected_rate = np.sqrt(2 * iro.stage_count) * sigma_g
    return ExperimentResult(
        experiment_id="EXT5",
        title="Restart experiments: random accumulates, deterministic repeats (extension)",
        columns=("ring", "condition", "period boundary n", "across-restart sigma [ps]"),
        rows=rows,
        paper_reference={
            "lineage": "[2]'s separation of random and deterministic jitter; "
            "the restart technique of the authors' entropy-assessment work",
            "eq4_rate": f"IRO rate sqrt(2L) sigma_g = {iro_expected_rate:.2f} ps/sqrt(T)",
        },
        checks={
            "iro_sqrt_accumulation": abs(fits["IRO 5C"].exponent - 0.5) < 0.1,
            "str_sqrt_accumulation": abs(fits["STR 96C"].exponent - 0.5) < 0.2,
            "iro_rate_matches_eq4": abs(rates["IRO 5C"] - iro_expected_rate)
            < 0.25 * iro_expected_rate,
            "str_accumulates_less_per_period": rates["STR 96C"] < 0.6 * rates["IRO 5C"],
            "deterministic_shifts_mean_not_spread": mean_shift > 5.0 * max(spread_change, 1.0),
        },
        notes=(
            f"{restarts} restarts per campaign.  Measured accumulation "
            f"rates: IRO 5C {rates['IRO 5C']:.2f} ps/sqrt(period) (Eq. 4 "
            f"predicts {iro_expected_rate:.2f}), STR 96C "
            f"{rates['STR 96C']:.2f}.  A restart-synchronous ripple moved "
            f"the mean boundary by {mean_shift:.1f} ps while the spread "
            f"changed by only {spread_change:.2f} ps — deterministic "
            "jitter repeats, so it contributes no entropy."
        ),
    )
