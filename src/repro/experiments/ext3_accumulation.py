"""EXT3 — jitter accumulation profiles (extension of Section IV).

The paper's Section IV is an argument about accumulation: IRO periods
integrate fresh noise every crossing, STR periods are continuously
re-centred by the Charlie effect.  This extension measures the full
accumulation profile ``sigma_eff(N) = sqrt(var(N-period sum)/N)`` for
both rings:

* IRO — flat at sigma_p for every horizon (white period noise; this is
  also the hypothesis of the Fig. 10 divider method, validated here);
* STR — decays from sigma_p toward the long-run diffusion level: the
  anticorrelation signature of the regulation, and the quantitative
  basis of the multi-phase TRNG's provisioning (EXT4).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.experiments.base import ExperimentResult
from repro.fpga.board import Board
from repro.rings.iro import InverterRingOscillator
from repro.rings.str_ring import SelfTimedRing
from repro.stats.accumulation import accumulation_profile, allan_profile


def run(
    board: Optional[Board] = None,
    period_count: int = 8192,
    seed: int = 41,
) -> ExperimentResult:
    """Measure accumulation and Allan profiles for the flagship pair."""
    board = board if board is not None else Board()
    rows: List[Tuple] = []
    profiles = {}
    allan = {}
    for ring in (
        InverterRingOscillator.on_board(board, 5),
        SelfTimedRing.on_board(board, 96),
    ):
        periods = ring.simulate(period_count, seed=seed).trace.periods_ps()
        profile = accumulation_profile(periods)
        profiles[ring.name] = profile
        allan[ring.name] = allan_profile(periods)
        for size, sigma in zip(profile.block_sizes, profile.effective_sigma_ps):
            rows.append((ring.name, int(size), float(sigma), float(sigma / profile.period_sigma_ps)))

    iro_profile = profiles["IRO 5C"]
    str_profile = profiles["STR 96C"]
    return ExperimentResult(
        experiment_id="EXT3",
        title="Jitter accumulation profiles: white IRO vs regulated STR (extension)",
        columns=("ring", "horizon N", "sigma_eff(N) [ps]", "sigma_eff / sigma_p"),
        rows=rows,
        paper_reference={
            "section_iv": "jitter accumulates in IROs; the Charlie effect "
            "permanently regulates the STR token spacing",
        },
        checks={
            "iro_periods_are_white": iro_profile.is_white(tolerance=0.25),
            "iro_allan_slope_minus_half": allan["IRO 5C"].is_white_period_noise(),
            "str_profile_decays": str_profile.regulation_ratio < 0.75,
            "str_single_period_sigma_larger_than_diffusion": str_profile.period_sigma_ps
            > str_profile.diffusion_sigma_ps,
        },
        notes=(
            f"STR 96C regulation ratio (diffusion / single-period sigma): "
            f"{str_profile.regulation_ratio:.2f}; IRO 5C: "
            f"{iro_profile.regulation_ratio:.2f} (white).  The STR's "
            "long-run diffusion level is what a divider measurement "
            "(Eq. 6) converges to, and what the multi-phase TRNG "
            "provisioning must use."
        ),
    )
