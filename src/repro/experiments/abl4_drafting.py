"""ABL4 — drafting-effect sweep: mapping the burst boundary (ablation).

The paper neglects the drafting effect for FPGAs (Section II-D2) after
noting it is what promotes the burst mode in ASICs [3].  This ablation
quantifies the claim's safety margin: sweeping the drafting amplitude
against two Charlie magnitudes and classifying the steady regime maps
the evenly-spaced/burst boundary.

Expected structure:

* with no drafting the ring always locks evenly-spaced (the paper's
  FPGA operating point, far from the boundary);
* bursts appear once the drafting reward for clustering outweighs the
  Charlie repulsion — at a threshold amplitude that *grows with the
  Charlie magnitude* (Winstanley's competition, reproduced).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.charlie import CharlieDiagram, CharlieParameters, DraftingEffect
from repro.experiments.base import ExperimentResult
from repro.rings.modes import OscillationMode, classify_trace
from repro.rings.str_ring import SelfTimedRing
from repro.rings.tokens import cluster_tokens

#: Drafting amplitudes swept (ps of delay reduction at zero elapsed time).
DEFAULT_AMPLITUDES: Tuple[float, ...] = (0.0, 20.0, 45.0, 90.0, 180.0)
#: Charlie magnitudes contrasted (weak vs strong regulation).
DEFAULT_CHARLIES: Tuple[float, ...] = (30.0, 120.0)


def _classify(
    charlie_ps: float,
    drafting_amplitude_ps: float,
    stage_count: int,
    token_count: int,
    static_delay_ps: float,
    periods: int,
    seed: int,
) -> OscillationMode:
    diagram = CharlieDiagram(
        CharlieParameters.symmetric(static_delay_ps, charlie_ps),
        drafting=DraftingEffect(
            amplitude_ps=drafting_amplitude_ps, time_constant_ps=400.0
        )
        if drafting_amplitude_ps > 0.0
        else DraftingEffect(),
    )
    ring = SelfTimedRing(
        [diagram] * stage_count,
        token_count,
        jitter_sigmas_ps=0.5,
        initial_state=cluster_tokens(stage_count, token_count),
    )
    result = ring.simulate(periods, seed=seed, warmup_periods=64)
    return classify_trace(result.trace).mode


def run(
    stage_count: int = 12,
    token_count: int = 4,
    amplitudes: Sequence[float] = DEFAULT_AMPLITUDES,
    charlie_magnitudes: Sequence[float] = DEFAULT_CHARLIES,
    static_delay_ps: float = 250.0,
    periods: int = 192,
    seed: int = 71,
) -> ExperimentResult:
    """Sweep drafting amplitude against Charlie magnitude."""
    rows: List[Tuple] = []
    modes: Dict[Tuple[float, float], OscillationMode] = {}
    for charlie in charlie_magnitudes:
        for amplitude in amplitudes:
            mode = _classify(
                charlie,
                amplitude,
                stage_count,
                token_count,
                static_delay_ps,
                periods,
                seed,
            )
            modes[(charlie, amplitude)] = mode
            rows.append((charlie, amplitude, mode.value))

    def burst_threshold(charlie: float) -> Optional[float]:
        for amplitude in sorted(amplitudes):
            if modes[(charlie, amplitude)] is OscillationMode.BURST:
                return amplitude
        return None

    weak, strong = min(charlie_magnitudes), max(charlie_magnitudes)
    weak_threshold = burst_threshold(weak)
    strong_threshold = burst_threshold(strong)
    return ExperimentResult(
        experiment_id="ABL4",
        title="Ablation: drafting amplitude vs the burst-mode boundary",
        columns=("Charlie magnitude [ps]", "drafting amplitude [ps]", "steady mode"),
        rows=rows,
        paper_reference={
            "section_iid2": "the drafting effect ... is much lower in FPGAs; "
            "therefore we propose to neglect the drafting effect",
            "winstanley": "drafting promotes bursts, the Charlie effect "
            "promotes even spacing [3]",
        },
        checks={
            "no_drafting_always_locks": all(
                modes[(charlie, 0.0)] is OscillationMode.EVENLY_SPACED
                for charlie in charlie_magnitudes
            ),
            "strong_drafting_bursts": modes[(weak, max(amplitudes))]
            is OscillationMode.BURST,
            "charlie_raises_burst_threshold": (
                weak_threshold is not None
                and (strong_threshold is None or strong_threshold > weak_threshold)
            ),
        },
        notes=(
            f"L = {stage_count}, NT = {token_count}, clustered start.  "
            f"Burst thresholds: Dcharlie = {weak} ps -> "
            f"{weak_threshold} ps of drafting; Dcharlie = {strong} ps -> "
            f"{strong_threshold if strong_threshold is not None else 'none in range'}.  "
            "The FPGA operating point (no measurable drafting) is far "
            "inside the evenly-spaced zone, supporting the paper's "
            "decision to neglect the effect."
        ),
    )
