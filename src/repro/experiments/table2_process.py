"""TAB2 — extra-device frequency dispersion over five boards (Table II).

Manufactures a five-board bank from the calibrated process model, sends
the same "bitstream" (placement + configuration) to every board, and
reports the relative standard deviation of the ring frequency, next to
the paper's measurements.  Verified structural claims:

* the 96-stage STR has by far the narrowest dispersion;
* dispersion improves from IRO 3C to IRO 5C (local mismatch averaging),
  but only at the cost of frequency (F ~ 1/L for IROs);
* the STR keeps a *high* frequency while reaching the low dispersion —
  the paper's headline advantage for coherent-sampling TRNGs.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.characterization import measure_family_dispersion
from repro.experiments.base import ExperimentResult
from repro.fpga.board import BoardBank
from repro.fpga.calibration import TABLE2_TARGETS, Table2Row
from repro.rings.iro import InverterRingOscillator
from repro.rings.str_ring import SelfTimedRing


def run(
    bank: Optional[BoardBank] = None,
    seed: int = 7,
    targets: Sequence[Table2Row] = TABLE2_TARGETS,
    jobs: Optional[int] = 1,
    cache=None,
) -> ExperimentResult:
    """Reproduce Table II on a simulated board bank.

    ``jobs``/``cache`` are forwarded to the dispersion driver; they only
    matter for measured (event-driven) dispersion runs — the analytic
    path used here is instant either way.
    """
    bank = bank if bank is not None else BoardBank.manufacture(board_count=5, seed=seed)
    rows: List[Tuple] = []
    measured = {}
    for target in targets:
        if target.kind == "iro":
            builder = lambda b, L=target.stage_count: InverterRingOscillator.on_board(b, L)
        else:
            builder = lambda b, L=target.stage_count: SelfTimedRing.on_board(b, L)
        dispersion = measure_family_dispersion(bank, builder, jobs=jobs, cache=cache)
        label = f"{target.kind.upper()} {target.stage_count}C"
        measured[label] = dispersion
        rows.append(
            (
                label,
                *(round(float(f), 2) for f in dispersion.frequencies_mhz),
                f"{dispersion.sigma_rel:.2%}",
                f"{target.sigma_rel:.2%}",
            )
        )

    str96 = measured["STR 96C"]
    iro3 = measured["IRO 3C"]
    iro5 = measured["IRO 5C"]
    str4 = measured["STR 4C"]

    # The IRO3 -> IRO5 improvement (local-mismatch averaging) is smaller
    # than the sampling noise of a 5-board sigma estimate, so that
    # structural check runs on a larger auxiliary bank.
    big_bank = BoardBank.manufacture(board_count=40, seed=seed + 1)
    iro3_big = measure_family_dispersion(
        big_bank, lambda b: InverterRingOscillator.on_board(b, 3)
    )
    iro5_big = measure_family_dispersion(
        big_bank, lambda b: InverterRingOscillator.on_board(b, 5)
    )
    return ExperimentResult(
        experiment_id="TAB2",
        title="Relative standard deviation of frequencies over 5 devices (Table II)",
        columns=(
            "ring",
            "board 1",
            "board 2",
            "board 3",
            "board 4",
            "board 5",
            "sigma_rel",
            "paper sigma_rel",
        ),
        rows=rows,
        paper_reference={
            f"{t.kind.upper()} {t.stage_count}C": t.sigma_rel for t in targets
        },
        checks={
            "str96_narrowest": str96.sigma_rel == min(m.sigma_rel for m in measured.values()),
            "str96_much_tighter_than_short_rings": str96.sigma_rel
            < 0.5 * min(iro3.sigma_rel, iro5.sigma_rel, str4.sigma_rel),
            "str96_keeps_high_frequency": str96.mean_frequency_mhz > 250.0,
            "iro_dispersion_improves_only_with_lower_frequency": iro5_big.sigma_rel
            < iro3_big.sigma_rel
            and iro5_big.mean_frequency_mhz < iro3_big.mean_frequency_mhz,
        },
        notes=(
            "Five independent process draws per run; individual sigma_rel "
            "values fluctuate between banks, the ordering does not.  The "
            "paper's IRO 5C absolute frequency (305 MHz) is inconsistent "
            "with its own Table I value (376 MHz) - a different placement; "
            "we report the placed-model frequency."
        ),
    )
