"""FIG5 — burst vs evenly-spaced propagation modes (paper Fig. 5).

Fig. 5 contrasts the two steady regimes of an STR.  The reproduction
starts the *same* ring structure from a maximally clustered token
configuration under two analog hypotheses:

* strong Charlie effect (the FPGA situation) — the cluster disperses and
  the ring locks into the evenly-spaced mode;
* negligible Charlie effect with a strong drafting effect (the ASIC
  burst-prone situation of [3]) — the cluster survives and the ring
  oscillates in bursts.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.charlie import CharlieDiagram, CharlieParameters, DraftingEffect
from repro.experiments.base import ExperimentResult
from repro.rings.modes import OscillationMode, classify_trace
from repro.rings.str_ring import SelfTimedRing
from repro.rings.tokens import cluster_tokens


def _simulate_mode(
    stage_count: int,
    token_count: int,
    charlie_ps: float,
    drafting: DraftingEffect,
    static_delay_ps: float,
    periods: int,
    seed: int,
):
    diagram = CharlieDiagram(
        CharlieParameters.symmetric(static_delay_ps, charlie_ps), drafting=drafting
    )
    ring = SelfTimedRing(
        [diagram] * stage_count,
        token_count,
        jitter_sigmas_ps=0.5,
        initial_state=cluster_tokens(stage_count, token_count),
        name=f"STR {stage_count}C",
    )
    result = ring.simulate(periods, seed=seed, warmup_periods=64)
    return classify_trace(result.trace)


def run(
    stage_count: int = 12,
    token_count: int = 4,
    periods: int = 256,
    seed: int = 2,
) -> ExperimentResult:
    """Reproduce the two oscillation modes from a clustered start."""
    static_delay = 250.0
    charlie_case = _simulate_mode(
        stage_count,
        token_count,
        charlie_ps=120.0,
        drafting=DraftingEffect(),
        static_delay_ps=static_delay,
        periods=periods,
        seed=seed,
    )
    drafting_case = _simulate_mode(
        stage_count,
        token_count,
        charlie_ps=2.0,
        drafting=DraftingEffect(amplitude_ps=120.0, time_constant_ps=400.0),
        static_delay_ps=static_delay,
        periods=periods,
        seed=seed,
    )
    rows: List[Tuple] = [
        (
            "strong Charlie (FPGA)",
            charlie_case.mode.value,
            charlie_case.coefficient_of_variation,
            charlie_case.gap_ratio,
        ),
        (
            "drafting-dominated (ASIC)",
            drafting_case.mode.value,
            drafting_case.coefficient_of_variation,
            drafting_case.gap_ratio,
        ),
    ]
    return ExperimentResult(
        experiment_id="FIG5",
        title="Burst and evenly-spaced propagation modes (Fig. 5)",
        columns=("analog hypothesis", "steady mode", "interval CV", "gap ratio"),
        rows=rows,
        paper_reference={
            "evenly_spaced": "tokens spread with constant spacing",
            "burst": "tokens cluster and travel as a group",
        },
        checks={
            "charlie_locks_evenly_spaced": charlie_case.mode is OscillationMode.EVENLY_SPACED,
            "drafting_produces_burst": drafting_case.mode is OscillationMode.BURST,
        },
        notes=(
            "Both runs start from the same maximally clustered token "
            "configuration; only the analog stage model differs."
        ),
    )
