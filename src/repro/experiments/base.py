"""Common result container for the experiment modules."""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict, List, Optional, Sequence, Tuple


@dataclasses.dataclass
class ExperimentResult:
    """Outcome of one table/figure reproduction.

    Attributes
    ----------
    experiment_id:
        Identifier from the DESIGN.md index ("TAB1", "FIG11", ...).
    title:
        The paper item being reproduced.
    columns:
        Column headers of the result table.
    rows:
        One tuple per table row (stringifiable cells).
    paper_reference:
        The corresponding values published in the paper, for side-by-side
        reporting; free-form mapping.
    checks:
        Named boolean verdicts ("does the shape hold"), the machine-readable
        summary the tests assert on.
    notes:
        Anything a reader should know when comparing against the paper.
    """

    experiment_id: str
    title: str
    columns: Sequence[str]
    rows: List[Tuple]
    paper_reference: Dict[str, Any] = dataclasses.field(default_factory=dict)
    checks: Dict[str, bool] = dataclasses.field(default_factory=dict)
    notes: str = ""

    @property
    def all_checks_pass(self) -> bool:
        return all(self.checks.values())

    @property
    def failed_checks(self) -> List[str]:
        return [name for name, passed in self.checks.items() if not passed]

    def format_table(self, float_format: str = "{:.4g}") -> str:
        """Render the rows as an aligned plain-text table."""
        header = [str(column) for column in self.columns]
        body = [
            [
                float_format.format(cell) if isinstance(cell, float) else str(cell)
                for cell in row
            ]
            for row in self.rows
        ]
        table = [header] + body
        widths = [max(len(line[i]) for line in table) for i in range(len(header))]
        lines = [
            "  ".join(cell.ljust(width) for cell, width in zip(line, widths)).rstrip()
            for line in table
        ]
        lines.insert(1, "-" * (sum(widths) + 2 * (len(widths) - 1)))
        return "\n".join(lines)

    def render(self) -> str:
        """Full report: title, table, checks, notes."""
        parts = [f"[{self.experiment_id}] {self.title}", "", self.format_table()]
        if self.checks:
            parts.append("")
            for name, passed in self.checks.items():
                parts.append(f"  check {name}: {'PASS' if passed else 'FAIL'}")
        if self.notes:
            parts.append("")
            parts.append(self.notes)
        return "\n".join(parts)

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dictionary form (tuples become lists)."""
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "columns": list(self.columns),
            "rows": [list(row) for row in self.rows],
            "paper_reference": dict(self.paper_reference),
            "checks": dict(self.checks),
            "notes": self.notes,
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Serialize to JSON (numpy scalars coerced to Python types)."""

        def coerce(value):
            if hasattr(value, "item"):
                return value.item()
            raise TypeError(f"not JSON serializable: {type(value)}")

        return json.dumps(self.to_dict(), indent=indent, default=coerce)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ExperimentResult":
        """Rebuild a result from :meth:`to_dict` output."""
        return cls(
            experiment_id=payload["experiment_id"],
            title=payload["title"],
            columns=tuple(payload["columns"]),
            rows=[tuple(row) for row in payload["rows"]],
            paper_reference=dict(payload.get("paper_reference", {})),
            checks=dict(payload.get("checks", {})),
            notes=payload.get("notes", ""),
        )

    @classmethod
    def from_json(cls, document: str) -> "ExperimentResult":
        """Rebuild a result from :meth:`to_json` output."""
        return cls.from_dict(json.loads(document))
