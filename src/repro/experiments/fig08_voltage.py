"""FIG8 — normalized frequencies vs core supply voltage (paper Fig. 8).

Sweeps the supply from 1.0 V to 1.4 V for the paper's four plotted rings
(IRO 5C, IRO 80C, STR 4C, STR 96C), normalizes each curve to its 1.2 V
frequency, and verifies the two observations the paper makes:

* every curve is (close to) a straight line;
* the 96-stage STR is the least voltage-sensitive, while the 4-stage STR
  matches the IROs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.characterization import VoltageSweepResult, sweep_voltage
from repro.experiments.base import ExperimentResult
from repro.fpga.board import Board
from repro.rings.iro import InverterRingOscillator
from repro.rings.str_ring import SelfTimedRing

#: Rings plotted in the paper's Fig. 8.
FIG8_RINGS: Tuple[Tuple[str, int], ...] = (
    ("iro", 5),
    ("iro", 80),
    ("str", 4),
    ("str", 96),
)


def _builder(kind: str, stage_count: int):
    if kind == "iro":
        return lambda board: InverterRingOscillator.on_board(board, stage_count)
    return lambda board: SelfTimedRing.on_board(board, stage_count)


def run(
    board: Optional[Board] = None,
    voltages_v: Sequence[float] = tuple(np.round(np.arange(1.0, 1.401, 0.05), 3)),
    rings: Sequence[Tuple[str, int]] = FIG8_RINGS,
    jobs: Optional[int] = 1,
    cache=None,
) -> ExperimentResult:
    """Reproduce the Fig. 8 normalized-frequency sweep.

    ``jobs``/``cache`` are forwarded to the sweep driver; they only
    matter for measured (event-driven) sweeps — this reproduction uses
    the instant analytic path.
    """
    board = board if board is not None else Board()
    sweeps: Dict[str, VoltageSweepResult] = {}
    for kind, stage_count in rings:
        sweep = sweep_voltage(board, _builder(kind, stage_count), voltages_v, jobs=jobs, cache=cache)
        sweeps[sweep.ring_name] = sweep

    names = list(sweeps)
    rows: List[Tuple] = []
    for index, voltage in enumerate(voltages_v):
        row = [float(voltage)]
        for name in names:
            row.append(float(sweeps[name].normalized()[index]))
        rows.append(tuple(row))

    excursions = {name: sweeps[name].excursion() for name in names}
    linearities = {name: sweeps[name].linearity() for name in names}
    str96 = next(name for name in names if "STR 96" in name)
    str4 = next(name for name in names if "STR 4" in name)
    iro_names = [name for name in names if name.startswith("IRO")]
    return ExperimentResult(
        experiment_id="FIG8",
        title="Normalized frequencies for core supply 1.0-1.4 V (Fig. 8)",
        columns=tuple(["V core"] + [f"Fn {name}" for name in names]),
        rows=rows,
        paper_reference={
            "observation_1": "frequencies vary linearly with voltage",
            "observation_2": "the 96-stage STR exhibits the lowest voltage sensitivity",
            "observation_3": "the 4-stage STR matches the IRO sensitivity",
        },
        checks={
            "all_curves_linear": all(value > 0.999 for value in linearities.values()),
            "str96_least_sensitive": excursions[str96] == min(excursions.values()),
            "str4_matches_iro": abs(
                excursions[str4] - float(np.mean([excursions[n] for n in iro_names]))
            )
            < 0.05,
        },
        notes="Normalized to the frequency measured at the 1.2 V nominal point.",
    )
