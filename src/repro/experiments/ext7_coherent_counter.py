"""EXT7 — counter statistics of the coherent-sampling TRNG (extension).

EXT2 showed *whether* a manufactured ring pair lands inside the capture
band; this experiment runs the actual [7]-style generator on pairs that
did, and characterizes the counter population that carries the entropy:

* the counter mean tracks ``T_sampled / (2 dT)`` — so it *is* a detuning
  meter: process dispersion moves it around the family;
* the counter sigma must exceed ~1 count for the LSB to be random; it
  grows with the beat length, so the tight STR family sits comfortably
  while a strongly detuned (IRO-like) pair collapses to a deterministic
  counter;
* the LSB stream of a healthy pair passes the randomness battery.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.experiments.base import ExperimentResult
from repro.fpga.board import BoardBank
from repro.rings.iro import InverterRingOscillator
from repro.rings.str_ring import SelfTimedRing
from repro.stats.randomness import run_battery
from repro.trng.coherent import CoherentSamplingTrng


def run(
    bank: Optional[BoardBank] = None,
    board_count: int = 6,
    beat_count: int = 220,
    battery_bits: int = 1200,
    seed: int = 67,
) -> ExperimentResult:
    """Characterize counter populations across manufactured STR pairs."""
    bank = bank if bank is not None else BoardBank.manufacture(board_count=board_count, seed=seed)
    rings = [SelfTimedRing.on_board(board, 96) for board in bank]

    rows: List[Tuple] = []
    sigma_ok = []
    mean_errors = []
    pair_count = 0
    bits_pool: List[np.ndarray] = []
    for index in range(len(rings) - 1):
        ring_a, ring_b = rings[index], rings[index + 1]
        trng = CoherentSamplingTrng(ring_a, ring_b, max_relative_detuning=0.02)
        point = trng.design_point()
        if not point.is_within_capture_band:
            rows.append(
                (f"boards {index + 1}+{index + 2}", f"{point.relative_detuning:.3%}",
                 "-", "-", "-", "out of band")
            )
            continue
        pair_count += 1
        stats = trng.measured_count_statistics(beat_count=beat_count, seed=seed + index)
        sigma_ok.append(stats.sigma >= 1.0)
        if point.is_drift_dominated:
            # Below the jitter floor the beat fragments and the counter
            # mean stops tracking the detuning — a real lower bound of
            # the scheme, reported but not scored as tracking error.
            mean_errors.append(
                abs(stats.mean - point.expected_count) / point.expected_count
            )
        bits_pool.append(trng.generate(battery_bits, seed=seed + 100 + index))
        verdict = "entropic" if stats.sigma >= 1.0 else "too quiet"
        if not point.is_drift_dominated:
            verdict += ", noise-dominated beat"
        rows.append(
            (
                f"boards {index + 1}+{index + 2}",
                f"{point.relative_detuning:.3%}",
                round(point.expected_count, 1),
                round(stats.mean, 1),
                round(stats.sigma, 1),
                verdict,
            )
        )

    pooled = np.concatenate(bits_pool) if bits_pool else np.array([], dtype=int)
    battery = run_battery(pooled) if pooled.size >= 1000 else None

    # Contrast case: a pair detuned to the band edge has a short beat and
    # a near-deterministic counter.
    board = bank[0]
    wide = CoherentSamplingTrng(
        InverterRingOscillator.on_board(board, 5),
        # A deliberately offset second IRO: one extra LUT of delay is a
        # ~17 % detuning at this length - far outside any useful band.
        InverterRingOscillator.on_board(board, 6),
        max_relative_detuning=1.0,
    )
    wide_stats = wide.measured_count_statistics(beat_count=64, seed=seed)

    return ExperimentResult(
        experiment_id="EXT7",
        title="Coherent-sampling counter statistics across the STR family (extension)",
        columns=(
            "pair",
            "detuning",
            "expected count",
            "measured mean",
            "count sigma",
            "verdict",
        ),
        rows=rows,
        paper_reference={
            "ref_7": "Enhanced TRNG based on the coherent sampling",
            "paper_link": "STR process stability keeps every manufactured "
            "pair inside the capture band (Table II / EXT2)",
        },
        checks={
            "all_str_pairs_usable": pair_count == len(rings) - 1,
            "counter_tracks_detuning": bool(mean_errors) and max(mean_errors) < 0.35,
            "counters_entropic": all(sigma_ok),
            "pooled_lsb_passes_battery": battery is not None and battery.all_passed,
            "detuned_pair_counter_deterministic": wide_stats.sigma < 1.0,
        },
        notes=(
            f"{pair_count} adjacent-board STR 96C pairs; pooled "
            f"{pooled.size} LSB bits for the battery.  The contrast pair "
            f"(17 % detuned IROs) reads a counter sigma of "
            f"{wide_stats.sigma:.2f} counts — deterministic, no entropy."
        ),
    )
