"""FIG12 — STR period jitter vs number of stages (paper Fig. 12, Eq. 5).

Measures the period jitter of balanced STRs from 4 to 96 stages and
verifies the paper's central jitter result: the STR period jitter does
*not* accumulate with the ring length — it stays in a narrow band around
``sqrt(2) sigma_g`` (2 to 4 ps in the paper), because the Charlie effect
keeps re-centring the token spacing.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from repro.core.characterization import jitter_versus_length
from repro.core.jitter_model import str_period_jitter_ps
from repro.experiments.base import ExperimentResult
from repro.fpga.board import Board
from repro.stats.fitting import fit_constant, fit_power_law

#: Stage counts sampled along the paper's Fig. 12 x-axis.
FIG12_LENGTHS: Tuple[int, ...] = (4, 8, 16, 24, 32, 48, 64, 96)


def run(
    board: Optional[Board] = None,
    lengths: Sequence[int] = FIG12_LENGTHS,
    period_count: int = 2000,
    seed: int = 17,
    jobs: Optional[int] = 1,
    cache=None,
    backend: str = "batch",
) -> ExperimentResult:
    """Reproduce the Fig. 12 flat jitter-vs-length curve.

    Defaults to the vectorized batch backend, which splits every length
    into seed-derived replicas and advances them all in one wave-kernel
    call (statistically equivalent to the event path);
    ``backend="event"`` fans one grid task per ring length out over
    ``jobs`` processes (with ``cache`` reuse) instead.
    """
    board = board if board is not None else Board()
    results = jitter_versus_length(
        board,
        lengths,
        ring_family="str",
        method="population",
        period_count=period_count,
        seed=seed,
        jobs=jobs,
        cache=cache,
        backend=backend,
    )
    rows: List[Tuple] = []
    jitters = []
    sigma_g = board.calibration.constants.gate_jitter_sigma_ps
    eq5_value = str_period_jitter_ps(sigma_g)
    for result in results:
        jitters.append(result.sigma_period_ps)
        rows.append(
            (
                result.stage_count,
                result.frequency_mhz,
                result.sigma_period_ps,
                result.sigma_period_ps / eq5_value,
            )
        )
    constant_fit = fit_constant(jitters)
    power_fit = fit_power_law(list(lengths), jitters)
    return ExperimentResult(
        experiment_id="FIG12",
        title="Period jitter of an STR vs number of stages (Fig. 12)",
        columns=("stages L", "F [MHz]", "sigma_p [ps]", "sigma_p / (sqrt2 sigma_g)"),
        rows=rows,
        paper_reference={
            "law": "sigma_p independent of L, ~ sqrt(2) sigma_g (Eq. 5)",
            "band_ps": (2.0, 4.0),
            "sqrt2_sigma_g_ps": math.sqrt(2.0) * 2.0,
        },
        checks={
            "jitter_flat_in_length": constant_fit.is_flat,
            "no_accumulation_exponent": abs(power_fit.exponent) < 0.15,
            "within_paper_band": all(2.0 <= j <= 4.5 for j in jitters),
            "close_to_eq5": all(abs(j / eq5_value - 1.0) < 0.6 for j in jitters),
        },
        notes=(
            f"Mean sigma_p = {constant_fit.value:.2f} ps "
            f"(relative spread {constant_fit.relative_spread:.1%}, free "
            f"exponent {power_fit.exponent:+.3f}); Eq. 5 predicts "
            f"{eq5_value:.2f} ps.  The simulated values sit ~20% above "
            "Eq. 5 because neighbouring-stage noise partially leaks into "
            "the spacing before the Charlie regulation absorbs it."
        ),
    )
