"""ABL5 — placement-quality ablation (why the paper places by hand).

"Logic cells were placed manually (if possible in the same Altera LAB)
in order to reduce the interconnection delays."  This ablation measures
what that buys: the same 80-stage IRO placed three ways on a LAB grid —

* ``compact`` — the paper's hand placement: adjacent LABs, minimal
  wirelength;
* ``row`` — a single LAB row: longer straight-line hops;
* ``scatter`` — LABs picked at random over the grid: what an
  unconstrained automatic placement can degenerate to.

With distance-dependent routing, scattering slows the ring by tens of
percent and (since the per-LUT jitter is unchanged while the period
grows) *dilutes* the relative jitter — both directly measurable.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.experiments.base import ExperimentResult
from repro.fpga.floorplan import (
    LabGrid,
    PlacementStrategy,
    place_on_grid,
    routed_stage_delays,
)
from repro.rings.iro import InverterRingOscillator


def run(
    stage_count: int = 17,
    grid_columns: int = 8,
    grid_rows: int = 8,
    per_hop_distance_ps: float = 120.0,
    period_count: int = 1024,
    seed: int = 73,
) -> ExperimentResult:
    """Compare the three placement strategies on one IRO.

    A two-LAB ring (17 stages) makes routing a large delay share, so the
    placement quality shows as a decisive frequency difference; on very
    long rings the same absolute penalty dilutes into the LUT delay sum.
    """
    grid = LabGrid(columns=grid_columns, rows=grid_rows)
    rows: List[Tuple] = []
    metrics: Dict[str, Dict[str, float]] = {}
    for strategy in (
        PlacementStrategy.COMPACT,
        PlacementStrategy.ROW,
        PlacementStrategy.SCATTER,
    ):
        placement = place_on_grid(stage_count, grid, strategy=strategy, seed=seed)
        delays = routed_stage_delays(placement, per_hop_distance_ps=per_hop_distance_ps)
        ring = InverterRingOscillator(
            delays, jitter_sigmas_ps=2.0, name=f"IRO {strategy.value}"
        )
        result = ring.simulate(period_count, seed=seed)
        frequency = result.trace.mean_frequency_mhz()
        sigma = result.trace.period_jitter_ps()
        metrics[strategy.value] = {
            "wirelength": float(placement.total_wirelength()),
            "frequency": frequency,
            "sigma": sigma,
            "relative_jitter": sigma / result.trace.mean_period_ps(),
        }
        rows.append(
            (
                strategy.value,
                placement.lab_count,
                placement.total_wirelength(),
                frequency,
                sigma,
                f"{sigma / result.trace.mean_period_ps():.2e}",
            )
        )

    compact = metrics["compact"]
    scatter = metrics["scatter"]
    return ExperimentResult(
        experiment_id="ABL5",
        title="Ablation: placement strategy vs frequency and jitter",
        columns=(
            "strategy",
            "LABs",
            "wirelength",
            "F [MHz]",
            "sigma_p [ps]",
            "sigma_p / T",
        ),
        rows=rows,
        paper_reference={
            "method": "logic cells were placed manually (if possible in the "
            "same Altera LAB) in order to reduce the interconnection delays",
        },
        checks={
            "compact_has_minimal_wirelength": compact["wirelength"]
            == min(m["wirelength"] for m in metrics.values()),
            "scatter_slows_the_ring": scatter["frequency"] < 0.9 * compact["frequency"],
            "absolute_jitter_unchanged": abs(scatter["sigma"] - compact["sigma"])
            < 0.2 * compact["sigma"],
            "scatter_dilutes_relative_jitter": scatter["relative_jitter"]
            < compact["relative_jitter"],
        },
        notes=(
            "Absolute period jitter depends only on the LUT count (Eq. 4), "
            "so bad placement does not add randomness — it only slows the "
            "ring and dilutes sigma_p/T, i.e. *less* entropy per unit "
            "time.  Hand placement is an entropy-rate optimization, not "
            "just a frequency one."
        ),
    )
