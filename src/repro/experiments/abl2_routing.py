"""ABL2 — ablating the two-tier routing model (design-choice ablation).

The timing model distinguishes intra-LAB from inter-LAB hops.  The
ablation flattens that distinction (all hops at the intra-LAB delay) and
compares the predicted Table I frequencies: without the inter-LAB
penalty, every multi-LAB ring comes out fast by the missing routing
share, and the length-dependent frequency trend of the IRO family
(376 -> 73 -> 23 MHz with *slightly* more than 1/L scaling) is lost.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.experiments.base import ExperimentResult
from repro.fpga.board import Board
from repro.fpga.calibration import (
    TABLE1_TARGETS,
    CalibratedTiming,
    cyclone_iii_calibration,
    fit_confinement_from_table1,
)
from repro.fpga.device import TimingConstants
from repro.rings.iro import InverterRingOscillator
from repro.rings.str_ring import SelfTimedRing


def _flattened_calibration() -> CalibratedTiming:
    """The reference calibration with the inter-LAB penalty removed."""
    reference = cyclone_iii_calibration()
    constants = TimingConstants(
        lut_delay_ps=reference.constants.lut_delay_ps,
        intra_lab_route_ps=reference.constants.intra_lab_route_ps,
        inter_lab_route_ps=reference.constants.intra_lab_route_ps,  # ablated
        lab_capacity=reference.constants.lab_capacity,
        gate_jitter_sigma_ps=reference.constants.gate_jitter_sigma_ps,
        transistor_sensitivity=reference.constants.transistor_sensitivity,
        interconnect_sensitivity=reference.constants.interconnect_sensitivity,
    )
    # Keep the *reference* confinement (fitted with routing in place) so
    # the ablation isolates the routing term alone.
    return CalibratedTiming(
        constants=constants,
        confinement=reference.confinement,
        process=reference.process,
    )


def run(board: Optional[Board] = None, seed: int = 53) -> ExperimentResult:
    """Compare frequency predictions with and without inter-LAB routing."""
    full_board = board if board is not None else Board()
    flat_board = Board(calibration=_flattened_calibration())

    rows: List[Tuple] = []
    errors = {"full": {}, "flat": {}}
    for target in TABLE1_TARGETS:
        if target.kind == "iro":
            build = lambda b, L=target.stage_count: InverterRingOscillator.on_board(b, L)
        else:
            build = lambda b, L=target.stage_count: SelfTimedRing.on_board(b, L)
        label = f"{target.kind.upper()} {target.stage_count}C"
        full_f = build(full_board).predicted_frequency_mhz()
        flat_f = build(flat_board).predicted_frequency_mhz()
        errors["full"][label] = abs(full_f - target.nominal_frequency_mhz) / target.nominal_frequency_mhz
        errors["flat"][label] = abs(flat_f - target.nominal_frequency_mhz) / target.nominal_frequency_mhz
        rows.append(
            (
                label,
                target.nominal_frequency_mhz,
                full_f,
                flat_f,
                f"{errors['full'][label]:.2%}",
                f"{errors['flat'][label]:.2%}",
            )
        )

    multi_lab = [
        f"{t.kind.upper()} {t.stage_count}C" for t in TABLE1_TARGETS if t.stage_count > 16
    ]
    single_lab = [
        f"{t.kind.upper()} {t.stage_count}C" for t in TABLE1_TARGETS if t.stage_count <= 16
    ]
    return ExperimentResult(
        experiment_id="ABL2",
        title="Ablation: inter-LAB routing penalty vs Table I frequencies",
        columns=(
            "ring",
            "paper Fn",
            "full model",
            "flat routing",
            "full error",
            "flat error",
        ),
        rows=rows,
        paper_reference={
            "method": "logic cells were placed manually (if possible in the "
            "same Altera LAB) in order to reduce the interconnection delays",
        },
        checks={
            "full_model_within_1pct": max(errors["full"].values()) < 0.01,
            "flat_model_breaks_multi_lab_rings": all(
                errors["flat"][label] > 2.0 * max(errors["full"][label], 1e-6)
                for label in multi_lab
            ),
            "single_lab_rings_unaffected": all(
                abs(errors["flat"][label] - errors["full"][label]) < 1e-9
                for label in single_lab
            ),
        },
        notes=(
            "The flattened model keeps the calibrated confinement, so the "
            "remaining error isolates the inter-LAB routing share; rings "
            "inside one LAB are untouched by construction."
        ),
    )
