"""FIG11 — IRO period jitter vs number of stages (paper Fig. 11, Eq. 4).

Measures the period jitter of IROs from 3 to 80 stages, fits the
square-root accumulation law ``sigma_p = sqrt(2k) sigma_g`` and recovers
the single-LUT jitter ``sigma_g`` (the paper estimates ~2 ps).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.characterization import jitter_versus_length
from repro.core.jitter_model import gate_jitter_from_iro_period_jitter
from repro.experiments.base import ExperimentResult
from repro.fpga.board import Board
from repro.stats.fitting import fit_sqrt_accumulation

#: Stage counts sampled along the paper's Fig. 11 x-axis.
FIG11_LENGTHS: Tuple[int, ...] = (3, 5, 9, 15, 25, 40, 60, 80)


def run(
    board: Optional[Board] = None,
    lengths: Sequence[int] = FIG11_LENGTHS,
    period_count: int = 3000,
    seed: int = 13,
    jobs: Optional[int] = 1,
    cache=None,
    backend: str = "batch",
) -> ExperimentResult:
    """Reproduce the Fig. 11 jitter-vs-length curve and the sigma_g fit.

    Defaults to the vectorized batch backend, which advances every
    length at once and is bit-identical to the event engine for IROs;
    ``backend="event"`` fans one grid task per ring length out over
    ``jobs`` processes (with ``cache`` reuse) instead.
    """
    board = board if board is not None else Board()
    results = jitter_versus_length(
        board,
        lengths,
        ring_family="iro",
        method="population",
        period_count=period_count,
        seed=seed,
        jobs=jobs,
        cache=cache,
        backend=backend,
    )
    rows: List[Tuple] = []
    jitters = []
    for result in results:
        implied_gate_sigma = gate_jitter_from_iro_period_jitter(
            result.sigma_period_ps, result.stage_count
        )
        jitters.append(result.sigma_period_ps)
        rows.append(
            (
                result.stage_count,
                result.frequency_mhz,
                result.sigma_period_ps,
                implied_gate_sigma,
            )
        )
    fit = fit_sqrt_accumulation(list(lengths), jitters)
    device_sigma_g = board.calibration.constants.gate_jitter_sigma_ps
    return ExperimentResult(
        experiment_id="FIG11",
        title="Period jitter of an IRO vs number of stages (Fig. 11)",
        columns=("stages k", "F [MHz]", "sigma_p [ps]", "implied sigma_g [ps]"),
        rows=rows,
        paper_reference={
            "law": "sigma_p = sqrt(2 k) sigma_g (Eq. 4)",
            "sigma_g_ps": 2.0,
        },
        checks={
            "follows_sqrt_law": fit.follows_sqrt_law,
            "gate_sigma_near_2ps": abs(fit.gate_sigma_ps - device_sigma_g)
            < 0.25 * device_sigma_g,
            "jitter_grows_with_length": jitters[-1] > 2.0 * jitters[0],
        },
        notes=(
            f"Fitted sigma_g = {fit.gate_sigma_ps:.2f} ps "
            f"(free power-law exponent {fit.free_fit.exponent:.2f}, "
            f"R^2 = {fit.free_fit.r_squared:.3f}); paper: sigma_g ~= 2 ps."
        ),
    )
