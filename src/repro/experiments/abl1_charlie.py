"""ABL1 — ablating the Charlie effect (design-choice ablation).

The Charlie effect is the paper's central mechanism: it locks the
evenly-spaced mode and stops jitter accumulation in the STR.  This
ablation scales the calibrated Charlie magnitude down and watches both
properties degrade:

* at full magnitude the detuned ring (L = 32, NT = 10) locks and the
  period jitter stays near sqrt(2) sigma_g;
* as the magnitude shrinks the regulation margin collapses, the interval
  spread grows, and the period jitter inflates — with no Charlie effect
  the token spacing is a marginal random walk.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.charlie import CharlieDiagram, CharlieParameters
from repro.core.temporal_model import solve_steady_state
from repro.experiments.base import ExperimentResult
from repro.fpga.board import Board
from repro.rings.modes import classify_trace
from repro.rings.str_ring import SelfTimedRing


def run(
    board: Optional[Board] = None,
    stage_count: int = 32,
    token_count: int = 10,
    scales: Tuple[float, ...] = (1.0, 0.3, 0.1, 0.02),
    period_count: int = 512,
    seed: int = 47,
) -> ExperimentResult:
    """Scale the Charlie magnitude down and measure locking + jitter."""
    board = board if board is not None else Board()
    reference = SelfTimedRing.on_board(board, stage_count, token_count=token_count)
    base_params = reference.mean_diagram().parameters
    sigma_g = float(reference.jitter_sigmas_ps.mean())

    rows: List[Tuple] = []
    spreads = {}
    jitters = {}
    for scale in scales:
        diagram = CharlieDiagram(
            CharlieParameters.symmetric(
                base_params.static_delay_ps, scale * base_params.charlie_ps
            )
        )
        ring = SelfTimedRing(
            [diagram] * stage_count,
            token_count,
            jitter_sigmas_ps=sigma_g,
            name=f"STR x{scale}",
        )
        steady = solve_steady_state(diagram, stage_count, token_count)
        result = ring.simulate(period_count, seed=seed, warmup_periods=64)
        classification = classify_trace(result.trace)
        jitter = result.trace.period_jitter_ps()
        spreads[scale] = classification.coefficient_of_variation
        jitters[scale] = jitter
        rows.append(
            (
                scale,
                steady.regulation_margin,
                classification.mode.value,
                classification.coefficient_of_variation,
                jitter,
            )
        )

    full = max(scales)
    weakest = min(scales)
    return ExperimentResult(
        experiment_id="ABL1",
        title="Ablation: Charlie-effect magnitude vs locking and jitter",
        columns=(
            "Charlie scale",
            "regulation margin",
            "steady mode",
            "interval CV",
            "sigma_p [ps]",
        ),
        rows=rows,
        paper_reference={
            "mechanism": "the Charlie effect makes tokens push away from "
            "each other (Section II-D3) and regulates the spacing "
            "(Section IV-A)",
        },
        checks={
            "full_charlie_locks": spreads[full] < 0.05,
            "ablated_charlie_degrades_spacing": spreads[weakest] > 3.0 * spreads[full],
            "ablated_charlie_inflates_jitter": jitters[weakest] > 1.5 * jitters[full],
            "degradation_monotone": all(
                spreads[a] <= spreads[b] * 1.5
                for a, b in zip(sorted(scales, reverse=True), sorted(scales, reverse=True)[1:])
            ),
        },
        notes=(
            f"Base configuration L = {stage_count}, NT = {token_count} "
            f"(detuned, so locking genuinely depends on the Charlie "
            f"magnitude); sigma_g = {sigma_g:.1f} ps."
        ),
    )
