"""EXT10 — fault-injection campaign over the supervised runtime (extension).

The paper's robustness claims (C4/C5) promise that an STR keeps working
where an IRO degrades.  EXT1/EXT6 measured that degradation; this
campaign *exercises* it end to end: every fault in the library
(:data:`repro.faults.FAULT_KINDS`) is injected at a sweep of severities
into a supervised IRO-backed generator with an STR backup, and the
supervisor's structured event log is scored into a detection-latency /
recovery-outcome coverage matrix.

What the matrix shows, per fault kind:

* **stuck** — oscillation death is binary: detected at every severity
  (a stuck stage breaks the IRO's single event loop outright);
* **brownout** — the static sag alone barely moves Q (Fig. 8
  linearity: jitter scales with delay), so moderate severities sail
  under the health tests; at high severity the regulator's dropout
  ripple injection-locks the high-supply-weight IRO, the repetition
  test fires, and recovery *fails over to the STR backup* — whose
  Charlie-confined supply weight keeps it below the lock threshold.
  This row is claims C4/C5 operationalized;
* **ripple** — the deliberate injection-locking attack behaves like the
  brownout's dynamic component: lock (and detection) only past the
  IRO's lock boundary, and the STR shrugs it off;
* **temperature** — the ramp only upsets the oscillation when its
  plateau crosses the thermal upset threshold (full severity);
* **glitch** — sampler upsets bypass the ring, so ring robustness is
  irrelevant: detection scales with the forced-bit fraction and the
  shared-net variant can defeat failover, leaving degraded mode or a
  clean total-failure stop.

A separate no-backup oscillation-death run checks the hard guarantee:
TOTAL_FAILURE with zero bits emitted after the alarm.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.campaign import RingSpec
from repro.experiments.base import ExperimentResult
from repro.faults import FAULT_KINDS, FaultSchedule, ScheduledFault, standard_fault
from repro.fpga.board import Board
from repro.parallel.cache import ResultCache, fingerprint
from repro.parallel.executor import GridTask, run_grid
from repro.trng.supervisor import (
    RecoveryPolicy,
    SupervisedRunResult,
    SupervisedTrng,
    TrngState,
)

#: Recovery-outcome labels, from best to worst.
OUTCOME_ORDER: Tuple[str, ...] = (
    "no alarm",
    "retry",
    "restart",
    "failover",
    "degraded",
    "total failure",
)


def _outcome(result: SupervisedRunResult, onset_s: float) -> Tuple[str, str, int]:
    """Classify a supervised run into (outcome, latency cell, alarm count).

    The outcome is the *deepest* recovery rung the run reached (per
    :data:`OUTCOME_ORDER`), not the last event: a marginal fault can
    flicker between alarms and spurious recoveries, and the matrix
    should report how far down the ladder it pushed the supervisor.
    """
    alarms = [e for e in result.events.of_kind("alarm") if e.time_s >= onset_s]
    if not alarms:
        return "no alarm", "-", 0
    latency_ms = (alarms[0].time_s - onset_s) * 1.0e3
    depth = 0
    for event in result.events:
        if event.time_s < alarms[0].time_s:
            continue
        if event.kind == "recovered":
            label = event.detail.replace("mechanism=", "")
        elif event.kind == "failover":
            label = "failover"
        elif event.kind == "degraded_mode":
            label = "degraded"
        elif event.kind == "total_failure":
            label = "total failure"
        else:
            continue
        depth = max(depth, OUTCOME_ORDER.index(label))
    return OUTCOME_ORDER[depth], f"{latency_ms:.1f}", len(alarms)


def _cell_worker(task: GridTask) -> Dict[str, Any]:
    """Grid worker: one supervised run, reduced to its JSON-able verdict.

    Handles both the fault x severity cells and the no-backup
    oscillation-death guarantee run (``payload["backup"] is None``).
    """
    payload = task.payload
    backup = payload["backup"]
    scenario = FaultSchedule(
        [
            ScheduledFault(
                standard_fault(payload["kind"], payload["severity"]),
                start_s=payload["onset_s"],
            )
        ],
        name=payload["name"],
    )
    trng = SupervisedTrng(
        payload["primary"],
        board=payload["board"],
        policy=RecoveryPolicy(backup_specs=(backup,) if backup is not None else ()),
        block_bits=payload["block_bits"],
    )
    result = trng.run(payload["bit_budget"], scenario=scenario, seed=task.seed)
    outcome, latency, alarm_count = _outcome(result, payload["onset_s"])
    return {
        "outcome": outcome,
        "latency": latency,
        "alarm_count": alarm_count,
        "final_state": result.final_state.value,
        "bit_count": result.bit_count,
        "emitted_after_first_alarm": result.emitted_after_first_alarm,
    }


def run(
    board: Optional[Board] = None,
    severities: Sequence[float] = (0.25, 0.5, 0.75, 1.0),
    bit_budget: int = 10_240,
    block_bits: int = 512,
    onset_s: float = 0.25,
    seed: int = 101,
    jobs: Optional[int] = 1,
    cache: Optional[ResultCache] = None,
) -> ExperimentResult:
    """Sweep fault kind x severity through the supervised runtime.

    Each cell runs a fresh :class:`SupervisedTrng` on an IRO 5C primary
    with an STR 48C backup; the fault activates at ``onset_s`` (after
    startup qualification) and persists.  Detection latency is the time
    from fault onset to the first health alarm — the honest figure,
    since the supervisor only ever sees the health tests, never the
    fault itself.

    The cells are independent supervised runs with per-cell seeds, so
    the matrix fans out over ``jobs`` worker processes and caches per
    cell; results are identical for any job count.
    """
    board = board if board is not None else Board()
    primary = RingSpec("iro", 5)
    backup = RingSpec("str", 48)
    board_fp = fingerprint(board)

    def _task(kind: str, severity: float, cell_backup, name: str, cell_seed: int) -> GridTask:
        return GridTask(
            kind="ext10_cell",
            spec={
                "board": board_fp,
                "primary": primary.label,
                "backup": cell_backup.label if cell_backup is not None else None,
                "fault": kind,
                "severity": float(severity),
                "bit_budget": bit_budget,
                "block_bits": block_bits,
                "onset_s": onset_s,
            },
            seed=cell_seed,
            payload={
                "board": board,
                "primary": primary,
                "backup": cell_backup,
                "kind": kind,
                "severity": float(severity),
                "bit_budget": bit_budget,
                "block_bits": block_bits,
                "onset_s": onset_s,
                "name": name,
            },
        )

    tasks: List[GridTask] = []
    cell_keys: List[Tuple[str, float]] = []
    for kind_index, kind in enumerate(FAULT_KINDS):
        for severity_index, severity in enumerate(severities):
            tasks.append(
                _task(
                    kind,
                    severity,
                    backup,
                    f"{kind}@{severity:g}",
                    seed + 13 * kind_index + severity_index,
                )
            )
            cell_keys.append((kind, float(severity)))
    # The hard guarantee: oscillation death with no viable backup must
    # end in TOTAL_FAILURE having emitted nothing after the alarm.
    tasks.append(_task("stuck", 1.0, None, "stuck_no_backup", seed + 997))

    outcomes = run_grid(tasks, _cell_worker, jobs=jobs, cache=cache)
    dead = outcomes.pop()

    rows: List[Tuple] = []
    checks = {}
    detected_at_max = {}
    stuck_detected = []
    brownout_max_outcome = ""
    for (kind, severity), cell in zip(cell_keys, outcomes):
        detected = cell["outcome"] != "no alarm"
        rows.append(
            (
                kind,
                f"{severity:.2f}",
                "yes" if detected else "no",
                cell["latency"],
                cell["alarm_count"],
                cell["outcome"],
                cell["final_state"],
                cell["bit_count"],
            )
        )
        if severity == max(severities):
            detected_at_max[kind] = detected
            if kind == "brownout":
                brownout_max_outcome = cell["outcome"]
        if kind == "stuck":
            stuck_detected.append(detected)

    for kind in FAULT_KINDS:
        checks[f"{kind}_detected_at_max_severity"] = detected_at_max[kind]
    checks["stuck_detected_at_every_severity"] = all(stuck_detected)
    checks["brownout_max_fails_over_to_backup"] = brownout_max_outcome == "failover"
    checks["no_backup_stuck_is_total_failure"] = (
        dead["final_state"] == TrngState.TOTAL_FAILURE.value
    )
    checks["no_bits_after_total_failure_alarm"] = dead["emitted_after_first_alarm"] == 0

    return ExperimentResult(
        experiment_id="EXT10",
        title="Fault-injection campaign: detection latency and recovery coverage "
        "(extension)",
        columns=(
            "fault",
            "severity",
            "detected",
            "latency [ms]",
            "alarms",
            "deepest recovery",
            "final state",
            "bits emitted",
        ),
        rows=rows,
        paper_reference={
            "claim_C4": "the STR oscillation frequency remains inside a 1.3% "
            "band over the 0.9-1.3 V sweep where IROs move ~4x",
            "claim_C5": "STR period jitter is essentially independent of ring "
            "length — robustness argues for the STR as entropy source",
            "lineage": "online health supervision per SP 800-90B / AIS-31; "
            "the failover row is C4/C5 exercised end to end",
        },
        checks=checks,
        notes=(
            "Latency is fault onset to first health alarm; '-' marks faults "
            "the SP 800-90B tests cannot see at that severity (the source "
            "still delivers acceptable entropy there, e.g. a mild brownout "
            "moves period and jitter together per Fig. 8). The brownout and "
            "ripple rows reproduce the paper's asymmetry: the IRO primary "
            "injection-locks and the supervisor fails over to the STR "
            "backup, which stays below the lock threshold at every swept "
            "severity."
        ),
    )
