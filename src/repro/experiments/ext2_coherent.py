"""EXT2 — coherent-sampling feasibility across the family (extension).

The paper's final argument: STR robustness to process variability "can be
successfully used ... namely in TRNGs based on the coherent sampling [7],
where the designer needs to guarantee that the ring oscillator
frequencies will remain in a required interval for all devices of the
same family."

This extension quantifies that: a coherent-sampling TRNG needs its two
rings detuned by less than a capture band.  We manufacture many board
pairs, build the generator once from IRO pairs and once from STR pairs
*with one ring per board* (the worst case: the two halves of the design
land on different devices), and count how often the pair still falls
inside the band.
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Tuple

from repro.experiments.base import ExperimentResult
from repro.fpga.board import BoardBank
from repro.rings.iro import InverterRingOscillator
from repro.rings.str_ring import SelfTimedRing
from repro.trng.coherent import CoherentSamplingTrng


def run(
    bank: Optional[BoardBank] = None,
    board_count: int = 12,
    capture_band: float = 0.01,
    seed: int = 37,
) -> ExperimentResult:
    """Count capture-band survivors among cross-device ring pairs."""
    bank = bank if bank is not None else BoardBank.manufacture(board_count=board_count, seed=seed)
    rows: List[Tuple] = []
    in_band_fraction = {}
    worst_detuning = {}
    for kind, builder in (
        ("IRO 5C", lambda b: InverterRingOscillator.on_board(b, 5)),
        ("STR 96C", lambda b: SelfTimedRing.on_board(b, 96)),
    ):
        rings = [builder(board) for board in bank]
        pair_count = 0
        captured = 0
        max_detuning = 0.0
        for ring_a, ring_b in itertools.combinations(rings, 2):
            trng = CoherentSamplingTrng(ring_a, ring_b, max_relative_detuning=capture_band)
            point = trng.design_point()
            pair_count += 1
            max_detuning = max(max_detuning, point.relative_detuning)
            if point.is_within_capture_band:
                captured += 1
        fraction = captured / pair_count
        in_band_fraction[kind] = fraction
        worst_detuning[kind] = max_detuning
        rows.append((kind, pair_count, f"{fraction:.0%}", f"{max_detuning:.3%}"))

    return ExperimentResult(
        experiment_id="EXT2",
        title="Coherent-sampling capture band across the device family (extension)",
        columns=("ring family", "cross-device pairs", "within band", "worst detuning"),
        rows=rows,
        paper_reference={
            "claim": (
                "STR frequency stability across devices enables "
                "coherent-sampling TRNG designs"
            ),
        },
        checks={
            "str_always_in_band": in_band_fraction["STR 96C"] > 0.95,
            "iro_frequently_out_of_band": in_band_fraction["IRO 5C"] < 0.8,
            "str_detuning_much_smaller": worst_detuning["STR 96C"]
            < 0.5 * worst_detuning["IRO 5C"],
        },
        notes=(
            f"Capture band {capture_band:.1%}; detuning computed between "
            "nominal-corner frequencies of the same placement on two "
            "different manufactured devices."
        ),
    )
