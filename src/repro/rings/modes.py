"""Oscillation-mode detection: evenly-spaced vs burst (paper Fig. 5).

In the **evenly-spaced** mode the tokens propagate with constant spacing,
so the intervals between successive output toggles of any stage are all
equal (up to jitter).  In the **burst** mode the tokens travel as a
cluster: an observer sees a volley of quick toggles followed by a long
silence while the cluster loops around.  The interval sequence is
therefore the natural discriminator, and is also exactly what a scope on
the ring output would record.
"""

from __future__ import annotations

import dataclasses
import enum

import numpy as np

from repro.simulation.waveform import EdgeTrace


class OscillationMode(enum.Enum):
    """Steady-regime classification of an STR."""

    EVENLY_SPACED = "evenly_spaced"
    BURST = "burst"
    IRREGULAR = "irregular"


@dataclasses.dataclass(frozen=True)
class ModeClassification:
    """Classification with the evidence behind it.

    ``coefficient_of_variation`` is std/mean of the toggle intervals;
    ``gap_ratio`` is the largest interval over the median one.  An
    evenly-spaced ring has both near their minimum; a burst ring shows a
    large gap ratio (the silence while the cluster loops around).
    """

    mode: OscillationMode
    coefficient_of_variation: float
    gap_ratio: float
    interval_count: int


#: Intervals spread less than this (relative) => evenly spaced.
_EVEN_CV_THRESHOLD = 0.15
#: Largest/median interval above this => burst.
_BURST_GAP_THRESHOLD = 2.5


def classify_intervals(
    intervals_ps: np.ndarray,
    even_cv_threshold: float = _EVEN_CV_THRESHOLD,
    burst_gap_threshold: float = _BURST_GAP_THRESHOLD,
) -> ModeClassification:
    """Classify a sequence of toggle intervals.

    Parameters
    ----------
    intervals_ps:
        Inter-toggle intervals of one stage output (half periods).
    even_cv_threshold:
        Maximum coefficient of variation for the evenly-spaced verdict.
    burst_gap_threshold:
        Minimum max/median interval ratio for the burst verdict.
    """
    intervals = np.asarray(intervals_ps, dtype=float)
    if intervals.size < 4:
        raise ValueError(f"need at least 4 intervals to classify, got {intervals.size}")
    if np.any(intervals <= 0.0):
        raise ValueError("intervals must be positive")
    mean = float(np.mean(intervals))
    coefficient_of_variation = float(np.std(intervals) / mean)
    median = float(np.median(intervals))
    gap_ratio = float(np.max(intervals) / median)

    if gap_ratio >= burst_gap_threshold:
        mode = OscillationMode.BURST
    elif coefficient_of_variation <= even_cv_threshold:
        mode = OscillationMode.EVENLY_SPACED
    else:
        mode = OscillationMode.IRREGULAR
    return ModeClassification(
        mode=mode,
        coefficient_of_variation=coefficient_of_variation,
        gap_ratio=gap_ratio,
        interval_count=int(intervals.size),
    )


def classify_trace(
    trace: EdgeTrace,
    even_cv_threshold: float = _EVEN_CV_THRESHOLD,
    burst_gap_threshold: float = _BURST_GAP_THRESHOLD,
) -> ModeClassification:
    """Classify the steady regime from an output edge trace."""
    return classify_intervals(
        trace.half_periods_ps(),
        even_cv_threshold=even_cv_threshold,
        burst_gap_threshold=burst_gap_threshold,
    )


def burstiness_profile(trace: EdgeTrace, tokens_per_revolution: int) -> np.ndarray:
    """Mean interval per within-revolution slot, normalized to 1.

    Folding the interval sequence modulo the token count exposes the
    burst structure: an evenly-spaced ring gives a flat profile, a burst
    ring a strongly peaked one.  Useful for plotting Fig. 5-style
    comparisons.
    """
    if tokens_per_revolution < 1:
        raise ValueError("tokens_per_revolution must be positive")
    intervals = trace.half_periods_ps()
    usable = (intervals.size // tokens_per_revolution) * tokens_per_revolution
    if usable == 0:
        raise ValueError("trace too short for one full revolution")
    folded = intervals[:usable].reshape(-1, tokens_per_revolution)
    profile = folded.mean(axis=0)
    return profile / profile.mean()
