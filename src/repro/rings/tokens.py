"""Token and bubble algebra of self-timed rings (paper Section II-C).

The STR state is the vector of stage outputs ``C``.  Stage ``i`` holds a

* **token**  when ``C[i] != C[i-1]`` (indices cyclic),
* **bubble** when ``C[i] == C[i-1]``.

Walking once around the ring, the output value flips exactly once per
token, so *every* reachable state has an even token count — which is why
the paper requires ``NT`` to be a positive even number.

This module builds initial states with a prescribed token placement
(evenly spread for the steady-state experiments, clustered to provoke the
burst transient) and extracts token/bubble census information from any
state vector.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.core.temporal_model import validate_token_configuration


def _as_state(state: Sequence[int]) -> np.ndarray:
    array = np.asarray(state, dtype=int)
    if array.ndim != 1:
        raise ValueError("a ring state must be one-dimensional")
    if array.size < 3:
        raise ValueError(f"an STR needs at least 3 stages, got {array.size}")
    if not np.all((array == 0) | (array == 1)):
        raise ValueError("stage outputs must be 0 or 1")
    return array


def token_mask(state: Sequence[int]) -> np.ndarray:
    """Boolean mask: ``mask[i]`` is True when stage ``i`` holds a token."""
    array = _as_state(state)
    return array != np.roll(array, 1)


def count_tokens(state: Sequence[int]) -> int:
    """Number of tokens in the state (always even)."""
    return int(np.count_nonzero(token_mask(state)))


def count_bubbles(state: Sequence[int]) -> int:
    """Number of bubbles (``L - NT``)."""
    array = _as_state(state)
    return int(array.size) - count_tokens(array)


def token_positions(state: Sequence[int]) -> List[int]:
    """Indices of the token-holding stages."""
    return [int(index) for index in np.nonzero(token_mask(state))[0]]


def bubble_positions(state: Sequence[int]) -> List[int]:
    """Indices of the bubble-holding stages."""
    return [int(index) for index in np.nonzero(~token_mask(state))[0]]


def tokens_and_bubbles(state: Sequence[int]) -> Tuple[int, int]:
    """``(NT, NB)`` census of a state."""
    tokens = count_tokens(state)
    return tokens, len(_as_state(state)) - tokens


def state_from_token_positions(stage_count: int, positions: Sequence[int]) -> np.ndarray:
    """Build the output vector whose tokens sit exactly at ``positions``.

    The state is defined up to global inversion; this constructor fixes
    ``C[0]`` by convention (0 if stage 0 holds no token).
    """
    position_set = set(int(p) for p in positions)
    if len(position_set) != len(positions):
        raise ValueError("token positions must be distinct")
    if any(p < 0 or p >= stage_count for p in position_set):
        raise ValueError("token positions must lie in [0, stage_count)")
    if len(position_set) % 2 != 0:
        raise ValueError(f"token count must be even, got {len(position_set)}")
    validate_token_configuration(stage_count, len(position_set))

    state = np.zeros(stage_count, dtype=int)
    value = 0
    for stage in range(stage_count):
        if stage in position_set:
            value ^= 1
        state[stage] = value
    # Walking past the wrap-around flips an even number of times, so the
    # constructed state is automatically consistent at stage 0.
    return state


def spread_tokens_evenly(stage_count: int, token_count: int) -> np.ndarray:
    """Initial state with ``token_count`` tokens spread evenly around.

    This is the initialization the paper uses to start rings near the
    evenly-spaced operating point (tokens at positions
    ``floor(k * L / NT)``).
    """
    validate_token_configuration(stage_count, token_count)
    positions = [int(np.floor(k * stage_count / token_count)) for k in range(token_count)]
    if len(set(positions)) != token_count:
        raise ValueError(
            f"cannot spread {token_count} tokens over {stage_count} stages without collisions"
        )
    return state_from_token_positions(stage_count, positions)


def cluster_tokens(stage_count: int, token_count: int) -> np.ndarray:
    """Initial state with all tokens adjacent (a maximally bursty start).

    Used to probe mode convergence: a ring with a strong Charlie effect
    spreads this cluster back out, a drafting-dominated ring keeps it.
    """
    validate_token_configuration(stage_count, token_count)
    return state_from_token_positions(stage_count, list(range(token_count)))


def fireable_stages(state: Sequence[int]) -> List[int]:
    """Stages allowed to fire: token in ``i`` and bubble in ``i+1``.

    This is the paper's propagation condition
    ``C_i != C_{i-1}  and  C_i == C_{i+1}`` (Section II-C2).
    """
    array = _as_state(state)
    stage_count = array.size
    mask = token_mask(array)
    result = []
    for stage in range(stage_count):
        successor = (stage + 1) % stage_count
        if mask[stage] and not mask[successor]:
            result.append(stage)
    return result


def fire_stage(state: Sequence[int], stage: int) -> np.ndarray:
    """Apply one firing: stage output takes its forward input's value.

    Returns a new state; raises if the stage is not fireable.  Useful for
    untimed (logical) exploration of the token dynamics, e.g. the Fig. 4
    propagation demonstration.
    """
    array = _as_state(state).copy()
    stage_count = array.size
    predecessor = (stage - 1) % stage_count
    successor = (stage + 1) % stage_count
    has_token = array[stage] != array[predecessor]
    successor_bubble = array[successor] == array[stage]
    if not (has_token and successor_bubble):
        raise ValueError(f"stage {stage} is not fireable in state {array.tolist()}")
    array[stage] = array[predecessor]
    return array
