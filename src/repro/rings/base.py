"""Common abstractions shared by the IRO and STR models.

A ring oscillator in this library is always *resolved*: it owns the
per-stage timing produced by a board (or handed in directly by a test)
and can therefore answer timing questions without further context.  Every
ring offers the same three evaluation layers, from cheapest to most
faithful:

1. ``predicted_period_ps()`` — closed-form prediction from the analytical
   model (no randomness);
2. ``sample_periods(...)`` — vectorized draws from the analytical jitter
   model (Eqs. 4/5), for statistics-hungry consumers such as the TRNG
   layer;
3. ``simulate(...)`` — exact event-driven simulation, the ground truth
   the analytical layers are validated against.
"""

from __future__ import annotations

import abc
import dataclasses
from typing import Optional

import numpy as np

from repro.simulation.noise import DeterministicModulation, SeedLike
from repro.simulation.waveform import EdgeTrace
from repro.units import period_ps_to_mhz


@dataclasses.dataclass(frozen=True)
class SimulationResult:
    """Outcome of an event-driven ring simulation.

    ``trace`` has the warm-up prefix already removed; ``warmup_trace``
    retains it for transient studies (mode-locking experiments look at
    the warm-up, jitter experiments discard it).
    """

    trace: EdgeTrace
    warmup_trace: EdgeTrace
    events_processed: int

    @property
    def period_count(self) -> int:
        return max(0, (len(self.trace) - 1) // 2)


class RingOscillator(abc.ABC):
    """Base class for resolved ring oscillators."""

    def __init__(self, name: str) -> None:
        self.name = name

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @property
    @abc.abstractmethod
    def stage_count(self) -> int:
        """Number of ring stages ``L``."""

    # ------------------------------------------------------------------
    # analytical layer
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def predicted_period_ps(self) -> float:
        """Nominal oscillation period from the analytical model."""

    def predicted_frequency_mhz(self) -> float:
        """Nominal oscillation frequency from the analytical model."""
        return period_ps_to_mhz(self.predicted_period_ps())

    @abc.abstractmethod
    def predicted_period_jitter_ps(self) -> float:
        """Period jitter predicted by the paper's model (Eq. 4 or 5)."""

    # ------------------------------------------------------------------
    # fast statistical layer
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def sample_periods(
        self,
        count: int,
        seed: SeedLike = None,
        modulation: Optional[DeterministicModulation] = None,
    ) -> np.ndarray:
        """Draw ``count`` consecutive periods from the analytical model."""

    # ------------------------------------------------------------------
    # event-driven layer
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def simulate(
        self,
        period_count: int,
        seed: SeedLike = None,
        modulation: Optional[DeterministicModulation] = None,
        warmup_periods: int = 16,
        backend: str = "event",
    ) -> SimulationResult:
        """Run the simulation for ``period_count`` periods.

        ``backend="event"`` is the per-event reference engine;
        ``backend="batch"`` routes through the vectorized kernel in
        :mod:`repro.simulation.batch` where the configuration allows it.
        """

    # ------------------------------------------------------------------
    # convenience measurements
    # ------------------------------------------------------------------
    def measure_frequency_mhz(
        self,
        period_count: int = 128,
        seed: SeedLike = 0,
        modulation: Optional[DeterministicModulation] = None,
    ) -> float:
        """Mean frequency over an event-driven run."""
        result = self.simulate(period_count, seed=seed, modulation=modulation)
        return result.trace.mean_frequency_mhz()

    def measure_period_jitter_ps(
        self,
        period_count: int = 1024,
        seed: SeedLike = 0,
        modulation: Optional[DeterministicModulation] = None,
    ) -> float:
        """Period jitter (std of the period population) over a run."""
        result = self.simulate(period_count, seed=seed, modulation=modulation)
        return result.trace.period_jitter_ps()

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r}, stages={self.stage_count})"
