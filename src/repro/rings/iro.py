"""The inverter ring oscillator (paper Section II-A, Fig. 1).

Structure: stage 0 is an inverter, stages 1..L-1 are delay elements, all
closed into a ring.  A single event travels around; each stage propagates
the rising and the falling edge in two successive half-periods, so one
period is **two laps**: ``T = 2 * sum(D_i)``.

Jitter behaviour (Section IV): each of the ``2L`` crossings of a period
adds an independent Gaussian sample, so period jitter accumulates as
``sqrt(2L) * sigma_g`` (Eq. 4); a global deterministic modulation adds up
linearly over the same ``2L`` crossings, making the IRO the fragile one
of the pair.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.rings.base import RingOscillator, SimulationResult
from repro.simulation.engine import SimulationLimits, Simulator
from repro.simulation.events import Transition
from repro.simulation.noise import (
    ConstantModulation,
    DeterministicModulation,
    SeedLike,
    make_rng,
)
from repro.simulation.waveform import EdgeTrace
from repro.telemetry import default_registry, span


class InverterRingOscillator(RingOscillator):
    """A resolved IRO: per-stage delays and jitter magnitudes are known.

    Parameters
    ----------
    stage_delays_ps:
        Static propagation delay of each stage (LUT + outgoing hop).
    jitter_sigmas_ps:
        Gaussian jitter magnitude of each stage crossing; a scalar is
        broadcast to all stages.
    name:
        Report label, e.g. ``"IRO 5C"``.
    """

    def __init__(
        self,
        stage_delays_ps: Sequence[float],
        jitter_sigmas_ps=2.0,
        supply_weights=1.0,
        name: str = "IRO",
    ) -> None:
        super().__init__(name)
        delays = np.asarray(stage_delays_ps, dtype=float)
        if delays.ndim != 1 or delays.size < 1:
            raise ValueError("stage delays must be a non-empty 1-D sequence")
        if np.any(delays <= 0.0):
            raise ValueError("all stage delays must be positive")
        sigmas = np.broadcast_to(np.asarray(jitter_sigmas_ps, dtype=float), delays.shape).copy()
        if np.any(sigmas < 0.0):
            raise ValueError("jitter sigmas must be non-negative")
        weights = np.broadcast_to(np.asarray(supply_weights, dtype=float), delays.shape).copy()
        if np.any(weights < 0.0):
            raise ValueError("supply weights must be non-negative")
        self._delays = delays
        self._sigmas = sigmas
        self._supply_weights = weights

    # ------------------------------------------------------------------
    # construction on a board
    # ------------------------------------------------------------------
    @classmethod
    def on_board(cls, board, stage_count: int, first_lut: int = 0) -> "InverterRingOscillator":
        """Place and resolve an ``stage_count``-stage IRO on a board."""
        from repro.fpga.placement import place_ring

        placement = place_ring(
            stage_count,
            lab_capacity=board.calibration.constants.lab_capacity,
            first_lut=first_lut,
        )
        timings = board.resolve(placement, with_charlie=False)
        return cls(
            stage_delays_ps=[timing.static_delay_ps for timing in timings],
            jitter_sigmas_ps=[timing.jitter_sigma_ps for timing in timings],
            supply_weights=[timing.supply_weight for timing in timings],
            name=f"IRO {stage_count}C",
        )

    # ------------------------------------------------------------------
    # structure and analytical layer
    # ------------------------------------------------------------------
    @property
    def stage_count(self) -> int:
        return int(self._delays.size)

    @property
    def stage_delays_ps(self) -> np.ndarray:
        return self._delays.copy()

    @property
    def jitter_sigmas_ps(self) -> np.ndarray:
        return self._sigmas.copy()

    @property
    def supply_weights(self) -> np.ndarray:
        """Per-stage relative response to supply delay modulation."""
        return self._supply_weights.copy()

    @property
    def mean_supply_weight(self) -> float:
        """Delay-weighted mean supply response of the whole ring."""
        return float(np.sum(self._supply_weights * self._delays) / np.sum(self._delays))

    def predicted_period_ps(self) -> float:
        """``T = 2 * sum(D_i)`` — one event, two laps."""
        return float(2.0 * np.sum(self._delays))

    def predicted_period_jitter_ps(self) -> float:
        """Eq. 4 generalized to per-stage sigmas: ``sqrt(2 sum sigma_i^2)``."""
        return float(np.sqrt(2.0 * np.sum(self._sigmas**2)))

    # ------------------------------------------------------------------
    # fast statistical layer
    # ------------------------------------------------------------------
    def sample_periods(
        self,
        count: int,
        seed: SeedLike = None,
        modulation: Optional[DeterministicModulation] = None,
    ) -> np.ndarray:
        """Draw consecutive periods: ``T_j = T(t_j) + N(0, 2 sum sigma_i^2)``.

        The deterministic modulation is evaluated once per period at the
        period start (one period is short against any modulation the
        paper considers) and scales the whole nominal period — the linear
        accumulation of Section IV-B.
        """
        if count < 1:
            raise ValueError(f"count must be positive, got {count}")
        rng = make_rng(seed)
        nominal = self.predicted_period_ps()
        weight = self.mean_supply_weight
        noise = rng.normal(0.0, self.predicted_period_jitter_ps(), size=count)
        if modulation is None or isinstance(modulation, ConstantModulation):
            factor = 0.0 if modulation is None else modulation.factor(0.0)
            return nominal * (1.0 + weight * factor) + noise
        start_times = nominal * np.arange(count)
        factors = modulation.factor_array(start_times)
        return nominal * (1.0 + weight * factors) + noise

    # ------------------------------------------------------------------
    # event-driven layer
    # ------------------------------------------------------------------
    def simulate(
        self,
        period_count: int,
        seed: SeedLike = None,
        modulation: Optional[DeterministicModulation] = None,
        warmup_periods: int = 16,
        backend: str = "event",
    ) -> SimulationResult:
        """Exact run observed at the last ring stage.

        ``backend="batch"`` routes through the vectorized kernel in
        :mod:`repro.simulation.batch` — bit-identical to the event
        engine for any seed.  Time-varying modulations fall back to the
        event path (counted in ``repro.batch.fallbacks``).
        """
        if period_count < 1:
            raise ValueError(f"period_count must be positive, got {period_count}")
        if warmup_periods < 0:
            raise ValueError(f"warmup_periods must be non-negative, got {warmup_periods}")
        if backend not in ("event", "batch"):
            raise ValueError(f"backend must be 'event' or 'batch', got {backend!r}")
        if backend == "batch":
            from repro.simulation.batch import (
                IROBatchSpec,
                modulation_is_batchable,
                simulate_iro_batch,
            )

            if modulation_is_batchable(modulation, "iro"):
                needed_edges = 2 * (period_count + warmup_periods) + 1
                spec = IROBatchSpec.from_ring(self, edge_count=needed_edges, seed=seed)
                result = simulate_iro_batch([spec], modulation=modulation)
                full_trace = result.traces[0]
                return SimulationResult(
                    trace=full_trace.skip_edges(2 * warmup_periods),
                    warmup_trace=full_trace,
                    events_processed=result.events_processed,
                )
            default_registry().counter("repro.batch.fallbacks").inc()
        rng = make_rng(seed)
        with span("simulate", ring=self.name, periods=period_count) as tele:
            process = _IROProcess(self, modulation, rng)
            simulator = Simulator()
            output_node = self.stage_count - 1
            simulator.observe(output_node)
            # +1 edge so the last period is complete; x2 edges per period.
            needed_edges = 2 * (period_count + warmup_periods) + 1
            simulator.run(process, SimulationLimits(max_observed_edges=needed_edges))
            full_trace = EdgeTrace.from_edges(simulator.edges_for(output_node))
            tele.set("events", simulator.events_processed)
            registry = default_registry()
            registry.counter("repro.rings.iro.simulations").inc()
            registry.counter("repro.rings.iro.events").inc(simulator.events_processed)
            return SimulationResult(
                trace=full_trace.skip_edges(2 * warmup_periods),
                warmup_trace=full_trace,
                events_processed=simulator.events_processed,
            )


class _IROProcess:
    """Engine process: one event hops from stage to stage, inverting at 0."""

    def __init__(
        self,
        ring: InverterRingOscillator,
        modulation: Optional[DeterministicModulation],
        rng: np.random.Generator,
    ) -> None:
        self._delays: List[float] = [float(d) for d in ring.stage_delays_ps]
        self._sigmas: List[float] = [float(s) for s in ring.jitter_sigmas_ps]
        self._weights: List[float] = [float(w) for w in ring.supply_weights]
        self._stage_count = ring.stage_count
        self._modulation = modulation
        self._rng = rng

    def start(self, simulator: Simulator) -> None:
        # Kick the ring: stage 0's output rises at its own delay, as if
        # the event had just left the last stage at t = 0.
        self._schedule_hop(simulator, from_time_ps=0.0, to_stage=0, value=1)

    def handle(self, simulator: Simulator, transition: Transition) -> None:
        next_stage = (transition.node + 1) % self._stage_count
        value = transition.value
        if next_stage == 0:
            value = 1 - value  # the single inverting stage
        self._schedule_hop(simulator, transition.time_ps, next_stage, value)

    def _schedule_hop(self, simulator: Simulator, from_time_ps: float, to_stage: int, value: int) -> None:
        delay = self._delays[to_stage]
        if self._modulation is not None:
            delay *= 1.0 + self._weights[to_stage] * self._modulation.factor(from_time_ps)
        sigma = self._sigmas[to_stage]
        if sigma > 0.0:
            delay += self._rng.normal(0.0, sigma)
        if delay <= 0.0:
            delay = 1e-6  # causality guard; unreachable for realistic sigmas
        simulator.schedule(from_time_ps + delay, to_stage, value)
