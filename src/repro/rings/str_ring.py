"""The self-timed ring (paper Sections II-B/II-C, Fig. 2).

Each stage is a Muller C-element plus an inverter (one LUT in the FPGA
mapping).  Stage ``i`` fires — its output takes the forward input's value
— when it holds a *token* (``C_i != C_{i-1}``) and its successor holds a
*bubble* (``C_{i+1} == C_i``).  The firing instant follows the
Charlie-effect timing model::

    t_fire = (t_f + t_r) / 2 + charlie((t_f - t_r) / 2) + noise

where ``t_f``/``t_r`` are the instants of the last forward/reverse input
events (see :mod:`repro.core.charlie`).

The observed output period is the spacing between *successive tokens*
passing the output stage, which is what makes the STR's period jitter
independent of the ring length (Eq. 5) and its deterministic jitter
strongly attenuated — both properties emerge from this event-driven model
rather than being assumed.
"""

from __future__ import annotations

import dataclasses
import math
from typing import List, Optional, Sequence

import numpy as np

from repro.core.charlie import CharlieDiagram, CharlieParameters, DraftingEffect
from repro.core.temporal_model import (
    SteadyState,
    balanced_token_count,
    solve_steady_state,
    validate_token_configuration,
)
from repro.rings.base import RingOscillator, SimulationResult
from repro.rings.tokens import fireable_stages, spread_tokens_evenly
from repro.simulation.engine import SimulationLimits, Simulator, StopReason
from repro.simulation.events import Transition
from repro.simulation.noise import (
    ConstantModulation,
    DeterministicModulation,
    SeedLike,
    make_rng,
)
from repro.simulation.waveform import EdgeTrace
from repro.telemetry import default_registry, span

_SQRT2 = math.sqrt(2.0)


class SelfTimedRing(RingOscillator):
    """A resolved STR: per-stage Charlie diagrams and jitter are known.

    Parameters
    ----------
    diagrams:
        One :class:`CharlieDiagram` per stage.
    token_count:
        Number of tokens ``NT`` (``NB = L - NT``); must be even.
    jitter_sigmas_ps:
        Gaussian jitter magnitude per stage firing; scalar broadcasts.
    initial_state:
        Optional initial output vector; defaults to ``token_count``
        evenly spread tokens (the paper's initialization).
    name:
        Report label, e.g. ``"STR 96C"``.
    """

    def __init__(
        self,
        diagrams: Sequence[CharlieDiagram],
        token_count: int,
        jitter_sigmas_ps=2.0,
        supply_weights=1.0,
        initial_state: Optional[Sequence[int]] = None,
        name: str = "STR",
    ) -> None:
        super().__init__(name)
        self._diagrams = list(diagrams)
        stage_count = len(self._diagrams)
        validate_token_configuration(stage_count, token_count)
        self._token_count = token_count
        sigmas = np.broadcast_to(
            np.asarray(jitter_sigmas_ps, dtype=float), (stage_count,)
        ).copy()
        if np.any(sigmas < 0.0):
            raise ValueError("jitter sigmas must be non-negative")
        self._sigmas = sigmas
        weights = np.broadcast_to(
            np.asarray(supply_weights, dtype=float), (stage_count,)
        ).copy()
        if np.any(weights < 0.0):
            raise ValueError("supply weights must be non-negative")
        self._supply_weights = weights
        if initial_state is None:
            state = spread_tokens_evenly(stage_count, token_count)
        else:
            state = np.asarray(initial_state, dtype=int)
            from repro.rings.tokens import count_tokens

            if state.size != stage_count:
                raise ValueError("initial state length must equal the stage count")
            if count_tokens(state) != token_count:
                raise ValueError(
                    f"initial state holds {count_tokens(state)} tokens, expected {token_count}"
                )
        self._initial_state = state

    # ------------------------------------------------------------------
    # construction on a board
    # ------------------------------------------------------------------
    @classmethod
    def on_board(
        cls,
        board,
        stage_count: int,
        token_count: Optional[int] = None,
        first_lut: int = 0,
        drafting: DraftingEffect = DraftingEffect(),
        initial_state: Optional[Sequence[int]] = None,
    ) -> "SelfTimedRing":
        """Place and resolve an STR on a board.

        ``token_count`` defaults to the balanced ``NT = NB`` configuration
        the paper studies (Section III-A).
        """
        from repro.fpga.placement import place_ring

        if token_count is None:
            token_count = balanced_token_count(stage_count)
        placement = place_ring(
            stage_count,
            lab_capacity=board.calibration.constants.lab_capacity,
            first_lut=first_lut,
        )
        timings = board.resolve(placement, with_charlie=True)
        diagrams = [
            CharlieDiagram(
                CharlieParameters.symmetric(timing.static_delay_ps, timing.charlie_ps),
                drafting=drafting,
            )
            for timing in timings
        ]
        return cls(
            diagrams=diagrams,
            token_count=token_count,
            jitter_sigmas_ps=[timing.jitter_sigma_ps for timing in timings],
            supply_weights=[timing.supply_weight for timing in timings],
            initial_state=initial_state,
            name=f"STR {stage_count}C",
        )

    # ------------------------------------------------------------------
    # structure and analytical layer
    # ------------------------------------------------------------------
    @property
    def stage_count(self) -> int:
        return len(self._diagrams)

    @property
    def token_count(self) -> int:
        return self._token_count

    @property
    def bubble_count(self) -> int:
        return self.stage_count - self._token_count

    @property
    def diagrams(self) -> List[CharlieDiagram]:
        return list(self._diagrams)

    @property
    def jitter_sigmas_ps(self) -> np.ndarray:
        return self._sigmas.copy()

    @property
    def supply_weights(self) -> np.ndarray:
        """Per-stage relative response to supply delay modulation."""
        return self._supply_weights.copy()

    @property
    def mean_supply_weight(self) -> float:
        """Delay-weighted mean supply response of the whole ring."""
        effective = np.array(
            [d.parameters.static_delay_ps + d.parameters.charlie_ps for d in self._diagrams]
        )
        return float(np.sum(self._supply_weights * effective) / np.sum(effective))

    @property
    def initial_state(self) -> np.ndarray:
        return self._initial_state.copy()

    def mean_diagram(self) -> CharlieDiagram:
        """Ring-average Charlie diagram used by the analytical layer."""
        forward = float(np.mean([d.parameters.forward_delay_ps for d in self._diagrams]))
        reverse = float(np.mean([d.parameters.reverse_delay_ps for d in self._diagrams]))
        charlie = float(np.mean([d.parameters.charlie_ps for d in self._diagrams]))
        return CharlieDiagram(
            CharlieParameters(forward, reverse, charlie),
            drafting=self._diagrams[0].drafting,
        )

    def steady_state(self) -> SteadyState:
        """Solved evenly-spaced operating point (mean-stage model)."""
        return solve_steady_state(self.mean_diagram(), self.stage_count, self._token_count)

    def predicted_period_ps(self) -> float:
        """``T = 2 L D_hop / NT`` from the steady-state fixed point."""
        return self.steady_state().period_ps

    def predicted_period_jitter_ps(self) -> float:
        """Eq. 5: ``sqrt(2) * sigma_g`` with the ring-mean gate sigma."""
        return float(_SQRT2 * np.mean(self._sigmas))

    # ------------------------------------------------------------------
    # fast statistical layer
    # ------------------------------------------------------------------
    def sample_periods(
        self,
        count: int,
        seed: SeedLike = None,
        modulation: Optional[DeterministicModulation] = None,
    ) -> np.ndarray:
        """Draw periods from the analytical STR model.

        Gaussian part: iid ``N(T, 2 sigma_g^2)`` (Eq. 5).  Deterministic
        part: the period tracks the supply modulation through the ring's
        ``mean_supply_weight``, which for an STR is substantially below
        the IRO's because the Charlie-penalty share of the delay responds
        weakly to the supply (the attenuation of Section IV-B as it
        manifests in this model — see DESIGN.md).
        """
        if count < 1:
            raise ValueError(f"count must be positive, got {count}")
        rng = make_rng(seed)
        nominal = self.predicted_period_ps()
        weight = self.mean_supply_weight
        noise = rng.normal(0.0, self.predicted_period_jitter_ps(), size=count)
        if modulation is None or isinstance(modulation, ConstantModulation):
            factor = 0.0 if modulation is None else modulation.factor(0.0)
            return nominal * (1.0 + weight * factor) + noise
        boundaries = nominal * np.arange(1, count + 1)
        factors = modulation.factor_array(boundaries)
        return nominal * (1.0 + weight * factors) + noise

    # ------------------------------------------------------------------
    # event-driven layer
    # ------------------------------------------------------------------
    def simulate(
        self,
        period_count: int,
        seed: SeedLike = None,
        modulation: Optional[DeterministicModulation] = None,
        warmup_periods: int = 16,
        output_stage: int = 0,
        backend: str = "event",
    ) -> SimulationResult:
        """Exact run observed at ``output_stage``.

        ``backend="batch"`` routes through the vectorized wave kernel in
        :mod:`repro.simulation.batch` — bit-identical to the event
        engine for noiseless rings, statistically equivalent (same
        model, different draw order) with jitter.
        """
        if period_count < 1:
            raise ValueError(f"period_count must be positive, got {period_count}")
        if warmup_periods < 0:
            raise ValueError(f"warmup_periods must be non-negative, got {warmup_periods}")
        if not (0 <= output_stage < self.stage_count):
            raise ValueError(f"output stage {output_stage} outside ring of {self.stage_count}")
        if backend not in ("event", "batch"):
            raise ValueError(f"backend must be 'event' or 'batch', got {backend!r}")
        if backend == "batch":
            from repro.simulation.batch import STRBatchSpec, simulate_str_batch

            needed_edges = 2 * (period_count + warmup_periods) + 1
            spec = STRBatchSpec.from_ring(
                self, edge_count=needed_edges, seed=seed, output_stage=output_stage
            )
            result = simulate_str_batch([spec], modulation=modulation)
            full_trace = result.traces[0]
            return SimulationResult(
                trace=full_trace.skip_edges(2 * warmup_periods),
                warmup_trace=full_trace,
                events_processed=result.events_processed,
            )
        rng = make_rng(seed)
        with span("simulate", ring=self.name, periods=period_count) as tele:
            process = _STRProcess(self, modulation, rng)
            simulator = Simulator()
            simulator.observe(output_stage)
            needed_edges = 2 * (period_count + warmup_periods) + 1
            reason = simulator.run(process, SimulationLimits(max_observed_edges=needed_edges))
            full_trace = EdgeTrace.from_edges(simulator.edges_for(output_stage))
            tele.set("events", simulator.events_processed)
            registry = default_registry()
            registry.counter("repro.rings.str.simulations").inc()
            registry.counter("repro.rings.str.events").inc(simulator.events_processed)
            if reason is StopReason.QUEUE_EMPTY or len(full_trace) < needed_edges:
                registry.counter("repro.rings.str.deadlocks").inc()
                raise RuntimeError(
                    f"{self.name} deadlocked (engine reported {reason.value}) after "
                    f"{len(full_trace)} observed edges (wanted {needed_edges}); "
                    f"final state {''.join(str(v) for v in process.state_snapshot())}"
                )
            return SimulationResult(
                trace=full_trace.skip_edges(2 * warmup_periods),
                warmup_trace=full_trace,
                events_processed=simulator.events_processed,
            )


    def simulate_phases(
        self,
        period_count: int,
        seed: SeedLike = None,
        modulation: Optional[DeterministicModulation] = None,
        warmup_periods: int = 16,
    ) -> "PhaseSimulationResult":
        """Event-driven run observing *every* stage output.

        The L stage outputs of an STR are phase-shifted copies of the
        same oscillation — the multi-phase structure the authors'
        follow-up TRNG exploits.  Returns per-stage traces plus the
        merged stream of all stage toggles (the "virtual fast clock"
        whose tick spacing is ``T / (2L)`` when ``gcd(L, NT) = 1``).
        """
        if period_count < 1:
            raise ValueError(f"period_count must be positive, got {period_count}")
        if warmup_periods < 0:
            raise ValueError(f"warmup_periods must be non-negative, got {warmup_periods}")
        rng = make_rng(seed)
        with span(
            "simulate_phases", ring=self.name, periods=period_count
        ) as tele:
            process = _STRProcess(self, modulation, rng)
            simulator = Simulator()
            stage_count = self.stage_count
            for stage in range(stage_count):
                simulator.observe(stage)
            edges_per_stage = 2 * (period_count + warmup_periods) + 1
            simulator.run(
                process,
                SimulationLimits(max_observed_edges=stage_count * edges_per_stage),
            )
            tele.set("events", simulator.events_processed)
            registry = default_registry()
            registry.counter("repro.rings.str.simulations").inc()
            registry.counter("repro.rings.str.events").inc(simulator.events_processed)
        stage_traces = []
        for stage in range(stage_count):
            trace = EdgeTrace.from_edges(simulator.edges_for(stage))
            stage_traces.append(trace.skip_edges(min(2 * warmup_periods, max(len(trace) - 2, 0))))
        merged = np.sort(
            np.concatenate([trace.times_ps for trace in stage_traces])
        )
        # Different stages cover slightly different time windows (the run
        # stops mid-revolution); clip the merged comb to the overlap so
        # its spacing statistics are free of boundary artifacts.
        window_start = max(trace.times_ps[0] for trace in stage_traces if len(trace))
        window_end = min(trace.times_ps[-1] for trace in stage_traces if len(trace))
        merged = merged[(merged >= window_start) & (merged <= window_end)]
        return PhaseSimulationResult(
            stage_traces=stage_traces,
            merged_edge_times_ps=merged,
            events_processed=simulator.events_processed,
        )


@dataclasses.dataclass(frozen=True)
class PhaseSimulationResult:
    """All-stage observation of an STR run.

    ``merged_edge_times_ps`` interleaves the toggles of every stage in
    time order; for a gcd(L, NT) = 1 configuration they are evenly
    spaced by ``T / (2L)`` and form the multi-phase sampling comb.
    """

    stage_traces: List[EdgeTrace]
    merged_edge_times_ps: np.ndarray
    events_processed: int

    @property
    def stage_count(self) -> int:
        return len(self.stage_traces)

    def merged_spacings_ps(self) -> np.ndarray:
        """Intervals between consecutive toggles across all stages."""
        return np.diff(self.merged_edge_times_ps)


class _STRProcess:
    """Engine process implementing the token/bubble firing semantics."""

    def __init__(
        self,
        ring: SelfTimedRing,
        modulation: Optional[DeterministicModulation],
        rng: np.random.Generator,
    ) -> None:
        self._stage_count = ring.stage_count
        self._diagrams = ring.diagrams
        self._sigmas = [float(s) for s in ring.jitter_sigmas_ps]
        self._supply_weight_list = [float(w) for w in ring.supply_weights]
        self._modulation = modulation
        self._rng = rng
        self._state: List[int] = [int(v) for v in ring.initial_state]
        self._last_time: List[float] = [0.0] * self._stage_count
        self._pending: List[bool] = [False] * self._stage_count

    def state_snapshot(self) -> List[int]:
        """Current output vector (for deadlock diagnostics)."""
        return list(self._state)

    # -- firing predicate ------------------------------------------------
    def _fireable(self, stage: int) -> bool:
        state = self._state
        stage_count = self._stage_count
        predecessor = stage - 1 if stage > 0 else stage_count - 1
        successor = stage + 1 if stage < stage_count - 1 else 0
        return state[stage] != state[predecessor] and state[successor] == state[stage]

    # -- engine protocol ---------------------------------------------------
    def start(self, simulator: Simulator) -> None:
        for stage in fireable_stages(self._state):
            self._schedule_fire(simulator, stage)

    def handle(self, simulator: Simulator, transition: Transition) -> None:
        stage = transition.node
        self._pending[stage] = False
        self._state[stage] = transition.value
        self._last_time[stage] = transition.time_ps
        stage_count = self._stage_count
        for neighbor in (
            stage + 1 if stage < stage_count - 1 else 0,
            stage - 1 if stage > 0 else stage_count - 1,
        ):
            if not self._pending[neighbor] and self._fireable(neighbor):
                self._schedule_fire(simulator, neighbor)

    # -- timing ------------------------------------------------------------
    def _schedule_fire(self, simulator: Simulator, stage: int) -> None:
        stage_count = self._stage_count
        predecessor = stage - 1 if stage > 0 else stage_count - 1
        successor = stage + 1 if stage < stage_count - 1 else 0
        forward_time = self._last_time[predecessor]
        reverse_time = self._last_time[successor]
        diagram = self._diagrams[stage]

        mean_time = 0.5 * (forward_time + reverse_time)
        separation = 0.5 * (forward_time - reverse_time)
        delay = diagram.delay_ps(separation)
        if diagram.drafting.is_active:
            elapsed = mean_time + delay - self._last_time[stage]
            if elapsed > 0.0:
                delay -= diagram.drafting.reduction_ps(elapsed)
        if self._modulation is not None:
            delay *= 1.0 + self._supply_weight_list[stage] * self._modulation.factor(
                simulator.now_ps
            )
        sigma = self._sigmas[stage]
        if sigma > 0.0:
            delay += self._rng.normal(0.0, sigma)

        fire_time = mean_time + delay
        floor = max(forward_time, reverse_time, simulator.now_ps)
        if fire_time <= floor:
            fire_time = floor + 1e-6  # causality guard for extreme noise draws
        new_value = self._state[predecessor]
        self._pending[stage] = True
        simulator.schedule(fire_time, stage, new_value)
