"""Ring oscillator structures: the IRO and the STR.

Both oscillators expose the same two evaluation paths:

* ``simulate(...)`` — exact event-driven simulation on the
  :mod:`repro.simulation` engine, producing an
  :class:`~repro.simulation.waveform.EdgeTrace` of the output stage;
* ``sample_periods(...)`` — a fast vectorized sampler drawing periods
  from the validated analytical model, for statistics-hungry experiments.

Rings are instantiated *on a board* (:meth:`on_board`), which resolves
their placement and per-stage timing through the FPGA substrate.
"""

from repro.rings.base import RingOscillator, SimulationResult
from repro.rings.iro import InverterRingOscillator
from repro.rings.str_ring import SelfTimedRing
from repro.rings.tokens import (
    spread_tokens_evenly,
    cluster_tokens,
    count_tokens,
    token_positions,
    bubble_positions,
    tokens_and_bubbles,
)
from repro.rings.modes import OscillationMode, classify_intervals, classify_trace

__all__ = [
    "RingOscillator",
    "SimulationResult",
    "InverterRingOscillator",
    "SelfTimedRing",
    "spread_tokens_evenly",
    "cluster_tokens",
    "count_tokens",
    "token_positions",
    "bubble_positions",
    "tokens_and_bubbles",
    "OscillationMode",
    "classify_intervals",
    "classify_trace",
]
