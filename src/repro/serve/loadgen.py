"""Load generator for the entropy service (``repro serve-load``).

Drives N concurrent client connections against a running server, each
issuing sequential fetches of a fixed size, and reports latency
percentiles, throughput, typed-error counts and — critically —
*integrity violations*: any frame-sequence break, grant-size mismatch
or request-id confusion detected by :class:`~repro.serve.client`'s
verification layer.  The chaos SLO (``docs/serving.md``) requires the
violation count to be exactly zero even while the pool is being
actively faulted.
"""

from __future__ import annotations

import asyncio
import dataclasses
import time
from typing import Dict, List, Sequence, Tuple

from repro.serve.client import EntropyClient, IntegrityError, ServerError
from repro.serve.protocol import ProtocolError


def percentile(samples: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (``q`` in [0, 100]); 0.0 on no samples."""
    if not samples:
        return 0.0
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    ordered = sorted(samples)
    rank = max(1, int(round(q / 100.0 * len(ordered))))
    return ordered[min(rank, len(ordered)) - 1]


@dataclasses.dataclass(frozen=True)
class LoadReport:
    """Aggregate result of one load-generation run."""

    clients: int
    requests_ok: int
    requests_error: int
    bytes_received: int
    degraded_grants: int
    elapsed_s: float
    p50_latency_s: float
    p99_latency_s: float
    max_latency_s: float
    errors_by_code: Dict[str, int]
    integrity_violations: int
    client_failures: int  #: connections lost to transport errors

    @property
    def throughput_bytes_per_s(self) -> float:
        return self.bytes_received / self.elapsed_s if self.elapsed_s > 0 else 0.0

    def render(self) -> str:
        lines = [
            f"clients:              {self.clients}",
            f"requests ok:          {self.requests_ok}",
            f"requests error:       {self.requests_error}",
            f"bytes received:       {self.bytes_received}",
            f"degraded grants:      {self.degraded_grants}",
            f"elapsed:              {self.elapsed_s:.3f} s",
            f"throughput:           {self.throughput_bytes_per_s / 1024:.1f} KiB/s",
            f"latency p50:          {self.p50_latency_s * 1000:.2f} ms",
            f"latency p99:          {self.p99_latency_s * 1000:.2f} ms",
            f"latency max:          {self.max_latency_s * 1000:.2f} ms",
            f"integrity violations: {self.integrity_violations}",
            f"client failures:      {self.client_failures}",
        ]
        for name in sorted(self.errors_by_code):
            lines.append(f"  error {name}: {self.errors_by_code[name]}")
        return "\n".join(lines)


@dataclasses.dataclass
class _WorkerTally:
    ok: int = 0
    errors: int = 0
    bytes_received: int = 0
    degraded: int = 0
    latencies: List[float] = dataclasses.field(default_factory=list)
    errors_by_code: Dict[str, int] = dataclasses.field(default_factory=dict)
    integrity_violations: int = 0
    failed: bool = False


async def _load_worker(
    host: str,
    port: int,
    requests: int,
    request_bytes: int,
    deadline_ms: int,
    tally: _WorkerTally,
) -> None:
    try:
        client = await EntropyClient.connect(host, port)
    except (ConnectionError, OSError, ProtocolError):
        tally.failed = True
        return
    try:
        for _ in range(requests):
            started = time.monotonic()
            try:
                result = await client.fetch(request_bytes, deadline_ms=deadline_ms)
            except ServerError as error:
                tally.errors += 1
                name = error.code.name
                tally.errors_by_code[name] = tally.errors_by_code.get(name, 0) + 1
                continue
            except IntegrityError:
                tally.integrity_violations += 1
                tally.failed = True
                return
            except (
                ConnectionError,
                OSError,
                ProtocolError,
                asyncio.IncompleteReadError,
                asyncio.TimeoutError,
            ):
                tally.failed = True
                return
            tally.ok += 1
            tally.bytes_received += len(result.data)
            tally.latencies.append(time.monotonic() - started)
            if result.degraded:
                tally.degraded += 1
    finally:
        await client.close()


async def run_load(
    host: str,
    port: int,
    clients: int = 4,
    requests_per_client: int = 16,
    request_bytes: int = 1024,
    deadline_ms: int = 0,
) -> LoadReport:
    """Run ``clients`` concurrent connections and aggregate the tallies."""
    if clients < 1:
        raise ValueError("need at least one client")
    tallies = [_WorkerTally() for _ in range(clients)]
    started = time.monotonic()
    await asyncio.gather(
        *(
            _load_worker(host, port, requests_per_client, request_bytes, deadline_ms, tally)
            for tally in tallies
        )
    )
    elapsed = time.monotonic() - started
    latencies: List[float] = []
    errors_by_code: Dict[str, int] = {}
    ok = errors = received = degraded = violations = failures = 0
    for tally in tallies:
        ok += tally.ok
        errors += tally.errors
        received += tally.bytes_received
        degraded += tally.degraded
        violations += tally.integrity_violations
        failures += 1 if tally.failed else 0
        latencies.extend(tally.latencies)
        for name, count in tally.errors_by_code.items():
            errors_by_code[name] = errors_by_code.get(name, 0) + count
    return LoadReport(
        clients=clients,
        requests_ok=ok,
        requests_error=errors,
        bytes_received=received,
        degraded_grants=degraded,
        elapsed_s=elapsed,
        p50_latency_s=percentile(latencies, 50.0),
        p99_latency_s=percentile(latencies, 99.0),
        max_latency_s=max(latencies) if latencies else 0.0,
        errors_by_code=errors_by_code,
        integrity_violations=violations,
        client_failures=failures,
    )


def format_errors(report: LoadReport) -> Tuple[str, ...]:
    """Human-readable SLO breach list (empty tuple = load run clean)."""
    problems = []
    if report.integrity_violations:
        problems.append(f"{report.integrity_violations} integrity violation(s)")
    if report.client_failures:
        problems.append(f"{report.client_failures} client connection failure(s)")
    return tuple(problems)
