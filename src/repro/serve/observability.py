"""The exposition sidecar: scrape endpoint + periodic publisher task.

The :class:`EntropyServer` serves entropy on its main port; this
sidecar makes the same process *observable*:

* a tiny HTTP/1.0 responder on a second TCP port answers every ``GET``
  with the latest Prometheus text exposition
  (:func:`repro.telemetry.exposition.render_prometheus`) — enough for
  ``curl``, a real Prometheus scraper, or ``repro dash``;
* an asyncio task ticks a
  :class:`~repro.telemetry.exposition.MetricsPublisher` every
  ``interval_s``: registry snapshot → ring-buffer window → derived
  ``repro.obs.window.*`` gauges → optional JSONL replay record.

The sidecar deliberately speaks minimal HTTP (status line, three
headers, body, close) rather than pulling in an HTTP framework — the
no-new-dependencies rule is a feature here: the exposition format is
line-oriented text precisely so that a scrape endpoint can be this
small.
"""

from __future__ import annotations

import asyncio
import dataclasses
import time
from typing import Optional

from repro.telemetry import MetricsPublisher, get_logger

_LOGGER = get_logger("repro.serve.observability")

#: Limit on the scrape request head (request line + headers) we will
#: buffer before answering — a scraper has no business sending more.
_MAX_REQUEST_HEAD = 8192


@dataclasses.dataclass(frozen=True)
class ObservabilityConfig:
    """Sidecar tuning."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral (the bound port is on sidecar.port)
    interval_s: float = 1.0
    jsonl_path: Optional[str] = None

    def __post_init__(self) -> None:
        if self.interval_s <= 0.0:
            raise ValueError(f"publish interval must be positive, got {self.interval_s}")


class ObservabilitySidecar:
    """Scrape port + publisher loop for one serving process.

    The sidecar owns the schedule and the wall clock; the publisher
    stays clockless so drills and tests can tick it deterministically
    (see :class:`~repro.telemetry.exposition.MetricsPublisher`).
    """

    def __init__(
        self,
        config: ObservabilityConfig = ObservabilityConfig(),
        publisher: Optional[MetricsPublisher] = None,
    ) -> None:
        self._config = config
        self.publisher = (
            publisher
            if publisher is not None
            else MetricsPublisher(jsonl_path=config.jsonl_path)
        )
        self._server: Optional[asyncio.base_events.Server] = None
        self._publish_task: Optional[asyncio.Task] = None
        self.port: Optional[int] = None
        self.scrapes = 0

    @property
    def config(self) -> ObservabilityConfig:
        return self._config

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the scrape port and start the publish loop."""
        self._server = await asyncio.start_server(
            self._on_scrape,
            host=self._config.host,
            port=self._config.port,
            limit=_MAX_REQUEST_HEAD,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._publish_task = asyncio.get_running_loop().create_task(
            self._publish_loop()
        )
        _LOGGER.info(
            "observability sidecar listening",
            host=self._config.host,
            port=self.port,
            interval_s=self._config.interval_s,
        )

    async def stop(self) -> None:
        """Stop scraping and publishing; flush and close the JSONL log."""
        if self._publish_task is not None:
            self._publish_task.cancel()
            try:
                await self._publish_task
            except asyncio.CancelledError:
                pass
            self._publish_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # One final tick so the replay log carries the end-of-life state.
        self.publisher.tick(time.monotonic())
        self.publisher.close()

    # ------------------------------------------------------------------
    # the loops
    # ------------------------------------------------------------------
    async def _publish_loop(self) -> None:
        while True:
            self.publisher.tick(time.monotonic())
            await asyncio.sleep(self._config.interval_s)

    async def _on_scrape(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Answer one scrape: read the request head, send the exposition."""
        try:
            try:
                await asyncio.wait_for(
                    reader.readuntil(b"\r\n\r\n"), timeout=5.0
                )
            except (
                asyncio.TimeoutError,
                asyncio.IncompleteReadError,
                asyncio.LimitOverrunError,
            ):
                # A bare-TCP scraper (or a disconnect) still gets the
                # body — the exposition is the only thing we serve.
                pass
            body = self.publisher.render().encode("utf-8")
            writer.write(
                b"HTTP/1.0 200 OK\r\n"
                b"Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
                b"Content-Length: " + str(len(body)).encode("ascii") + b"\r\n"
                b"Connection: close\r\n"
                b"\r\n" + body
            )
            await writer.drain()
            self.scrapes += 1
        except (ConnectionError, OSError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
