"""Health-gated TRNG channel pool: failover, backoff, circuit breaker.

A :class:`TrngPool` owns several :class:`~repro.trng.supervisor.RingChannel`
bit sources and turns them into one stream of *health-gated* bytes:

* every sampled block passes through that channel's streaming SP 800-90B
  :class:`~repro.trng.health.HealthMonitor` **before** any of its bytes
  may be buffered — an alarmed block is discarded, always;
* a channel whose block alarms is **quarantined** and the pool fails
  over to the next healthy channel (round-robin);
* quarantined channels are **re-admitted** only after passing a probe
  (``probe_blocks`` clean blocks through a fresh monitor), scheduled by
  bounded exponential backoff with deterministic jitter
  (:class:`~repro.trng.supervisor.BackoffSchedule` — the same schedule
  the supervisor's retry rung uses);
* a channel that flaps (gets quarantined) more than ``max_flaps`` times
  trips a **circuit breaker** and is retired for good;
* when fewer than ``min_healthy`` channels remain the pool reports
  **brownout** — the server degrades to smaller grants, never to
  unhealthy bytes;
* with *no* serviceable channel, :meth:`TrngPool.get_bytes` raises
  :class:`PoolExhaustedError` and the pool clock ticks idle so windowed
  fault scenarios still expire.

Every transition lands in the same structured
:class:`~repro.trng.supervisor.EventLog` the supervisor uses (kinds
``quarantine``, ``readmit``, ``readmit_failed``, ``circuit_open``,
``fault_injected``, ``fault_cleared``), and a :class:`LedgerEntry` per
sampled block records the ground truth the chaos harness asserts on:
zero emitted blocks with alarms.

Faults are injected as :class:`~repro.faults.base.FaultScenario` values
against the pool's deterministic clock (bits sampled x reference
period), exactly like the supervised runtime — so a brownout/glitch
storm drives the pool the same way it drives EXT10, independent of
wall-clock scheduling.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.faults.base import NOMINAL_EFFECT, FaultEffect, FaultScenario
from repro.fpga.board import Board
from repro.simulation.noise import SeedLike, make_rng
from repro.telemetry import default_registry, emit_event
from repro.trng.health import HealthMonitor
from repro.trng.supervisor import BackoffSchedule, EventLog, RingChannel, SupervisorEvent


class PoolExhaustedError(RuntimeError):
    """No healthy channel could produce a gated block."""


class ChannelState(enum.Enum):
    """Lifecycle of one pool channel."""

    HEALTHY = "healthy"
    QUARANTINED = "quarantined"
    TRIPPED = "tripped"  # circuit breaker open: retired for good


@dataclasses.dataclass(frozen=True)
class PoolConfig:
    """Tuning of the pool's robustness machinery."""

    block_bits: int = 512
    claimed_min_entropy: float = 0.9
    window: int = 512
    q_target: float = 0.2
    probe_blocks: int = 2
    backoff: BackoffSchedule = BackoffSchedule(
        base_blocks=2, factor=2.0, max_blocks=64, jitter=0.25, seed=0
    )
    max_flaps: int = 8
    min_healthy: int = 2

    def __post_init__(self) -> None:
        if self.block_bits < 16:
            raise ValueError(f"block size must be at least 16 bits, got {self.block_bits}")
        if self.block_bits % 8 != 0:
            raise ValueError(f"block size must be a whole byte count, got {self.block_bits}")
        if self.probe_blocks < 1:
            raise ValueError(f"need at least one probe block, got {self.probe_blocks}")
        if self.max_flaps < 1:
            raise ValueError(f"max flaps must be positive, got {self.max_flaps}")
        if self.min_healthy < 1:
            raise ValueError(f"min healthy must be positive, got {self.min_healthy}")


@dataclasses.dataclass(frozen=True)
class LedgerEntry:
    """Ground truth for one sampled block (mirrors ``BlockRecord``).

    ``status`` is the channel's *physical* condition during the block —
    which the pool never consults for gating; gating is the health
    tests' job.  Keeping both lets the chaos harness assert the SLO
    honestly: an emitted entry must have ``alarm_count == 0``.
    """

    index: int
    time_s: float
    channel: str
    purpose: str  # "serve" | "probe"
    status: str
    alarm_count: int
    emitted: bool


class PoolChannel:
    """One pool slot: a ring channel plus its supervision state."""

    def __init__(
        self, name: str, spec: Any, board: Board, config: PoolConfig
    ) -> None:
        self.name = name
        self.ring = RingChannel(spec, board, q_target=config.q_target)
        self.monitor = HealthMonitor(
            claimed_min_entropy=config.claimed_min_entropy, window=config.window
        )
        self.state = ChannelState.HEALTHY
        self.flap_count = 0  # times quarantined over the channel's life
        self.backoff_attempt = 0  # consecutive failed re-admission probes
        self.eligible_at_s = 0.0  # pool time of the next re-admission probe
        self.block_period_s = config.block_bits * self.ring.reference_period_ps * 1e-12


class TrngPool:
    """A failover pool of health-gated ring channels (see module docstring).

    Parameters
    ----------
    specs:
        Ring specs (``RingSpec``-alikes); duplicates are fine — channel
        names are suffixed with their slot index.
    board:
        The board every channel resolves on; defaults to nominal.
    config:
        Robustness tuning (:class:`PoolConfig`).
    seed:
        Seed of the pool's single sampling RNG.
    """

    def __init__(
        self,
        specs: Sequence[Any],
        board: Optional[Board] = None,
        config: PoolConfig = PoolConfig(),
        seed: SeedLike = None,
    ) -> None:
        if not specs:
            raise ValueError("a pool needs at least one channel spec")
        self._board = board if board is not None else Board()
        self._config = config
        self._rng = make_rng(seed)
        self.channels: List[PoolChannel] = [
            PoolChannel(
                f"{getattr(spec, 'label', repr(spec))}#{index}",
                spec,
                self._board,
                config,
            )
            for index, spec in enumerate(specs)
        ]
        self.events = EventLog()
        self.ledger: List[LedgerEntry] = []
        self._buffer = bytearray()
        self._time_s = 0.0
        self._blocks_sampled = 0
        self._rr_offset = 0
        self._scenario: Optional[FaultScenario] = None
        self._scenario_epoch_s = 0.0
        self.bytes_emitted = 0
        self._idle_tick_s = max(channel.block_period_s for channel in self.channels)
        self._drift_monitors: Dict[str, Any] = {}
        self._drift_quarantine = False
        self._update_gauges()

    # ------------------------------------------------------------------
    # drift plane
    # ------------------------------------------------------------------
    def attach_drift_monitors(
        self,
        statistics: Optional[Sequence[Any]] = None,
        preemptive_quarantine: bool = True,
    ) -> None:
        """Run ``repro.obs`` drift charts over every channel's blocks.

        Each served block (alarmed or not) feeds the channel's
        :class:`~repro.obs.drift.ChannelDriftMonitor`; when
        ``preemptive_quarantine`` is set, a chart crossing quarantines
        the channel through the ordinary ladder *before* the AIS-31
        tests would have tripped — the block that raised the signal is
        discarded, never emitted.  Timestamps ride the pool's
        deterministic clock, so drift drills replay exactly.
        """
        from repro.obs.drift import DEFAULT_STATISTICS, ChannelDriftMonitor

        stats = DEFAULT_STATISTICS if statistics is None else tuple(statistics)
        self._drift_monitors = {
            channel.name: ChannelDriftMonitor(channel.name, stats)
            for channel in self.channels
        }
        self._drift_quarantine = bool(preemptive_quarantine)

    def drift_monitor(self, channel_name: str) -> Optional[Any]:
        """The attached monitor for ``channel_name`` (None when absent)."""
        return self._drift_monitors.get(channel_name)

    def _drift_observe(self, channel: "PoolChannel", bits: Any, alarm_count: int):
        monitor = self._drift_monitors.get(channel.name)
        if monitor is None:
            return []
        return monitor.observe_block(bits, self._time_s, alarm_count)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def config(self) -> PoolConfig:
        return self._config

    @property
    def time_s(self) -> float:
        """The pool's deterministic clock (advances with sampling)."""
        return self._time_s

    def channels_in(self, state: ChannelState) -> List[PoolChannel]:
        return [channel for channel in self.channels if channel.state is state]

    @property
    def healthy_count(self) -> int:
        return len(self.channels_in(ChannelState.HEALTHY))

    @property
    def brownout(self) -> bool:
        """Healthy capacity below the configured floor."""
        return self.healthy_count < self._config.min_healthy

    def unhealthy_emitted_blocks(self) -> int:
        """Emitted blocks that carried alarms — the SLO demands zero."""
        return sum(
            1 for entry in self.ledger if entry.emitted and entry.alarm_count > 0
        )

    def status(self) -> Dict[str, Any]:
        """JSON-able pool snapshot (served on STATUS frames)."""
        return {
            "channels": {
                channel.name: {
                    "state": channel.state.value,
                    "flaps": channel.flap_count,
                    "eligible_at_s": channel.eligible_at_s,
                }
                for channel in self.channels
            },
            "healthy": self.healthy_count,
            "quarantined": len(self.channels_in(ChannelState.QUARANTINED)),
            "tripped": len(self.channels_in(ChannelState.TRIPPED)),
            "brownout": self.brownout,
            "bytes_emitted": self.bytes_emitted,
            "blocks_sampled": self._blocks_sampled,
            "unhealthy_emitted_blocks": self.unhealthy_emitted_blocks(),
            "time_s": self._time_s,
            "fault_active": self._scenario is not None,
        }

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------
    def inject(self, scenario: FaultScenario) -> None:
        """Drive the pool with a fault scenario from the current pool time."""
        self._scenario = scenario
        self._scenario_epoch_s = self._time_s
        self._log("fault_injected", detail=scenario.describe())

    def clear_fault(self) -> None:
        if self._scenario is not None:
            self._log("fault_cleared", detail=self._scenario.describe())
        self._scenario = None

    def _effect(self) -> FaultEffect:
        if self._scenario is None:
            return NOMINAL_EFFECT
        return self._scenario.effect_at(self._time_s - self._scenario_epoch_s)

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _log(self, kind: str, detail: str = "", state_from: str = "", state_to: str = "") -> None:
        event = SupervisorEvent(
            kind=kind,
            time_s=self._time_s,
            bit_position=self._blocks_sampled * self._config.block_bits,
            state_from=state_from,
            state_to=state_to,
            detail=detail,
        )
        self.events.append(event)
        emit_event(f"serve.pool.{kind}", **event.to_dict())
        registry = default_registry()
        registry.counter("repro.serve.pool.events").inc()
        registry.counter(f"repro.serve.pool.{kind}").inc()

    _CHANNEL_STATE_CODES = {
        ChannelState.HEALTHY: 0.0,
        ChannelState.QUARANTINED: 1.0,
        ChannelState.TRIPPED: 2.0,
    }

    def _update_gauges(self) -> None:
        registry = default_registry()
        registry.gauge("repro.serve.pool.healthy").set(self.healthy_count)
        registry.gauge("repro.serve.pool.quarantined").set(
            len(self.channels_in(ChannelState.QUARANTINED))
        )
        registry.gauge("repro.serve.pool.tripped").set(
            len(self.channels_in(ChannelState.TRIPPED))
        )
        registry.gauge("repro.serve.pool.brownout").set(1.0 if self.brownout else 0.0)
        # Per-channel state/flap gauges: the dashboard's channel panel.
        # Codes: 0 healthy, 1 quarantined, 2 tripped (circuit open).
        for channel in self.channels:
            prefix = f"repro.serve.pool.channel.{channel.name}"
            registry.gauge(f"{prefix}.state").set(
                self._CHANNEL_STATE_CODES[channel.state]
            )
            registry.gauge(f"{prefix}.flaps").set(channel.flap_count)

    def _record(
        self, channel: PoolChannel, purpose: str, status: str, alarms: int, emitted: bool
    ) -> None:
        self.ledger.append(
            LedgerEntry(
                index=len(self.ledger),
                time_s=self._time_s,
                channel=channel.name,
                purpose=purpose,
                status=status,
                alarm_count=alarms,
                emitted=emitted,
            )
        )

    def _sample(self, channel: PoolChannel) -> tuple:
        """Sample one block from ``channel`` under the active effect."""
        effect = self._effect()
        apply_upsets = (not effect.upset_local) or channel is self.channels[0]
        bits, status = channel.ring.sample_block(
            self._config.block_bits, self._rng, effect, apply_upsets=apply_upsets
        )
        self._time_s += channel.block_period_s
        self._blocks_sampled += 1
        return bits, status

    # ------------------------------------------------------------------
    # quarantine / re-admission / circuit breaker
    # ------------------------------------------------------------------
    def _quarantine(self, channel: PoolChannel, reason: str) -> None:
        state_from = channel.state.value
        channel.flap_count += 1
        channel.monitor.reset()
        drift = self._drift_monitors.get(channel.name)
        if drift is not None:
            drift.reset()
        if channel.flap_count > self._config.max_flaps:
            channel.state = ChannelState.TRIPPED
            self._log(
                "circuit_open",
                detail=f"channel={channel.name} flaps={channel.flap_count} "
                f"max={self._config.max_flaps}",
                state_from=state_from,
                state_to=ChannelState.TRIPPED.value,
            )
        else:
            channel.state = ChannelState.QUARANTINED
            channel.backoff_attempt = 0
            wait_blocks = self._config.backoff.blocks(0)
            channel.eligible_at_s = self._time_s + wait_blocks * channel.block_period_s
            self._log(
                "quarantine",
                detail=f"channel={channel.name} reason={reason} "
                f"flap={channel.flap_count} wait_blocks={wait_blocks}",
                state_from=state_from,
                state_to=ChannelState.QUARANTINED.value,
            )
        self._update_gauges()

    def _probe(self, channel: PoolChannel) -> bool:
        """Health-check ``probe_blocks`` fresh blocks; bits are discarded."""
        monitor = HealthMonitor(
            claimed_min_entropy=self._config.claimed_min_entropy,
            window=self._config.window,
        )
        healthy = True
        for _ in range(self._config.probe_blocks):
            bits, status = self._sample(channel)
            alarms = monitor.ingest(bits)
            self._record(channel, "probe", status, len(alarms), False)
            if alarms:
                healthy = False
        return healthy

    def _try_readmit(self) -> None:
        """Probe every quarantined channel whose backoff has expired."""
        for channel in self.channels:
            if channel.state is not ChannelState.QUARANTINED:
                continue
            if self._time_s < channel.eligible_at_s:
                continue
            if self._probe(channel):
                channel.state = ChannelState.HEALTHY
                channel.backoff_attempt = 0
                channel.monitor.reset()
                self._log(
                    "readmit",
                    detail=f"channel={channel.name} flap={channel.flap_count}",
                    state_from=ChannelState.QUARANTINED.value,
                    state_to=ChannelState.HEALTHY.value,
                )
            else:
                channel.backoff_attempt += 1
                wait_blocks = self._config.backoff.blocks(channel.backoff_attempt)
                channel.eligible_at_s = (
                    self._time_s + wait_blocks * channel.block_period_s
                )
                self._log(
                    "readmit_failed",
                    detail=f"channel={channel.name} "
                    f"attempt={channel.backoff_attempt} wait_blocks={wait_blocks}",
                    state_from=ChannelState.QUARANTINED.value,
                    state_to=ChannelState.QUARANTINED.value,
                )
        self._update_gauges()

    # ------------------------------------------------------------------
    # production
    # ------------------------------------------------------------------
    def produce_block(self) -> Optional[np.ndarray]:
        """One health-gated block, or ``None`` when the pool is exhausted.

        Walks the healthy channels round-robin; a channel whose block
        alarms is quarantined on the spot and the walk continues.  On
        full exhaustion the pool clock ticks idle (so windowed fault
        scenarios expire even with nothing to sample) and re-admission
        is re-attempted on the next call.
        """
        self._try_readmit()
        healthy = self.channels_in(ChannelState.HEALTHY)
        for step in range(len(healthy)):
            channel = healthy[(self._rr_offset + step) % len(healthy)]
            bits, status = self._sample(channel)
            alarms = channel.monitor.ingest(bits)
            signals = self._drift_observe(channel, bits, len(alarms))
            if alarms:
                self._record(channel, "serve", status, len(alarms), False)
                tests = ",".join(sorted({alarm.test_name for alarm in alarms}))
                self._quarantine(channel, reason=f"tests={tests} status={status}")
                default_registry().counter("repro.serve.pool.alarms").inc(len(alarms))
                continue
            if signals and self._drift_quarantine:
                # Pre-emptive quarantine: the charts flagged a drift the
                # health tests have not (yet) tripped on.  Discard the
                # block — a drifting channel's bytes are not worth the
                # doubt — and walk on to the next healthy channel.
                self._record(channel, "serve", status, 0, False)
                reasons = ",".join(
                    sorted({f"{s.statistic}/{s.detector}" for s in signals})
                )
                self._quarantine(channel, reason=f"drift:{reasons}")
                default_registry().counter(
                    "repro.serve.pool.drift_quarantines"
                ).inc()
                continue
            self._record(channel, "serve", status, 0, True)
            self._rr_offset = (self._rr_offset + step + 1) % max(len(healthy), 1)
            default_registry().counter("repro.serve.pool.blocks_emitted").inc()
            return bits
        # Exhausted: no healthy channel survived this walk.
        self._time_s += self._idle_tick_s
        default_registry().counter("repro.serve.pool.exhausted").inc()
        return None

    def get_bytes(self, count: int) -> bytes:
        """Return ``count`` health-gated bytes, producing blocks as needed.

        Raises :class:`PoolExhaustedError` when no healthy channel is
        available; bytes already gated stay buffered for the next call.
        """
        if count < 1:
            raise ValueError(f"byte count must be positive, got {count}")
        while len(self._buffer) < count:
            block = self.produce_block()
            if block is None:
                raise PoolExhaustedError(
                    f"no healthy channel (healthy=0, "
                    f"quarantined={len(self.channels_in(ChannelState.QUARANTINED))}, "
                    f"tripped={len(self.channels_in(ChannelState.TRIPPED))})"
                )
            self._buffer.extend(np.packbits(block.astype(np.uint8)).tobytes())
        out = bytes(self._buffer[:count])
        del self._buffer[:count]
        self.bytes_emitted += count
        default_registry().counter("repro.serve.pool.bytes_emitted").inc(count)
        return out
