"""Length-prefixed framed wire protocol for the entropy service.

Every message is one *frame*: a fixed 16-byte header followed by a
length-prefixed payload::

    0      1      2          4            8        12       16
    +------+------+----------+------------+--------+--------+----
    | ver  | type |  flags   | request_id |  seq   | length | payload...
    | u8   | u8   |  u16     |  u32       |  u32   |  u32   |
    +------+------+----------+------------+--------+--------+----

All integers are big-endian.  ``seq`` is a per-connection,
per-direction counter starting at zero and incremented by one for every
frame a side sends; the receiver verifies it, so a lost, duplicated or
reordered frame is detected immediately (:class:`SequenceError`) rather
than silently corrupting the byte stream.  ``request_id`` echoes the
client's id on every server frame belonging to that request.

Frame types (:class:`FrameType`):

==========  =========  ====================================================
type        direction  payload
==========  =========  ====================================================
HELLO       S -> C     JSON server info (name, version, block_bits, limits)
REQUEST     C -> S     ``!IQ`` — byte count (u32), deadline in ms (u64, 0 =
                       server default)
DATA        S -> C     raw random bytes; flags: ``FLAG_DEGRADED`` (granted
                       under brownout), ``FLAG_FINAL`` (last frame of the
                       request)
ERROR       S -> C     JSON ``{code, name, message}`` — a *typed* error
                       terminating one request (:class:`ErrorCode`)
STATUS      C -> S     empty — asks for a status report
STATS       S -> C     JSON pool/server status snapshot
BYE         both       empty — clean connection shutdown
==========  =========  ====================================================

The payload length is bounded by :data:`MAX_PAYLOAD`; an oversized
header is rejected before any allocation (:class:`FrameTooLargeError`).
See ``docs/serving.md`` for the full specification.
"""

from __future__ import annotations

import asyncio
import dataclasses
import enum
import json
import struct
from typing import Any, Dict, Tuple

#: Wire protocol version; bumped on any incompatible change.
PROTOCOL_VERSION = 1

#: Hard bound on a single frame's payload size (1 MiB).
MAX_PAYLOAD = 1 << 20

_HEADER = struct.Struct("!BBHIII")
_REQUEST = struct.Struct("!IQ")

#: DATA flag: this grant was issued in brownout (degraded) mode.
FLAG_DEGRADED = 0x1
#: DATA flag: last frame of the request — the grant is complete.
FLAG_FINAL = 0x2


class FrameType(enum.IntEnum):
    """Frame type tags (see module docstring for the full table)."""

    HELLO = 1
    REQUEST = 2
    DATA = 3
    ERROR = 4
    STATUS = 5
    STATS = 6
    BYE = 7


class ErrorCode(enum.IntEnum):
    """Typed error codes carried by ERROR frames."""

    BAD_REQUEST = 1  # malformed or out-of-bounds request
    TIMEOUT = 2  # the request's deadline expired
    BACKPRESSURE = 3  # the client's pending-request queue is full
    POOL_EXHAUSTED = 4  # no healthy channel could serve within patience
    DRAINING = 5  # the server is shutting down; request rejected
    INTERNAL = 6  # unexpected server-side failure


class ProtocolError(RuntimeError):
    """A frame violated the wire protocol."""


class FrameTooLargeError(ProtocolError):
    """A frame announced a payload above :data:`MAX_PAYLOAD`."""


class SequenceError(ProtocolError):
    """A received frame broke the per-connection sequence contract."""


@dataclasses.dataclass(frozen=True)
class Frame:
    """One decoded protocol frame."""

    frame_type: int
    payload: bytes = b""
    flags: int = 0
    request_id: int = 0
    seq: int = 0


def encode_frame(frame: Frame) -> bytes:
    """Serialize a frame (header + payload) to wire bytes."""
    if len(frame.payload) > MAX_PAYLOAD:
        raise FrameTooLargeError(
            f"payload of {len(frame.payload)} bytes exceeds the "
            f"{MAX_PAYLOAD}-byte frame bound"
        )
    header = _HEADER.pack(
        PROTOCOL_VERSION,
        int(frame.frame_type),
        frame.flags,
        frame.request_id,
        frame.seq,
        len(frame.payload),
    )
    return header + frame.payload


async def read_frame(reader: asyncio.StreamReader) -> Frame:
    """Read exactly one frame; raises ``IncompleteReadError`` at EOF."""
    header = await reader.readexactly(_HEADER.size)
    version, frame_type, flags, request_id, seq, length = _HEADER.unpack(header)
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version mismatch: got {version}, want {PROTOCOL_VERSION}"
        )
    if length > MAX_PAYLOAD:
        raise FrameTooLargeError(
            f"incoming frame announces {length} bytes, bound is {MAX_PAYLOAD}"
        )
    payload = await reader.readexactly(length) if length else b""
    return Frame(
        frame_type=frame_type,
        payload=payload,
        flags=flags,
        request_id=request_id,
        seq=seq,
    )


class FrameStream:
    """One end of a framed connection with sequence bookkeeping.

    Wraps an asyncio ``(reader, writer)`` pair; stamps outgoing frames
    with the next send sequence number and verifies incoming frames
    against the next expected receive number, raising
    :class:`SequenceError` on any gap, duplicate or reordering.
    """

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._next_send = 0
        self._next_recv = 0

    @property
    def writer(self) -> asyncio.StreamWriter:
        return self._writer

    def send(
        self,
        frame_type: int,
        payload: bytes = b"",
        flags: int = 0,
        request_id: int = 0,
    ) -> Frame:
        """Queue one frame on the transport (call :meth:`drain` to flush)."""
        frame = Frame(
            frame_type=frame_type,
            payload=payload,
            flags=flags,
            request_id=request_id,
            seq=self._next_send,
        )
        self._writer.write(encode_frame(frame))
        self._next_send += 1
        return frame

    async def drain(self) -> None:
        await self._writer.drain()

    async def recv(self) -> Frame:
        """Receive the next frame, enforcing sequence continuity."""
        frame = await read_frame(self._reader)
        if frame.seq != self._next_recv:
            raise SequenceError(
                f"expected frame seq {self._next_recv}, got {frame.seq} "
                f"(type {frame.frame_type}) — a frame was lost, duplicated "
                "or reordered"
            )
        self._next_recv += 1
        return frame

    def close(self) -> None:
        self._writer.close()

    async def wait_closed(self) -> None:
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass


# ----------------------------------------------------------------------
# payload helpers
# ----------------------------------------------------------------------
def encode_request(byte_count: int, deadline_ms: int = 0) -> bytes:
    """REQUEST payload: byte count (u32) + deadline in ms (u64, 0 = default)."""
    if byte_count < 1:
        raise ValueError(f"byte count must be positive, got {byte_count}")
    if deadline_ms < 0:
        raise ValueError(f"deadline must be non-negative, got {deadline_ms}")
    return _REQUEST.pack(byte_count, deadline_ms)


def decode_request(payload: bytes) -> Tuple[int, int]:
    """Inverse of :func:`encode_request`; raises :class:`ProtocolError`."""
    try:
        byte_count, deadline_ms = _REQUEST.unpack(payload)
    except struct.error as error:
        raise ProtocolError(f"malformed REQUEST payload: {error}") from None
    return int(byte_count), int(deadline_ms)


def encode_json(obj: Dict[str, Any]) -> bytes:
    return json.dumps(obj, sort_keys=True, separators=(",", ":")).encode("utf-8")


def decode_json(payload: bytes) -> Dict[str, Any]:
    try:
        decoded = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as error:
        raise ProtocolError(f"malformed JSON payload: {error}") from None
    if not isinstance(decoded, dict):
        raise ProtocolError("JSON payload must be an object")
    return decoded


def encode_error(code: ErrorCode, message: str) -> bytes:
    """ERROR payload: ``{code, name, message}``."""
    return encode_json({"code": int(code), "name": code.name, "message": message})


def decode_error(payload: bytes) -> Tuple[ErrorCode, str]:
    """Inverse of :func:`encode_error`."""
    body = decode_json(payload)
    try:
        code = ErrorCode(int(body["code"]))
    except (KeyError, ValueError) as error:
        raise ProtocolError(f"malformed ERROR payload: {error}") from None
    return code, str(body.get("message", ""))
