"""Chaos harness: fault-injected load against a live entropy server.

``repro serve-chaos`` (and the tier-1 SLO test in
``tests/serve/test_chaos_slo.py``) runs this end-to-end drill entirely
in-process:

1. build the reference pool — three IRO channels and two STR channels —
   and an :class:`~repro.serve.server.EntropyServer` on an ephemeral
   port;
2. warm up with clean traffic;
3. inject the default chaos scenario: a **persistent brownout** at a
   severity that injection-locks the high-supply-weight IRO channels
   (the paper's C4/C5 asymmetry — the STRs ride it out) plus a
   **windowed shared-net glitch burst** that also alarms the STRs while
   it lasts, forcing quarantine/re-admission flaps on the survivors;
4. drive 8 concurrent load-generator clients through the storm;
5. SIGTERM-style drain and collect the verdict.

The SLO (``docs/serving.md``) asserted by :class:`ChaosReport.slo_ok`:

* **zero unhealthy bytes** — no emitted ledger block carries an alarm;
* **≥ 2 channels drained** — the storm really did cost capacity;
* **zero integrity violations** — no lost/duplicated/short frames;
* **p99 latency of successful requests under the documented bound**;
* **clean drain** — the server shut down inside its drain budget.
"""

from __future__ import annotations

import asyncio
import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.campaign import RingSpec
from repro.faults.base import FaultSchedule, ScheduledFault
from repro.faults.library import GlitchBurstFault, VoltageBrownoutFault
from repro.serve.loadgen import LoadReport, run_load
from repro.serve.pool import PoolConfig, TrngPool
from repro.serve.server import EntropyServer, ServerConfig
from repro.telemetry import get_logger, span

_LOGGER = get_logger("repro.serve.chaos")

#: Documented p99 latency bound for successful requests under chaos.
DEFAULT_P99_BOUND_S = 2.0

#: The reference chaos pool: three brownout-vulnerable IROs in front of
#: two brownout-tolerant STRs (the paper's recommended fallback).
DEFAULT_POOL_SPECS: Tuple[RingSpec, ...] = (
    RingSpec("iro", 5),
    RingSpec("iro", 7),
    RingSpec("iro", 9),
    RingSpec("str", 48),
    RingSpec("str", 96),
)


def default_chaos_scenario(
    brownout_severity: float = 0.95,
    glitch_severity: float = 0.9,
    glitch_start_s: float = 0.5,
    glitch_stop_s: float = 2.5,
) -> FaultSchedule:
    """The standard storm: persistent brownout + windowed shared glitch.

    The brownout never lifts — at severity 0.95 every IRO channel's
    ``mean_supply_weight`` (≈ 0.97) crosses the injection-lock threshold
    while the STRs (≈ 0.78) stay below it, so the IROs freeze for the
    whole run and only the STRs can be re-admitted.  The glitch burst is
    a shared-net fault (``local=False``): during its window it forces
    sampled bits toward zero on *every* channel, alarming the STRs too
    and exercising quarantine → backoff → probed re-admission on the
    survivors.  Times are on the **pool clock** relative to injection.
    """
    brownout = VoltageBrownoutFault(brownout_severity)
    glitch = GlitchBurstFault(
        glitch_severity, burst_period_s=0.5, burst_duty=0.6, local=False
    )
    return FaultSchedule(
        [
            ScheduledFault(brownout, start_s=0.0, stop_s=None),
            ScheduledFault(glitch, start_s=glitch_start_s, stop_s=glitch_stop_s),
        ],
        name="serve_chaos",
    )


@dataclasses.dataclass(frozen=True)
class ChaosReport:
    """Verdict of one chaos run (see module docstring for the SLO)."""

    warmup: LoadReport
    storm: LoadReport
    drained_channels: Tuple[str, ...]  #: channels quarantined/tripped at least once
    unhealthy_emitted_blocks: int
    pool_events: Dict[str, int]  #: event kind -> count
    p99_bound_s: float
    drained_cleanly: bool
    min_drained: int = 2

    @property
    def failures(self) -> Tuple[str, ...]:
        """Human-readable SLO breaches (empty tuple = SLO met)."""
        problems: List[str] = []
        if self.unhealthy_emitted_blocks:
            problems.append(
                f"{self.unhealthy_emitted_blocks} emitted block(s) carried alarms"
            )
        if len(self.drained_channels) < self.min_drained:
            problems.append(
                f"only {len(self.drained_channels)} channel(s) drained, "
                f"need >= {self.min_drained} for a meaningful storm"
            )
        violations = self.warmup.integrity_violations + self.storm.integrity_violations
        if violations:
            problems.append(f"{violations} frame integrity violation(s)")
        failures = self.warmup.client_failures + self.storm.client_failures
        if failures:
            problems.append(f"{failures} client connection failure(s)")
        if self.storm.requests_ok == 0:
            problems.append("no request succeeded during the storm")
        if self.storm.p99_latency_s > self.p99_bound_s:
            problems.append(
                f"storm p99 {self.storm.p99_latency_s:.3f}s exceeds the "
                f"{self.p99_bound_s:g}s bound"
            )
        if not self.drained_cleanly:
            problems.append("server failed to drain inside its budget")
        return tuple(problems)

    @property
    def slo_ok(self) -> bool:
        return not self.failures

    def render(self) -> str:
        lines = [
            "chaos SLO: " + ("PASS" if self.slo_ok else "FAIL"),
            f"drained channels:     {', '.join(self.drained_channels) or '(none)'}",
            f"unhealthy emitted:    {self.unhealthy_emitted_blocks} block(s)",
            f"clean drain:          {'yes' if self.drained_cleanly else 'NO'}",
            "",
            "pool events:",
        ]
        for kind in sorted(self.pool_events):
            lines.append(f"  {kind}: {self.pool_events[kind]}")
        lines += ["", "warmup load:"]
        lines += ["  " + line for line in self.warmup.render().splitlines()]
        lines += ["", "storm load:"]
        lines += ["  " + line for line in self.storm.render().splitlines()]
        if not self.slo_ok:
            lines += ["", "SLO breaches:"]
            lines += [f"  - {problem}" for problem in self.failures]
        return "\n".join(lines)


async def run_chaos(
    clients: int = 8,
    requests_per_client: int = 6,
    request_bytes: int = 1024,
    seed: int = 1234,
    scenario: Optional[FaultSchedule] = None,
    pool_specs: Sequence[RingSpec] = DEFAULT_POOL_SPECS,
    p99_bound_s: float = DEFAULT_P99_BOUND_S,
    min_drained: int = 2,
) -> ChaosReport:
    """Run the full chaos drill in-process and return the verdict."""
    # min_healthy = 3 puts the pool into brownout once the three IRO
    # channels are locked out, so the storm phase exercises degraded
    # grants while the STRs keep every byte health-gated.
    pool = TrngPool(
        pool_specs,
        config=PoolConfig(min_healthy=3),
        seed=seed,
    )
    server = EntropyServer(pool, ServerConfig())
    # The drill phases land on the trace timeline as a span tree
    # (chaos_drill > warmup/storm/drain) so ``repro trace summarize``
    # rolls a recorded drill up into a phase-timing report.
    with span(
        "chaos_drill",
        clients=clients,
        requests_per_client=requests_per_client,
        request_bytes=request_bytes,
    ) as drill:
        await server.start()
        assert server.port is not None
        host = server.config.host
        try:
            _LOGGER.info("chaos warmup", clients=2)
            with span("warmup", clients=2):
                warmup = await run_load(
                    host,
                    server.port,
                    clients=2,
                    requests_per_client=2,
                    request_bytes=request_bytes,
                )
            pool.inject(scenario if scenario is not None else default_chaos_scenario())
            _LOGGER.info("chaos storm", clients=clients)
            with span("storm", clients=clients):
                storm = await run_load(
                    host,
                    server.port,
                    clients=clients,
                    requests_per_client=requests_per_client,
                    request_bytes=request_bytes,
                )
        finally:
            with span("drain"):
                server.request_shutdown()
                try:
                    await asyncio.wait_for(
                        server.wait_closed(),
                        timeout=server.config.drain_timeout_s + 2.0,
                    )
                    drained_cleanly = True
                except asyncio.TimeoutError:
                    drained_cleanly = False
        drill.set("drained_cleanly", drained_cleanly)
    drained = tuple(
        channel.name for channel in pool.channels if channel.flap_count > 0
    )
    events: Dict[str, int] = {}
    for event in pool.events:
        events[event.kind] = events.get(event.kind, 0) + 1
    report = ChaosReport(
        warmup=warmup,
        storm=storm,
        drained_channels=drained,
        unhealthy_emitted_blocks=pool.unhealthy_emitted_blocks(),
        pool_events=events,
        p99_bound_s=p99_bound_s,
        drained_cleanly=drained_cleanly,
        min_drained=min_drained,
    )
    _LOGGER.info(
        "chaos verdict",
        slo_ok=report.slo_ok,
        drained=len(drained),
        unhealthy=report.unhealthy_emitted_blocks,
    )
    return report
