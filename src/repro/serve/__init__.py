"""Entropy-as-a-service runtime: fault-tolerant async TRNG pool server.

The rest of the library proves that the paper's ring TRNGs *can* be
healthy; this package keeps them healthy **in production**: an asyncio
daemon (``repro serve``) owns a pool of supervised ring channels and
streams health-gated random bytes to concurrent clients over a
length-prefixed framed protocol.

* :mod:`repro.serve.protocol` — the wire format: framed messages with
  per-connection sequence numbers (loss/duplication detection), typed
  error frames, and a binary request payload;
* :mod:`repro.serve.pool` — the robustness core: round-robin over
  health-gated :class:`~repro.trng.supervisor.RingChannel`\\ s, alarm →
  quarantine → probed re-admission with exponential backoff + jitter,
  and a circuit breaker that retires a flapping channel for good;
* :mod:`repro.serve.server` — per-client backpressure (bounded request
  queues, slow-reader shedding), request deadlines, global brownout
  mode (smaller grants — never unhealthy bytes), graceful SIGTERM
  drain;
* :mod:`repro.serve.client` — the asyncio client with frame-integrity
  verification;
* :mod:`repro.serve.loadgen` — the ``repro serve-load`` load generator
  with p50/p99 latency reporting;
* :mod:`repro.serve.chaos` — the fault-injection harness driving
  :mod:`repro.faults` scenarios against a live pool to prove the SLO
  (``repro serve-chaos``).

Protocol spec, failure-mode table, SLO definitions and the runbook live
in ``docs/serving.md``.
"""

from repro.serve.chaos import ChaosReport, default_chaos_scenario, run_chaos
from repro.serve.client import EntropyClient, FetchResult, IntegrityError, ServerError
from repro.serve.loadgen import LoadReport, percentile, run_load
from repro.serve.pool import (
    ChannelState,
    LedgerEntry,
    PoolChannel,
    PoolConfig,
    PoolExhaustedError,
    TrngPool,
)
from repro.serve.protocol import (
    FLAG_DEGRADED,
    FLAG_FINAL,
    MAX_PAYLOAD,
    PROTOCOL_VERSION,
    ErrorCode,
    Frame,
    FrameStream,
    FrameTooLargeError,
    FrameType,
    ProtocolError,
    SequenceError,
    decode_error,
    decode_json,
    decode_request,
    encode_error,
    encode_frame,
    encode_json,
    encode_request,
    read_frame,
)
from repro.serve.server import EntropyServer, ServerConfig

__all__ = [
    "FLAG_DEGRADED",
    "FLAG_FINAL",
    "MAX_PAYLOAD",
    "PROTOCOL_VERSION",
    "ChannelState",
    "ChaosReport",
    "EntropyClient",
    "EntropyServer",
    "ErrorCode",
    "FetchResult",
    "Frame",
    "FrameStream",
    "FrameTooLargeError",
    "FrameType",
    "IntegrityError",
    "LedgerEntry",
    "LoadReport",
    "PoolChannel",
    "PoolConfig",
    "PoolExhaustedError",
    "ProtocolError",
    "SequenceError",
    "ServerConfig",
    "ServerError",
    "TrngPool",
    "decode_error",
    "decode_json",
    "decode_request",
    "default_chaos_scenario",
    "encode_error",
    "encode_frame",
    "encode_json",
    "encode_request",
    "percentile",
    "read_frame",
    "run_chaos",
    "run_load",
]
