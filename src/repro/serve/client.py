"""Asyncio client for the entropy service with integrity verification.

:class:`EntropyClient` speaks the :mod:`repro.serve.protocol` wire
format and *verifies* every response: sequence continuity (inherited
from :class:`~repro.serve.protocol.FrameStream`), request-id echo,
grant completeness (total delivered bytes must equal the request, the
last frame must carry ``FLAG_FINAL`` and only the last frame may), and
payload bounds.  Any violation raises :class:`IntegrityError` — the
load generator counts these, and the chaos SLO demands the count stays
at zero.
"""

from __future__ import annotations

import asyncio
import dataclasses
from typing import Any, Dict, Optional

from repro.serve.protocol import (
    FLAG_DEGRADED,
    FLAG_FINAL,
    ErrorCode,
    FrameStream,
    FrameType,
    ProtocolError,
    decode_error,
    decode_json,
    encode_request,
)


class IntegrityError(ProtocolError):
    """The server's response stream violated the protocol contract."""


class ServerError(RuntimeError):
    """The server answered a request with a typed ERROR frame."""

    def __init__(self, code: ErrorCode, message: str) -> None:
        super().__init__(f"{code.name}: {message}")
        self.code = code
        self.message = message


@dataclasses.dataclass(frozen=True)
class FetchResult:
    """One completed entropy grant."""

    data: bytes
    degraded: bool  #: any frame of the grant carried FLAG_DEGRADED
    frames: int


class EntropyClient:
    """One connection to an :class:`~repro.serve.server.EntropyServer`."""

    def __init__(self, stream: FrameStream, hello: Dict[str, Any]) -> None:
        self._stream = stream
        self._hello = hello
        self._next_request_id = 1
        self._closed = False

    @classmethod
    async def connect(cls, host: str, port: int) -> "EntropyClient":
        """Open a connection and consume the server HELLO."""
        reader, writer = await asyncio.open_connection(host, port)
        stream = FrameStream(reader, writer)
        frame = await stream.recv()
        if frame.frame_type != FrameType.HELLO:
            raise IntegrityError(
                f"expected HELLO as the first frame, got type {frame.frame_type}"
            )
        return cls(stream, decode_json(frame.payload))

    @property
    def hello(self) -> Dict[str, Any]:
        return dict(self._hello)

    def _claim_request_id(self) -> int:
        request_id = self._next_request_id
        self._next_request_id += 1
        return request_id

    async def fetch(
        self, byte_count: int, deadline_ms: int = 0, timeout_s: Optional[float] = None
    ) -> FetchResult:
        """Request ``byte_count`` random bytes; verify the full grant.

        ``deadline_ms`` is the server-side deadline (0 = server default);
        ``timeout_s`` additionally bounds the client-side wait.

        Raises :class:`ServerError` on a typed error frame,
        :class:`IntegrityError` on any protocol violation, and
        ``asyncio.TimeoutError`` if ``timeout_s`` expires.
        """
        request_id = self._claim_request_id()
        self._stream.send(
            FrameType.REQUEST,
            payload=encode_request(byte_count, deadline_ms),
            request_id=request_id,
        )
        await self._stream.drain()
        return await asyncio.wait_for(
            self._collect_grant(request_id, byte_count), timeout=timeout_s
        )

    async def _collect_grant(self, request_id: int, byte_count: int) -> FetchResult:
        chunks = []
        received = 0
        degraded = False
        frames = 0
        while True:
            frame = await self._stream.recv()
            if frame.frame_type == FrameType.ERROR:
                if frame.request_id != request_id:
                    raise IntegrityError(
                        f"ERROR frame for request {frame.request_id}, "
                        f"expected {request_id}"
                    )
                code, message = decode_error(frame.payload)
                raise ServerError(code, message)
            if frame.frame_type == FrameType.BYE:
                raise IntegrityError("connection closed mid-grant (BYE)")
            if frame.frame_type != FrameType.DATA:
                raise IntegrityError(
                    f"unexpected frame type {frame.frame_type} inside a grant"
                )
            if frame.request_id != request_id:
                raise IntegrityError(
                    f"DATA frame for request {frame.request_id}, "
                    f"expected {request_id}"
                )
            if not frame.payload:
                raise IntegrityError("empty DATA frame")
            chunks.append(frame.payload)
            received += len(frame.payload)
            frames += 1
            degraded = degraded or bool(frame.flags & FLAG_DEGRADED)
            if frame.flags & FLAG_FINAL:
                break
            if received >= byte_count:
                raise IntegrityError(
                    f"grant over-delivered: {received} bytes without FLAG_FINAL "
                    f"(requested {byte_count})"
                )
        if received != byte_count:
            raise IntegrityError(
                f"grant size mismatch: requested {byte_count} bytes, "
                f"received {received}"
            )
        return FetchResult(data=b"".join(chunks), degraded=degraded, frames=frames)

    async def status(self) -> Dict[str, Any]:
        """Fetch a server/pool status snapshot (STATS frame)."""
        self._stream.send(FrameType.STATUS)
        await self._stream.drain()
        frame = await self._stream.recv()
        if frame.frame_type != FrameType.STATS:
            raise IntegrityError(
                f"expected STATS in reply to STATUS, got type {frame.frame_type}"
            )
        return decode_json(frame.payload)

    async def close(self) -> None:
        """Send BYE and close the connection (idempotent)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._stream.send(FrameType.BYE)
            await self._stream.drain()
        except (ConnectionError, OSError):
            pass
        self._stream.close()
        await self._stream.wait_closed()
