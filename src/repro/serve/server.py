"""The asyncio entropy server: backpressure, deadlines, graceful drain.

One :class:`EntropyServer` fronts a :class:`~repro.serve.pool.TrngPool`
for many concurrent clients:

* **per-client backpressure** — each connection gets a bounded pending
  request queue (overflow answers with a typed ``BACKPRESSURE`` error)
  and grants are flushed through ``drain()`` so a slow reader throttles
  only itself; a reader stalled past ``write_stall_timeout_s`` is shed
  (connection closed) instead of pinning server memory;
* **deadlines** — every request carries one (client-set, capped at
  ``max_deadline_s``); expiry answers with a typed ``TIMEOUT`` error
  frame, never a silent stall;
* **brownout mode** — when the pool reports brownout, grants shrink to
  ``brownout_grant_bytes`` and carry ``FLAG_DEGRADED``; the degradation
  is in grant *size only* — bytes are health-gated in every mode;
* **pool exhaustion** — with no healthy channel the server waits up to
  ``exhausted_patience_s`` (bounded by the deadline) for a re-admission,
  then answers ``POOL_EXHAUSTED``;
* **graceful lifecycle** — ``SIGTERM``/``SIGINT`` trigger a drain: no
  new connections, queued-but-unstarted requests are rejected with
  ``DRAINING``, in-flight grants get ``drain_timeout_s`` to finish,
  then every connection is closed with a ``BYE``.

The request path is instrumented with the PR 3 telemetry layer
(``repro.serve.request_latency_s`` histogram, ``repro.serve.*``
counters, pool gauges); see ``docs/observability.md``.
"""

from __future__ import annotations

import asyncio
import dataclasses
import signal
import time
from typing import Any, Dict, Optional, Set, Tuple

from repro.serve.pool import PoolExhaustedError, TrngPool
from repro.serve.protocol import (
    FLAG_DEGRADED,
    FLAG_FINAL,
    ErrorCode,
    Frame,
    FrameStream,
    FrameType,
    ProtocolError,
    decode_request,
    encode_error,
    encode_json,
)
from repro.telemetry import default_registry, get_logger

_LOGGER = get_logger("repro.serve.server")

#: Histogram edges for request latency (seconds) — finer than the
#: default time edges at the low end, where the SLO lives.
LATENCY_EDGES_S: Tuple[float, ...] = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
)


@dataclasses.dataclass(frozen=True)
class ServerConfig:
    """Service tuning; the documented SLO bounds live in docs/serving.md."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral (the bound port is on server.port)
    max_request_bytes: int = 1 << 20
    grant_bytes: int = 4096
    brownout_grant_bytes: int = 512
    max_pending_per_client: int = 4
    default_deadline_s: float = 5.0
    max_deadline_s: float = 30.0
    exhausted_retry_s: float = 0.02
    exhausted_patience_s: float = 0.25
    write_stall_timeout_s: float = 2.0
    drain_timeout_s: float = 5.0

    def __post_init__(self) -> None:
        if self.max_request_bytes < 1:
            raise ValueError("max request bytes must be positive")
        if not (0 < self.brownout_grant_bytes <= self.grant_bytes):
            raise ValueError(
                f"brownout grant ({self.brownout_grant_bytes}) must be in "
                f"(0, grant_bytes={self.grant_bytes}]"
            )
        if self.max_pending_per_client < 1:
            raise ValueError("need at least one pending request slot per client")
        for name in (
            "default_deadline_s",
            "max_deadline_s",
            "exhausted_retry_s",
            "exhausted_patience_s",
            "write_stall_timeout_s",
            "drain_timeout_s",
        ):
            if getattr(self, name) <= 0.0:
                raise ValueError(f"{name} must be positive")


class _RequestError(Exception):
    """Internal: terminate one request with a typed error frame."""

    def __init__(self, code: ErrorCode, message: str) -> None:
        super().__init__(message)
        self.code = code
        self.message = message


class _ShedConnection(Exception):
    """Internal: the client read too slowly; drop the connection."""


class _Session:
    """One client connection: reader task + sequential request worker."""

    def __init__(self, server: "EntropyServer", stream: FrameStream) -> None:
        self.server = server
        self.stream = stream
        self.queue: "asyncio.Queue[Optional[Frame]]" = asyncio.Queue()
        self.write_lock = asyncio.Lock()
        self.worker_task: Optional[asyncio.Task] = None
        self.reader_task: Optional[asyncio.Task] = None


class EntropyServer:
    """Serve health-gated random bytes from a pool (see module docstring).

    ``observability`` attaches an
    :class:`~repro.serve.observability.ObservabilitySidecar`: its scrape
    port and publisher task share the server's lifecycle (started with
    :meth:`start`, stopped at the end of the drain).
    """

    def __init__(
        self,
        pool: TrngPool,
        config: ServerConfig = ServerConfig(),
        observability: Optional[Any] = None,
    ) -> None:
        self._pool = pool
        self._config = config
        self.observability = observability
        self._server: Optional[asyncio.base_events.Server] = None
        self._sessions: Set[_Session] = set()
        self._pool_lock = asyncio.Lock()
        self._draining = False
        self._drained = asyncio.Event()
        self._started_at = 0.0
        self.port: Optional[int] = None
        # Local tallies mirrored into the telemetry registry: the
        # registry aggregates across the process, these summarize *this*
        # server instance for the shutdown report.
        self.requests_ok = 0
        self.requests_error = 0
        self.requests_shed = 0
        self.bytes_served = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def pool(self) -> TrngPool:
        return self._pool

    @property
    def config(self) -> ServerConfig:
        return self._config

    @property
    def draining(self) -> bool:
        return self._draining

    async def start(self) -> None:
        """Bind and start accepting clients; sets :attr:`port`."""
        self._server = await asyncio.start_server(
            self._on_client, host=self._config.host, port=self._config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_at = time.monotonic()
        if self.observability is not None:
            await self.observability.start()
        _LOGGER.info(
            "entropy server listening", host=self._config.host, port=self.port
        )

    def install_signal_handlers(self) -> None:
        """Route SIGTERM/SIGINT into a graceful drain (daemon mode)."""
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, self.request_shutdown)

    def request_shutdown(self) -> None:
        """Begin the graceful drain (idempotent, safe from a signal)."""
        if self._draining:
            return
        self._draining = True
        _LOGGER.info("drain requested", clients=len(self._sessions))
        asyncio.get_running_loop().create_task(self._drain())

    async def wait_closed(self) -> None:
        """Block until the drain completes and every session is gone."""
        await self._drained.wait()

    async def _drain(self) -> None:
        assert self._server is not None
        self._server.close()
        await self._server.wait_closed()
        # Give in-flight requests their drain window; queued-but-unstarted
        # requests are answered DRAINING by the workers themselves.
        workers = [
            session.worker_task
            for session in list(self._sessions)
            if session.worker_task is not None
        ]
        for session in list(self._sessions):
            session.queue.put_nowait(None)  # wake idle workers
        if workers:
            done, pending = await asyncio.wait(
                workers, timeout=self._config.drain_timeout_s
            )
            for task in pending:
                task.cancel()
        # Say goodbye on every surviving connection, then close.
        for session in list(self._sessions):
            try:
                async with session.write_lock:
                    session.stream.send(FrameType.BYE)
                    await session.stream.drain()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass
            session.stream.close()
            if session.reader_task is not None:
                session.reader_task.cancel()
        self._sessions.clear()
        if self.observability is not None:
            await self.observability.stop()
        self._drained.set()
        _LOGGER.info(
            "drain complete",
            requests_ok=self.requests_ok,
            requests_error=self.requests_error,
            bytes_served=self.bytes_served,
        )

    def summary(self) -> Dict[str, Any]:
        """The shutdown report (also served on STATUS frames)."""
        return {
            "uptime_s": time.monotonic() - self._started_at if self._started_at else 0.0,
            "requests_ok": self.requests_ok,
            "requests_error": self.requests_error,
            "requests_shed": self.requests_shed,
            "bytes_served": self.bytes_served,
            "clients": len(self._sessions),
            "draining": self._draining,
            "pool": self._pool.status(),
        }

    # ------------------------------------------------------------------
    # per-connection machinery
    # ------------------------------------------------------------------
    async def _on_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        stream = FrameStream(reader, writer)
        session = _Session(self, stream)
        self._sessions.add(session)
        default_registry().gauge("repro.serve.clients").set(len(self._sessions))
        try:
            async with session.write_lock:
                stream.send(
                    FrameType.HELLO,
                    payload=encode_json(
                        {
                            "server": "repro-serve",
                            "block_bits": self._pool.config.block_bits,
                            "max_request_bytes": self._config.max_request_bytes,
                            "grant_bytes": self._config.grant_bytes,
                        }
                    ),
                )
                await stream.drain()
            session.worker_task = asyncio.current_task()
            session.reader_task = asyncio.get_running_loop().create_task(
                self._read_loop(session)
            )
            await self._work_loop(session)
        except (ConnectionError, OSError, asyncio.IncompleteReadError):
            pass
        except _ShedConnection:
            self.requests_shed += 1
            default_registry().counter("repro.serve.requests_shed").inc()
        finally:
            if session.reader_task is not None:
                session.reader_task.cancel()
            stream.close()
            await stream.wait_closed()
            self._sessions.discard(session)
            default_registry().gauge("repro.serve.clients").set(len(self._sessions))

    async def _read_loop(self, session: _Session) -> None:
        """Pull frames off the socket into the bounded pending queue."""
        try:
            while True:
                frame = await session.stream.recv()
                if frame.frame_type == FrameType.BYE:
                    session.queue.put_nowait(None)
                    return
                if (
                    frame.frame_type == FrameType.REQUEST
                    and session.queue.qsize() >= self._config.max_pending_per_client
                ):
                    # Bounded pending queue: shed the overflow with a
                    # typed error instead of buffering without limit.
                    await self._send_error(
                        session,
                        frame.request_id,
                        ErrorCode.BACKPRESSURE,
                        f"pending queue full "
                        f"(max {self._config.max_pending_per_client})",
                    )
                    continue
                session.queue.put_nowait(frame)
        except (ConnectionError, OSError, asyncio.IncompleteReadError, ProtocolError):
            session.queue.put_nowait(None)
        except asyncio.CancelledError:
            raise

    async def _work_loop(self, session: _Session) -> None:
        """Serve queued frames sequentially (frames on a connection are
        ordered, so one worker per connection keeps seq semantics trivial)."""
        while True:
            frame = await session.queue.get()
            if frame is None:
                return
            if frame.frame_type == FrameType.STATUS:
                async with session.write_lock:
                    session.stream.send(
                        FrameType.STATS, payload=encode_json(self.summary())
                    )
                    await session.stream.drain()
                continue
            if frame.frame_type != FrameType.REQUEST:
                await self._send_error(
                    session,
                    frame.request_id,
                    ErrorCode.BAD_REQUEST,
                    f"unexpected frame type {frame.frame_type}",
                )
                continue
            await self._handle_request(session, frame)
            if self._draining and session.queue.empty():
                return

    # ------------------------------------------------------------------
    # the request path
    # ------------------------------------------------------------------
    async def _send_error(
        self, session: _Session, request_id: int, code: ErrorCode, message: str
    ) -> None:
        self.requests_error += 1
        registry = default_registry()
        registry.counter("repro.serve.requests_error").inc()
        registry.counter(f"repro.serve.errors.{code.name.lower()}").inc()
        try:
            async with session.write_lock:
                session.stream.send(
                    FrameType.ERROR,
                    payload=encode_error(code, message),
                    request_id=request_id,
                )
                await session.stream.drain()
        except (ConnectionError, OSError):
            pass

    async def _handle_request(self, session: _Session, frame: Frame) -> None:
        registry = default_registry()
        registry.counter("repro.serve.requests_total").inc()
        if self._draining:
            await self._send_error(
                session, frame.request_id, ErrorCode.DRAINING, "server is draining"
            )
            return
        try:
            byte_count, deadline_ms = decode_request(frame.payload)
        except ProtocolError as error:
            await self._send_error(
                session, frame.request_id, ErrorCode.BAD_REQUEST, str(error)
            )
            return
        if not (1 <= byte_count <= self._config.max_request_bytes):
            await self._send_error(
                session,
                frame.request_id,
                ErrorCode.BAD_REQUEST,
                f"requested {byte_count} bytes, bound is "
                f"{self._config.max_request_bytes}",
            )
            return
        deadline_s = (
            deadline_ms / 1000.0 if deadline_ms else self._config.default_deadline_s
        )
        deadline_s = min(deadline_s, self._config.max_deadline_s)
        start = time.monotonic()
        try:
            await asyncio.wait_for(
                self._serve_request(session, frame.request_id, byte_count, start),
                timeout=deadline_s,
            )
        except asyncio.TimeoutError:
            await self._send_error(
                session,
                frame.request_id,
                ErrorCode.TIMEOUT,
                f"deadline of {deadline_s:g}s expired",
            )
            return
        except _RequestError as error:
            await self._send_error(session, frame.request_id, error.code, error.message)
            return
        latency = time.monotonic() - start
        self.requests_ok += 1
        registry.counter("repro.serve.requests_ok").inc()
        registry.histogram("repro.serve.request_latency_s", LATENCY_EDGES_S).observe(
            latency
        )

    async def _serve_request(
        self, session: _Session, request_id: int, byte_count: int, start: float
    ) -> None:
        remaining = byte_count
        while remaining > 0:
            degraded = self._pool.brownout
            grant = (
                self._config.brownout_grant_bytes
                if degraded
                else self._config.grant_bytes
            )
            grant = min(grant, remaining)
            data = await self._get_bytes(grant)
            remaining -= len(data)
            flags = (FLAG_DEGRADED if degraded else 0) | (
                FLAG_FINAL if remaining == 0 else 0
            )
            if degraded:
                default_registry().counter("repro.serve.grants_degraded").inc()
            async with session.write_lock:
                session.stream.send(
                    FrameType.DATA, payload=data, flags=flags, request_id=request_id
                )
                try:
                    # Slow-reader shedding: a client that cannot absorb
                    # its grants within the stall budget is disconnected
                    # rather than allowed to pin server buffers.
                    await asyncio.wait_for(
                        session.stream.drain(),
                        timeout=self._config.write_stall_timeout_s,
                    )
                except asyncio.TimeoutError:
                    raise _ShedConnection() from None
            self.bytes_served += len(data)
            default_registry().counter("repro.serve.bytes_served").inc(len(data))
            # Yield between grants so one giant request cannot starve
            # the event loop for every other client.
            await asyncio.sleep(0)

    async def _get_bytes(self, count: int) -> bytes:
        """Pull gated bytes from the pool, waiting briefly through full
        exhaustion (a re-admission probe may bring a channel back)."""
        waited = 0.0
        while True:
            async with self._pool_lock:
                try:
                    return self._pool.get_bytes(count)
                except PoolExhaustedError as error:
                    detail = str(error)
            if waited >= self._config.exhausted_patience_s:
                raise _RequestError(ErrorCode.POOL_EXHAUSTED, detail)
            await asyncio.sleep(self._config.exhausted_retry_s)
            waited += self._config.exhausted_retry_s
