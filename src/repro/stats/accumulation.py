"""Jitter accumulation profiles and Allan-style statistics.

The paper's Section IV argument is fundamentally about *how* jitter
accumulates: one IRO period integrates fresh noise from every stage
crossing, so the variance of an N-period interval grows like ``N`` at
every horizon; an STR's Charlie regulation keeps pulling the token
spacing back, so successive periods are anticorrelated and the N-period
variance grows slower than ``N`` until only the unregulated collective
drift remains.

:func:`accumulation_profile` measures exactly that — the effective
per-period sigma as a function of the accumulation horizon — and
:func:`allan_deviation` gives the equivalent two-sample (Allan) view that
oscillator people expect.  Both operate on a plain period population, so
they apply to simulated rings and to any externally recorded data alike.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

import numpy as np


@dataclasses.dataclass(frozen=True)
class AccumulationProfile:
    """Effective per-period jitter vs accumulation horizon.

    For each block size ``N``: ``effective_sigma[N] = sqrt(var(sum of N
    consecutive periods) / N)``.  A white (iid) period sequence yields a
    flat profile at sigma_p; anticorrelated periods (STR) yield a profile
    decaying toward the long-run diffusion level; positively correlated
    periods (e.g. under slow deterministic drift) yield a growing one.
    """

    block_sizes: np.ndarray
    effective_sigma_ps: np.ndarray
    period_sigma_ps: float

    def __post_init__(self) -> None:
        if self.block_sizes.size != self.effective_sigma_ps.size:
            raise ValueError("block sizes and sigmas must align")

    @property
    def diffusion_sigma_ps(self) -> float:
        """Long-horizon effective sigma (the last profile point)."""
        return float(self.effective_sigma_ps[-1])

    @property
    def regulation_ratio(self) -> float:
        """``diffusion sigma / single-period sigma``.

        1.0 for a memoryless oscillator (IRO); < 1 for a regulated one
        (STR) — a direct, dimensionless signature of the Charlie effect.
        """
        if self.period_sigma_ps == 0.0:
            return 1.0
        return self.diffusion_sigma_ps / self.period_sigma_ps

    def is_white(self, tolerance: float = 0.25) -> bool:
        """True when the profile is flat within ``tolerance`` (iid periods)."""
        return bool(
            np.all(np.abs(self.effective_sigma_ps / self.period_sigma_ps - 1.0) < tolerance)
        )


def accumulation_profile(
    periods_ps: Sequence[float],
    block_sizes: Optional[Sequence[int]] = None,
) -> AccumulationProfile:
    """Measure how period jitter accumulates over growing horizons.

    Parameters
    ----------
    periods_ps:
        Consecutive oscillation periods.
    block_sizes:
        Horizons ``N`` to evaluate; defaults to powers of two up to a
        64th of the population, so every variance estimate averages at
        least 64 blocks (keeping its own sampling error under ~20 %).
    """
    periods = np.asarray(periods_ps, dtype=float)
    if periods.ndim != 1 or periods.size < 16:
        raise ValueError(f"need at least 16 periods, got {periods.size}")
    if block_sizes is None:
        largest = max(1, periods.size // 64)
        block_sizes = []
        size = 1
        while size <= largest:
            block_sizes.append(size)
            size *= 2
    sizes = np.asarray(sorted(set(int(s) for s in block_sizes)), dtype=int)
    if np.any(sizes < 1):
        raise ValueError("block sizes must be positive")
    if sizes[-1] > periods.size // 2:
        raise ValueError(
            f"largest block ({sizes[-1]}) leaves fewer than two blocks of "
            f"{periods.size} periods"
        )
    sigmas = np.empty(sizes.size)
    for index, size in enumerate(sizes):
        usable = (periods.size // size) * size
        blocks = periods[:usable].reshape(-1, size).sum(axis=1)
        sigmas[index] = np.sqrt(np.var(blocks) / size)
    return AccumulationProfile(
        block_sizes=sizes,
        effective_sigma_ps=sigmas,
        period_sigma_ps=float(np.std(periods)),
    )


def allan_variance(
    periods_ps: Sequence[float], group_size: int = 1
) -> float:
    """Two-sample (Allan) variance of the period population.

    ``AVAR(m) = 1/2 < (ybar_{k+1} - ybar_k)^2 >`` over adjacent groups of
    ``m`` periods.  For white period noise ``AVAR(m) = sigma_p^2 / m``.
    """
    periods = np.asarray(periods_ps, dtype=float)
    if group_size < 1:
        raise ValueError(f"group size must be positive, got {group_size}")
    usable = (periods.size // group_size) * group_size
    if usable < 2 * group_size:
        raise ValueError(
            f"need at least {2 * group_size} periods for group size {group_size}"
        )
    means = periods[:usable].reshape(-1, group_size).mean(axis=1)
    return float(0.5 * np.mean(np.diff(means) ** 2))


def allan_deviation(periods_ps: Sequence[float], group_size: int = 1) -> float:
    """Square root of :func:`allan_variance`."""
    return float(np.sqrt(allan_variance(periods_ps, group_size)))


@dataclasses.dataclass(frozen=True)
class AllanProfile:
    """Allan deviation across group sizes, with the white-noise slope fit."""

    group_sizes: np.ndarray
    deviations_ps: np.ndarray

    @property
    def log_slope(self) -> float:
        """Slope of log ADEV vs log m (-0.5 for white period noise)."""
        return float(
            np.polyfit(np.log(self.group_sizes), np.log(self.deviations_ps), 1)[0]
        )

    def is_white_period_noise(self, tolerance: float = 0.15) -> bool:
        return abs(self.log_slope + 0.5) < tolerance


def allan_profile(
    periods_ps: Sequence[float],
    group_sizes: Optional[Sequence[int]] = None,
) -> AllanProfile:
    """Allan deviation as a function of the averaging group size."""
    periods = np.asarray(periods_ps, dtype=float)
    if group_sizes is None:
        largest = periods.size // 8
        group_sizes = []
        size = 1
        while size <= largest:
            group_sizes.append(size)
            size *= 2
    sizes = np.asarray(sorted(set(int(s) for s in group_sizes)), dtype=int)
    deviations: List[float] = [allan_deviation(periods, int(size)) for size in sizes]
    return AllanProfile(group_sizes=sizes, deviations_ps=np.asarray(deviations))
