"""Entropy and bias estimators for TRNG bit streams.

The paper's motivation is TRNG quality, so the downstream layer needs the
standard estimators: Shannon entropy per bit, min-entropy per bit (the
conservative cryptographic figure), first-order bias, and a Markov
(first-order conditional) entropy that catches serial correlation a
memoryless estimate misses.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np


def _as_bits(bits: Sequence[int]) -> np.ndarray:
    array = np.asarray(bits, dtype=int)
    if array.ndim != 1:
        raise ValueError("bit stream must be one-dimensional")
    if array.size == 0:
        raise ValueError("bit stream is empty")
    if not np.all((array == 0) | (array == 1)):
        raise ValueError("bit stream must contain only 0s and 1s")
    return array


def bias(bits: Sequence[int]) -> float:
    """First-order bias: ``P(1) - 1/2`` (0 for a perfect source)."""
    array = _as_bits(bits)
    return float(np.mean(array) - 0.5)


def _binary_entropy(p_one: float) -> float:
    if p_one <= 0.0 or p_one >= 1.0:
        return 0.0
    p_zero = 1.0 - p_one
    return -(p_one * math.log2(p_one) + p_zero * math.log2(p_zero))


def shannon_entropy_per_bit(bits: Sequence[int]) -> float:
    """Memoryless Shannon entropy per output bit, in [0, 1]."""
    array = _as_bits(bits)
    return _binary_entropy(float(np.mean(array)))


def min_entropy_per_bit(bits: Sequence[int]) -> float:
    """Min-entropy per bit: ``-log2(max(P(0), P(1)))``.

    The conservative figure cryptographic standards (AIS31, SP 800-90B)
    care about; 1.0 only for a perfectly balanced source.
    """
    array = _as_bits(bits)
    p_one = float(np.mean(array))
    p_max = max(p_one, 1.0 - p_one)
    if p_max >= 1.0:
        return 0.0
    return -math.log2(p_max)


def markov_entropy_per_bit(bits: Sequence[int]) -> float:
    """First-order Markov entropy rate per bit.

    Conditions on the previous bit: ``H = sum_s P(s) * H(P(1 | s))``.
    Detects serial correlation (e.g. sampling an oscillator too fast)
    that leaves the memoryless entropy at 1.0.
    """
    array = _as_bits(bits)
    if array.size < 2:
        raise ValueError("need at least two bits for Markov entropy")
    previous = array[:-1]
    current = array[1:]
    entropy = 0.0
    for state in (0, 1):
        mask = previous == state
        state_probability = float(np.mean(mask))
        if state_probability == 0.0:
            continue
        p_one_given_state = float(np.mean(current[mask]))
        entropy += state_probability * _binary_entropy(p_one_given_state)
    return entropy


def entropy_deficiency(bits: Sequence[int]) -> float:
    """``1 - H_markov`` — a compact "how broken is it" scalar."""
    return 1.0 - markov_entropy_per_bit(bits)
