"""A compact randomness test battery for TRNG output.

A NIST-SP800-22-flavoured subset sized for simulation-scale sequences:
monobit frequency, block frequency, runs, longest run in a block,
lag autocorrelation and cumulative sums.  Each test returns a p-value
under the null hypothesis "the sequence is iid uniform"; the battery
aggregates them.

These tests evaluate *statistical* quality only — they are necessary, not
sufficient, for cryptographic use, which matches how the paper positions
its entropy-source analysis.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Callable, Dict, List, Sequence

import numpy as np
from scipy import special as scipy_special
from scipy import stats as scipy_stats


@dataclasses.dataclass(frozen=True)
class TestResult:
    """Outcome of one statistical test."""

    name: str
    p_value: float
    statistic: float
    passed: bool

    @classmethod
    def from_p_value(cls, name: str, p_value: float, statistic: float, alpha: float) -> "TestResult":
        return cls(
            name=name,
            p_value=float(p_value),
            statistic=float(statistic),
            passed=bool(p_value >= alpha),
        )


@dataclasses.dataclass(frozen=True)
class BatteryReport:
    """Aggregated outcome of the whole battery."""

    results: Dict[str, TestResult]
    alpha: float

    @property
    def all_passed(self) -> bool:
        return all(result.passed for result in self.results.values())

    @property
    def failed_tests(self) -> List[str]:
        return [name for name, result in self.results.items() if not result.passed]

    def summary(self) -> str:
        lines = []
        for name, result in self.results.items():
            verdict = "PASS" if result.passed else "FAIL"
            lines.append(f"{name:<22} p={result.p_value:8.5f}  {verdict}")
        return "\n".join(lines)


def _as_bits(bits: Sequence[int], minimum: int) -> np.ndarray:
    array = np.asarray(bits, dtype=int)
    if array.ndim != 1:
        raise ValueError("bit stream must be one-dimensional")
    if array.size < minimum:
        raise ValueError(f"need at least {minimum} bits, got {array.size}")
    if not np.all((array == 0) | (array == 1)):
        raise ValueError("bit stream must contain only 0s and 1s")
    return array


# ----------------------------------------------------------------------
# individual tests
# ----------------------------------------------------------------------
def monobit_test(bits: Sequence[int], alpha: float = 0.01) -> TestResult:
    """NIST frequency (monobit) test."""
    array = _as_bits(bits, minimum=100)
    signed = 2 * array - 1
    statistic = abs(float(np.sum(signed))) / math.sqrt(array.size)
    p_value = math.erfc(statistic / math.sqrt(2.0))
    return TestResult.from_p_value("monobit", p_value, statistic, alpha)


def block_frequency_test(bits: Sequence[int], block_size: int = 128, alpha: float = 0.01) -> TestResult:
    """NIST block-frequency test."""
    array = _as_bits(bits, minimum=block_size * 4)
    block_count = array.size // block_size
    blocks = array[: block_count * block_size].reshape(block_count, block_size)
    proportions = blocks.mean(axis=1)
    chi_squared = 4.0 * block_size * float(np.sum((proportions - 0.5) ** 2))
    p_value = float(scipy_special.gammaincc(block_count / 2.0, chi_squared / 2.0))
    return TestResult.from_p_value("block_frequency", p_value, chi_squared, alpha)


def runs_test(bits: Sequence[int], alpha: float = 0.01) -> TestResult:
    """NIST runs test (number of 0/1 alternations)."""
    array = _as_bits(bits, minimum=100)
    proportion = float(np.mean(array))
    # Pre-condition of the NIST runs test: the monobit statistic must be sane.
    if abs(proportion - 0.5) >= 2.0 / math.sqrt(array.size):
        return TestResult.from_p_value("runs", 0.0, float("inf"), alpha)
    run_count = 1 + int(np.count_nonzero(np.diff(array)))
    expected_term = 2.0 * array.size * proportion * (1.0 - proportion)
    statistic = abs(run_count - expected_term)
    denominator = 2.0 * math.sqrt(2.0 * array.size) * proportion * (1.0 - proportion)
    p_value = math.erfc(statistic / denominator)
    return TestResult.from_p_value("runs", p_value, statistic, alpha)


_LONGEST_RUN_TABLE = {
    8: ((1, 2, 3, 4), (0.2148, 0.3672, 0.2305, 0.1875)),
    128: ((4, 5, 6, 7, 8, 9), (0.1174, 0.2430, 0.2493, 0.1752, 0.1027, 0.1124)),
    10000: ((10, 11, 12, 13, 14, 15, 16), (0.0882, 0.2092, 0.2483, 0.1933, 0.1208, 0.0675, 0.0727)),
}


def longest_run_test(bits: Sequence[int], alpha: float = 0.01) -> TestResult:
    """NIST longest-run-of-ones-in-a-block test."""
    array = _as_bits(bits, minimum=128)
    if array.size < 6272:
        block_size = 8
    elif array.size < 750000:
        block_size = 128
    else:
        block_size = 10000
    categories, probabilities = _LONGEST_RUN_TABLE[block_size]
    block_count = array.size // block_size
    blocks = array[: block_count * block_size].reshape(block_count, block_size)

    longest_runs = np.zeros(block_count, dtype=int)
    for index, block in enumerate(blocks):
        longest = 0
        current = 0
        for bit in block:
            current = current + 1 if bit == 1 else 0
            longest = max(longest, current)
        longest_runs[index] = longest

    counts = np.zeros(len(categories), dtype=float)
    low, high = categories[0], categories[-1]
    clipped = np.clip(longest_runs, low, high)
    for index, category in enumerate(categories):
        counts[index] = np.count_nonzero(clipped == category)
    expected = block_count * np.asarray(probabilities)
    chi_squared = float(np.sum((counts - expected) ** 2 / expected))
    p_value = float(scipy_special.gammaincc((len(categories) - 1) / 2.0, chi_squared / 2.0))
    return TestResult.from_p_value("longest_run", p_value, chi_squared, alpha)


def autocorrelation_test(bits: Sequence[int], lag: int = 1, alpha: float = 0.01) -> TestResult:
    """Serial correlation at a given lag (z-test on matching pairs)."""
    array = _as_bits(bits, minimum=100)
    if lag < 1 or lag >= array.size:
        raise ValueError(f"lag must be in [1, {array.size - 1}], got {lag}")
    matches = int(np.count_nonzero(array[:-lag] == array[lag:]))
    pair_count = array.size - lag
    statistic = (matches - pair_count / 2.0) / math.sqrt(pair_count / 4.0)
    p_value = math.erfc(abs(statistic) / math.sqrt(2.0))
    return TestResult.from_p_value(f"autocorrelation_lag{lag}", p_value, statistic, alpha)


def cumulative_sums_test(bits: Sequence[int], alpha: float = 0.01) -> TestResult:
    """NIST cumulative-sums (forward) test."""
    array = _as_bits(bits, minimum=100)
    signed = 2 * array - 1
    partial = np.cumsum(signed)
    z = float(np.max(np.abs(partial)))
    n = array.size
    if z == 0.0:
        return TestResult.from_p_value("cumulative_sums", 0.0, 0.0, alpha)
    total = 0.0
    sqrt_n = math.sqrt(n)
    start_one = int(math.floor((-n / z + 1.0) / 4.0))
    end_one = int(math.floor((n / z - 1.0) / 4.0))
    for k in range(start_one, end_one + 1):
        total += scipy_stats.norm.cdf((4 * k + 1) * z / sqrt_n)
        total -= scipy_stats.norm.cdf((4 * k - 1) * z / sqrt_n)
    start_two = int(math.floor((-n / z - 3.0) / 4.0))
    for k in range(start_two, end_one + 1):
        total -= scipy_stats.norm.cdf((4 * k + 3) * z / sqrt_n)
        total += scipy_stats.norm.cdf((4 * k + 1) * z / sqrt_n)
    p_value = 1.0 - total
    p_value = min(max(p_value, 0.0), 1.0)
    return TestResult.from_p_value("cumulative_sums", p_value, z, alpha)


def _pattern_proportions(array: np.ndarray, length: int) -> np.ndarray:
    """Overlapping ``length``-bit pattern frequencies (cyclic, NIST style)."""
    if length == 0:
        return np.ones(1)
    extended = np.concatenate([array, array[: length - 1]])
    weights = 1 << np.arange(length - 1, -1, -1)
    windows = np.lib.stride_tricks.sliding_window_view(extended, length)
    codes = windows @ weights
    counts = np.bincount(codes, minlength=1 << length).astype(float)
    return counts


def _psi_squared(array: np.ndarray, length: int) -> float:
    """NIST psi^2 statistic for overlapping ``length``-bit patterns."""
    if length <= 0:
        return 0.0
    counts = _pattern_proportions(array, length)
    n = array.size
    return float((1 << length) / n * np.sum(counts**2) - n)


def serial_test(bits: Sequence[int], pattern_length: int = 3, alpha: float = 0.01) -> TestResult:
    """NIST serial test: uniformity of overlapping m-bit patterns.

    Returns the first of the two NIST p-values (``del psi^2``); with a
    balanced-but-patterned source this catches what monobit cannot.
    """
    array = _as_bits(bits, minimum=100)
    if pattern_length < 2 or pattern_length > int(math.log2(array.size)) - 2:
        raise ValueError(
            f"pattern length {pattern_length} unsupported for {array.size} bits"
        )
    psi_m = _psi_squared(array, pattern_length)
    psi_m1 = _psi_squared(array, pattern_length - 1)
    psi_m2 = _psi_squared(array, pattern_length - 2)
    delta1 = psi_m - psi_m1
    delta2 = psi_m - 2.0 * psi_m1 + psi_m2
    p_value1 = float(scipy_special.gammaincc(2 ** (pattern_length - 2), delta1 / 2.0))
    p_value2 = float(scipy_special.gammaincc(2 ** (pattern_length - 3), delta2 / 2.0))
    p_value = min(p_value1, p_value2)
    return TestResult.from_p_value(f"serial_m{pattern_length}", p_value, delta1, alpha)


def approximate_entropy_test(
    bits: Sequence[int], pattern_length: int = 2, alpha: float = 0.01
) -> TestResult:
    """NIST approximate-entropy test (ApEn of overlapping patterns)."""
    array = _as_bits(bits, minimum=100)
    if pattern_length < 1 or pattern_length > int(math.log2(array.size)) - 5:
        raise ValueError(
            f"pattern length {pattern_length} unsupported for {array.size} bits"
        )
    n = array.size

    def phi(length: int) -> float:
        counts = _pattern_proportions(array, length)
        proportions = counts[counts > 0] / n
        return float(np.sum(proportions * np.log(proportions)))

    ap_en = phi(pattern_length) - phi(pattern_length + 1)
    chi_squared = 2.0 * n * (math.log(2.0) - ap_en)
    p_value = float(scipy_special.gammaincc(2 ** (pattern_length - 1), chi_squared / 2.0))
    return TestResult.from_p_value(
        f"approximate_entropy_m{pattern_length}", p_value, chi_squared, alpha
    )


def dft_spectral_test(bits: Sequence[int], alpha: float = 0.01) -> TestResult:
    """NIST discrete-Fourier-transform (spectral) test.

    Detects periodic features: the fraction of DFT peaks below the 95 %
    threshold should be ~0.95 for random data.
    """
    array = _as_bits(bits, minimum=1000)
    signed = 2 * array - 1
    transform = np.abs(np.fft.rfft(signed))[: array.size // 2]
    threshold = math.sqrt(math.log(1.0 / 0.05) * array.size)
    expected_below = 0.95 * transform.size
    observed_below = float(np.count_nonzero(transform < threshold))
    statistic = (observed_below - expected_below) / math.sqrt(
        transform.size * 0.95 * 0.05
    )
    p_value = math.erfc(abs(statistic) / math.sqrt(2.0))
    return TestResult.from_p_value("dft_spectral", p_value, statistic, alpha)


_DEFAULT_TESTS: Dict[str, Callable[..., TestResult]] = {
    "monobit": monobit_test,
    "block_frequency": block_frequency_test,
    "runs": runs_test,
    "longest_run": longest_run_test,
    "autocorrelation_lag1": lambda bits, alpha: autocorrelation_test(bits, lag=1, alpha=alpha),
    "autocorrelation_lag2": lambda bits, alpha: autocorrelation_test(bits, lag=2, alpha=alpha),
    "cumulative_sums": cumulative_sums_test,
    "serial_m3": lambda bits, alpha: serial_test(bits, pattern_length=3, alpha=alpha),
    "approximate_entropy_m2": lambda bits, alpha: approximate_entropy_test(
        bits, pattern_length=2, alpha=alpha
    ),
    "dft_spectral": dft_spectral_test,
}


def run_battery(bits: Sequence[int], alpha: float = 0.01) -> BatteryReport:
    """Run the full battery and aggregate the verdicts."""
    results = {
        name: test(bits, alpha=alpha) for name, test in _DEFAULT_TESTS.items()
    }
    return BatteryReport(results=results, alpha=alpha)
