"""Gaussianity checks for jitter populations.

Two uses in the reproduction:

* Fig. 9 — the paper's qualitative claim that both the IRO and (newly)
  the STR exhibit *Gaussian* period jitter;
* the divider method's hypothesis — the cycle-to-cycle histogram of the
  divided signal must look normal before Eq. 6 may be applied
  (Section V-D2).

We combine a Shapiro-Wilk test (or D'Agostino for large samples, where
Shapiro-Wilk loses calibration) with moment diagnostics, because a single
p-value on simulation-sized samples is too blunt an instrument on its own.
"""

from __future__ import annotations

import dataclasses

import numpy as np
from scipy import stats as scipy_stats


@dataclasses.dataclass(frozen=True)
class NormalityReport:
    """Verdict and evidence of a Gaussianity check."""

    sample_count: int
    p_value: float
    skewness: float
    excess_kurtosis: float
    test_name: str
    alpha: float

    @property
    def is_normal(self) -> bool:
        """True when the test does not reject normality at ``alpha``."""
        return self.p_value >= self.alpha

    @property
    def moments_look_gaussian(self) -> bool:
        """Loose sanity bound on the shape moments."""
        return abs(self.skewness) < 0.5 and abs(self.excess_kurtosis) < 1.0


def check_normality(samples: np.ndarray, alpha: float = 0.01) -> NormalityReport:
    """Test a sample population for normality.

    Shapiro-Wilk below 5000 samples, D'Agostino K^2 above (Shapiro-Wilk
    p-values are unreliable for very large n).
    """
    array = np.asarray(samples, dtype=float)
    if array.ndim != 1:
        raise ValueError("samples must be one-dimensional")
    if array.size < 8:
        raise ValueError(f"need at least 8 samples, got {array.size}")
    if not (0.0 < alpha < 1.0):
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    if np.std(array) == 0.0:
        # A degenerate (constant) population: trivially non-Gaussian but
        # also jitter-free; report p = 0 so callers treat it as a red flag.
        return NormalityReport(
            sample_count=int(array.size),
            p_value=0.0,
            skewness=0.0,
            excess_kurtosis=0.0,
            test_name="degenerate",
            alpha=alpha,
        )
    if array.size <= 5000:
        _statistic, p_value = scipy_stats.shapiro(array)
        test_name = "shapiro-wilk"
    else:
        _statistic, p_value = scipy_stats.normaltest(array)
        test_name = "dagostino-k2"
    return NormalityReport(
        sample_count=int(array.size),
        p_value=float(p_value),
        skewness=float(scipy_stats.skew(array)),
        excess_kurtosis=float(scipy_stats.kurtosis(array)),
        test_name=test_name,
        alpha=alpha,
    )
