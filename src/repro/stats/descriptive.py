"""The paper's summary statistics (Sections V-B and V-C).

* ``Fn = F / F_nom`` — frequency normalized to the 1.2 V reading, so
  rings of very different absolute frequency can share one plot (Fig. 8);
* ``delta F = (F_max - F_min) / F_nom`` — normalized frequency excursion
  over the 0.4 V sweep (Table I), the paper's robustness-to-voltage
  metric;
* ``sigma_rel = sigma / F_mean`` — relative standard deviation across
  boards (Table II), the extra-device variability metric.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def normalized_frequencies(
    frequencies_mhz: Sequence[float], nominal_frequency_mhz: float
) -> np.ndarray:
    """``Fn = F / F_nom`` for a sweep of measurements."""
    if nominal_frequency_mhz <= 0.0:
        raise ValueError(f"nominal frequency must be positive, got {nominal_frequency_mhz}")
    frequencies = np.asarray(frequencies_mhz, dtype=float)
    if np.any(frequencies <= 0.0):
        raise ValueError("all frequencies must be positive")
    return frequencies / nominal_frequency_mhz


def normalized_excursion(
    frequency_at_min_v_mhz: float,
    frequency_at_max_v_mhz: float,
    nominal_frequency_mhz: float,
) -> float:
    """Table I metric: ``delta F = (F_max - F_min) / F_nom``."""
    if nominal_frequency_mhz <= 0.0:
        raise ValueError(f"nominal frequency must be positive, got {nominal_frequency_mhz}")
    return (frequency_at_max_v_mhz - frequency_at_min_v_mhz) / nominal_frequency_mhz


def relative_standard_deviation(values: Sequence[float]) -> float:
    """Table II metric: ``sigma_rel = sigma / mean`` of a population.

    Uses the population standard deviation (``ddof=0``), matching the
    convention of instrument statistics over a fixed board set.
    """
    array = np.asarray(values, dtype=float)
    if array.size < 2:
        raise ValueError(f"need at least two values, got {array.size}")
    mean = float(np.mean(array))
    if mean == 0.0:
        raise ValueError("mean is zero; relative deviation undefined")
    return float(np.std(array) / abs(mean))


def linearity_r_squared(x: Sequence[float], y: Sequence[float]) -> float:
    """Coefficient of determination of a straight-line fit.

    Used to check the paper's observation that "frequencies vary linearly
    with voltage" (Fig. 8).
    """
    x_arr = np.asarray(x, dtype=float)
    y_arr = np.asarray(y, dtype=float)
    if x_arr.size != y_arr.size:
        raise ValueError("x and y must have the same length")
    if x_arr.size < 3:
        raise ValueError("need at least three points to judge linearity")
    slope, intercept = np.polyfit(x_arr, y_arr, deg=1)
    predicted = slope * x_arr + intercept
    total = float(np.sum((y_arr - y_arr.mean()) ** 2))
    if total == 0.0:
        return 1.0
    residual = float(np.sum((y_arr - predicted) ** 2))
    return 1.0 - residual / total
