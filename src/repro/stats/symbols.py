"""Multi-bit symbol statistics.

The coherent-sampling TRNG natively produces *counter values*, not bits;
the multi-phase sampler can emit several comb-position bits per sample.
Assessing such sources one bit at a time wastes information, so this
module provides the symbol-level tools:

* :func:`symbolize_bits` / :func:`desymbolize` — (de)grouping bit
  streams into fixed-width symbols (MSB first, matching
  :mod:`repro.trng.bitio`);
* :func:`low_bits` — extract the k least-significant bits of counter
  values (the standard coherent-sampling extraction);
* :func:`symbol_entropy` — plug-in Shannon entropy with the
  Miller-Madow bias correction;
* :func:`chi_square_uniformity` — the classic goodness-of-fit verdict.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Sequence

import numpy as np
from scipy import stats as scipy_stats


def symbolize_bits(bits: Sequence[int], width: int) -> np.ndarray:
    """Group a 0/1 stream into ``width``-bit symbols, MSB first.

    Trailing bits that do not fill a symbol are discarded.
    """
    if width < 1 or width > 24:
        raise ValueError(f"symbol width must be in [1, 24], got {width}")
    array = np.asarray(bits, dtype=int)
    if array.ndim != 1:
        raise ValueError("bit stream must be one-dimensional")
    if array.size and not np.all((array == 0) | (array == 1)):
        raise ValueError("bit stream must contain only 0s and 1s")
    usable = (array.size // width) * width
    if usable == 0:
        return np.empty(0, dtype=np.int64)
    groups = array[:usable].reshape(-1, width)
    weights = 1 << np.arange(width - 1, -1, -1)
    return (groups @ weights).astype(np.int64)


def desymbolize(symbols: Sequence[int], width: int) -> np.ndarray:
    """Inverse of :func:`symbolize_bits`."""
    if width < 1 or width > 24:
        raise ValueError(f"symbol width must be in [1, 24], got {width}")
    array = np.asarray(symbols, dtype=np.int64)
    if array.size and (array.min() < 0 or array.max() >= (1 << width)):
        raise ValueError(f"symbols outside [0, 2^{width})")
    if array.size == 0:
        return np.empty(0, dtype=int)
    shifts = np.arange(width - 1, -1, -1)
    return ((array[:, None] >> shifts) & 1).reshape(-1).astype(int)


def low_bits(values: Sequence[int], bit_width: int) -> np.ndarray:
    """The ``bit_width`` least-significant bits of each value, as symbols."""
    if bit_width < 1 or bit_width > 24:
        raise ValueError(f"bit width must be in [1, 24], got {bit_width}")
    array = np.asarray(values, dtype=np.int64)
    return (array & ((1 << bit_width) - 1)).astype(np.int64)


def symbol_entropy(symbols: Sequence[int], alphabet_size: int) -> float:
    """Miller-Madow corrected Shannon entropy, in bits per symbol."""
    array = np.asarray(symbols, dtype=np.int64)
    if array.size == 0:
        raise ValueError("symbol stream is empty")
    if alphabet_size < 2:
        raise ValueError(f"alphabet size must be at least 2, got {alphabet_size}")
    if array.min() < 0 or array.max() >= alphabet_size:
        raise ValueError("symbols outside the declared alphabet")
    counts = np.bincount(array, minlength=alphabet_size).astype(float)
    proportions = counts[counts > 0] / array.size
    plug_in = -float(np.sum(proportions * np.log2(proportions)))
    observed_support = int(np.count_nonzero(counts))
    correction = (observed_support - 1) / (2.0 * array.size * math.log(2.0))
    return min(plug_in + correction, math.log2(alphabet_size))


@dataclasses.dataclass(frozen=True)
class UniformityVerdict:
    """Chi-square goodness-of-fit against the uniform distribution."""

    chi_squared: float
    p_value: float
    alphabet_size: int
    sample_count: int
    alpha: float

    @property
    def is_uniform(self) -> bool:
        return self.p_value >= self.alpha


def chi_square_uniformity(
    symbols: Sequence[int], alphabet_size: int, alpha: float = 0.01
) -> UniformityVerdict:
    """Pearson chi-square test of symbol uniformity."""
    array = np.asarray(symbols, dtype=np.int64)
    if array.size < 5 * alphabet_size:
        raise ValueError(
            f"need at least {5 * alphabet_size} symbols for a "
            f"{alphabet_size}-letter alphabet, got {array.size}"
        )
    if array.min() < 0 or array.max() >= alphabet_size:
        raise ValueError("symbols outside the declared alphabet")
    counts = np.bincount(array, minlength=alphabet_size).astype(float)
    expected = array.size / alphabet_size
    chi_squared = float(np.sum((counts - expected) ** 2 / expected))
    p_value = float(scipy_stats.chi2.sf(chi_squared, alphabet_size - 1))
    return UniformityVerdict(
        chi_squared=chi_squared,
        p_value=p_value,
        alphabet_size=alphabet_size,
        sample_count=int(array.size),
        alpha=alpha,
    )
