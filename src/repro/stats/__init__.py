"""Statistical analysis substrate.

* :mod:`repro.stats.descriptive` — the paper's summary statistics:
  normalized frequency, normalized excursion ``delta F``, relative
  standard deviation ``sigma_rel``.
* :mod:`repro.stats.normality` — Gaussianity checks for jitter
  histograms (Fig. 9) and the divider-method hypothesis.
* :mod:`repro.stats.fitting` — square-root / linear accumulation-law
  fits (Figs. 11-12).
* :mod:`repro.stats.entropy` — entropy and bias estimators for TRNG
  output.
* :mod:`repro.stats.randomness` — a compact randomness test battery
  (monobit, block frequency, runs, autocorrelation, ...).
* :mod:`repro.stats.puf` — population-shaped PUF response statistics
  (Hamming distances, bit-aliasing, uniformity) for ``repro.puf``.
"""

from repro.stats.descriptive import (
    normalized_frequencies,
    normalized_excursion,
    relative_standard_deviation,
    linearity_r_squared,
)
from repro.stats.normality import NormalityReport, check_normality
from repro.stats.fitting import (
    PowerLawFit,
    fit_sqrt_accumulation,
    fit_power_law,
    fit_constant,
    ConstantFit,
)
from repro.stats.accumulation import (
    AccumulationProfile,
    AllanProfile,
    accumulation_profile,
    allan_deviation,
    allan_profile,
    allan_variance,
)
from repro.stats.spectral import PeriodSpectrum, period_spectrum
from repro.stats.symbols import (
    UniformityVerdict,
    chi_square_uniformity,
    desymbolize,
    low_bits,
    symbol_entropy,
    symbolize_bits,
)
from repro.stats.entropy import (
    shannon_entropy_per_bit,
    min_entropy_per_bit,
    bias,
    markov_entropy_per_bit,
)
from repro.stats.randomness import (
    TestResult,
    BatteryReport,
    monobit_test,
    block_frequency_test,
    runs_test,
    longest_run_test,
    autocorrelation_test,
    cumulative_sums_test,
    run_battery,
)
from repro.stats.puf import (
    bit_aliasing,
    hamming_distance,
    mean_pairwise_hamming,
    pairwise_hamming,
    uniformity,
)

__all__ = [
    "AccumulationProfile",
    "AllanProfile",
    "accumulation_profile",
    "allan_deviation",
    "allan_profile",
    "allan_variance",
    "PeriodSpectrum",
    "period_spectrum",
    "UniformityVerdict",
    "chi_square_uniformity",
    "desymbolize",
    "low_bits",
    "symbol_entropy",
    "symbolize_bits",
    "normalized_frequencies",
    "normalized_excursion",
    "relative_standard_deviation",
    "linearity_r_squared",
    "NormalityReport",
    "check_normality",
    "PowerLawFit",
    "fit_sqrt_accumulation",
    "fit_power_law",
    "fit_constant",
    "ConstantFit",
    "shannon_entropy_per_bit",
    "min_entropy_per_bit",
    "bias",
    "markov_entropy_per_bit",
    "TestResult",
    "BatteryReport",
    "monobit_test",
    "block_frequency_test",
    "runs_test",
    "longest_run_test",
    "autocorrelation_test",
    "cumulative_sums_test",
    "run_battery",
    "bit_aliasing",
    "hamming_distance",
    "mean_pairwise_hamming",
    "pairwise_hamming",
    "uniformity",
]
