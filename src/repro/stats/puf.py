"""Population-shaped PUF response statistics.

All helpers operate on a *response matrix*: a 2-D ``(device, bit)``
array of 0/1 values, the shape produced by
:func:`repro.puf.topology.derive_response_bits`.  Everything is pure
numpy — no Python loops — so the estimators stay usable at the
million-device populations the enrollment pipeline produces:

* :func:`hamming_distance` — element-wise intra-device distance between
  two measurements (reliability);
* :func:`bit_aliasing` / :func:`uniformity` — per-bit and per-device
  one-rates (Maiti-Schaumont style);
* :func:`mean_pairwise_hamming` — the **exact** mean inter-device
  Hamming distance over all C(n, 2) pairs in O(n * bits), via the
  per-bit identity ``sum_b k_b * (n - k_b)`` where ``k_b`` counts the
  ones of bit ``b``;
* :func:`pairwise_hamming` — the pair *distribution* (all pairs, or a
  uniform pair sample when C(n, 2) is too large to materialize).
"""

from __future__ import annotations

import numpy as np

from repro.simulation.noise import SeedLike, make_rng


def _as_response_matrix(responses, *, min_devices: int = 0) -> np.ndarray:
    """Validate and normalize a ``(device, bit)`` 0/1 matrix."""
    matrix = np.asarray(responses)
    if matrix.ndim != 2:
        raise ValueError(
            f"responses must be a 2-D (device, bit) array, got shape {matrix.shape}"
        )
    if matrix.shape[1] == 0:
        raise ValueError("responses carry no bits (zero-width rows)")
    if matrix.shape[0] < min_devices:
        raise ValueError(
            f"need at least {min_devices} device(s), got {matrix.shape[0]}"
        )
    if matrix.size and (matrix.min() < 0 or matrix.max() > 1):
        raise ValueError("response bits must be 0/1")
    return matrix.astype(np.uint8, copy=False)


def hamming_distance(first, second, *, fraction: bool = False) -> np.ndarray:
    """Hamming distance along the last axis, broadcasting like numpy.

    With two ``(device, bit)`` matrices this is the per-device
    *intra-device* distance between two measurements of the same
    population.  ``fraction=True`` normalizes by the bit width.
    """
    left = np.asarray(first)
    right = np.asarray(second)
    if left.shape[-1] != right.shape[-1]:
        raise ValueError(
            f"bit widths disagree: {left.shape[-1]} vs {right.shape[-1]}"
        )
    if left.shape[-1] == 0:
        raise ValueError("responses carry no bits (zero-width rows)")
    distance = np.count_nonzero(left != right, axis=-1)
    if fraction:
        return distance / float(left.shape[-1])
    return distance


def bit_aliasing(responses) -> np.ndarray:
    """Per-bit one-rate across the population (ideal: 0.5 everywhere).

    A bit aliased near 0 or 1 is (nearly) the same on every device —
    it spends enrollment storage without contributing identity.
    """
    matrix = _as_response_matrix(responses, min_devices=1)
    return matrix.mean(axis=0)


def uniformity(responses) -> np.ndarray:
    """Per-device one-rate across its response bits (ideal: 0.5)."""
    matrix = _as_response_matrix(responses, min_devices=1)
    return matrix.mean(axis=1)


def mean_pairwise_hamming(responses, *, fraction: bool = True) -> float:
    """Exact mean Hamming distance over all C(n, 2) device pairs.

    Bit ``b`` with ``k_b`` ones disagrees on exactly ``k_b * (n - k_b)``
    of the unordered pairs, so the all-pairs mean needs no pair
    enumeration — O(n * bits) instead of O(n^2 * bits).
    """
    matrix = _as_response_matrix(responses, min_devices=2)
    device_count = matrix.shape[0]
    ones = matrix.sum(axis=0, dtype=np.int64)
    disagreements = ones * (device_count - ones)
    pair_count = device_count * (device_count - 1) // 2
    mean_bits = float(disagreements.sum(dtype=np.int64)) / pair_count
    if fraction:
        return mean_bits / matrix.shape[1]
    return mean_bits


def pairwise_hamming(
    responses,
    *,
    fraction: bool = True,
    max_pairs: int = 200_000,
    seed: SeedLike = 0,
) -> np.ndarray:
    """Inter-device Hamming distances of distinct device pairs.

    All C(n, 2) pairs when that fits under ``max_pairs``; otherwise a
    uniform sample of ``max_pairs`` ordered pairs ``(i, j)``, ``i != j``
    (sampling with replacement — duplicate pairs are vanishingly likely
    at the population sizes where sampling kicks in).  Use
    :func:`mean_pairwise_hamming` when only the mean is needed: it is
    exact at any scale.
    """
    matrix = _as_response_matrix(responses, min_devices=2)
    device_count = matrix.shape[0]
    if max_pairs < 1:
        raise ValueError(f"max_pairs must be positive, got {max_pairs}")
    total_pairs = device_count * (device_count - 1) // 2
    if total_pairs <= max_pairs:
        first, second = np.triu_indices(device_count, k=1)
    else:
        rng = make_rng(seed)
        first = rng.integers(0, device_count, size=max_pairs)
        second = rng.integers(0, device_count - 1, size=max_pairs)
        second = np.where(second >= first, second + 1, second)
    distances = np.count_nonzero(matrix[first] != matrix[second], axis=-1)
    if fraction:
        return distances / float(matrix.shape[1])
    return distances
