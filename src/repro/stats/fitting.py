"""Accumulation-law fits for the jitter-vs-length experiments.

Fig. 11 claims the IRO period jitter follows ``sigma_p = sqrt(2k) *
sigma_g`` — a square-root law in the stage count.  Fig. 12 claims the STR
period jitter is constant in the stage count.  This module fits both
shapes and reports goodness-of-fit so the benchmarks can verify not just
values but *laws*.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Sequence

import numpy as np


@dataclasses.dataclass(frozen=True)
class PowerLawFit:
    """Least-squares fit of ``y = a * x**b`` (in log space)."""

    amplitude: float
    exponent: float
    r_squared: float

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self.amplitude * np.asarray(x, dtype=float) ** self.exponent


@dataclasses.dataclass(frozen=True)
class ConstantFit:
    """Fit of ``y = c`` with dispersion diagnostics."""

    value: float
    relative_spread: float  # std / mean of the residual population

    @property
    def is_flat(self) -> bool:
        """True when the data varies by less than 35 % around the mean."""
        return self.relative_spread < 0.35


def fit_power_law(x: Sequence[float], y: Sequence[float]) -> PowerLawFit:
    """Fit ``y = a * x**b`` by linear regression in log-log space."""
    x_arr = np.asarray(x, dtype=float)
    y_arr = np.asarray(y, dtype=float)
    if x_arr.size != y_arr.size:
        raise ValueError("x and y must have the same length")
    if x_arr.size < 3:
        raise ValueError("need at least three points for a power-law fit")
    if np.any(x_arr <= 0.0) or np.any(y_arr <= 0.0):
        raise ValueError("power-law fits require positive data")
    log_x = np.log(x_arr)
    log_y = np.log(y_arr)
    exponent, log_amplitude = np.polyfit(log_x, log_y, deg=1)
    predicted = exponent * log_x + log_amplitude
    total = float(np.sum((log_y - log_y.mean()) ** 2))
    residual = float(np.sum((log_y - predicted) ** 2))
    r_squared = 1.0 if total == 0.0 else 1.0 - residual / total
    return PowerLawFit(
        amplitude=float(math.exp(log_amplitude)),
        exponent=float(exponent),
        r_squared=float(r_squared),
    )


def fit_sqrt_accumulation(
    stage_counts: Sequence[int], period_jitters_ps: Sequence[float]
) -> "SqrtLawFit":
    """Fit Eq. 4, ``sigma_p = sqrt(2 k) * sigma_g``, to measured jitter.

    Returns the implied single-gate jitter ``sigma_g`` and the free-form
    power-law fit for comparison: a genuine square-root accumulation
    shows an exponent close to 0.5.
    """
    stages = np.asarray(stage_counts, dtype=float)
    jitters = np.asarray(period_jitters_ps, dtype=float)
    if stages.size != jitters.size:
        raise ValueError("stage counts and jitters must have the same length")
    if stages.size < 3:
        raise ValueError("need at least three points")
    # Least squares for sigma_g with the exponent pinned at 0.5:
    # sigma = sigma_g * sqrt(2k)  =>  sigma_g = sum(y*s) / sum(s^2).
    basis = np.sqrt(2.0 * stages)
    sigma_g = float(np.sum(jitters * basis) / np.sum(basis**2))
    free_fit = fit_power_law(stages, jitters)
    return SqrtLawFit(gate_sigma_ps=sigma_g, free_fit=free_fit)


@dataclasses.dataclass(frozen=True)
class SqrtLawFit:
    """Result of the Eq. 4 fit."""

    gate_sigma_ps: float
    free_fit: PowerLawFit

    @property
    def follows_sqrt_law(self) -> bool:
        """Exponent within [0.35, 0.65] and a decent log-space fit."""
        return 0.35 <= self.free_fit.exponent <= 0.65 and self.free_fit.r_squared > 0.8

    def predict(self, stage_counts: np.ndarray) -> np.ndarray:
        return self.gate_sigma_ps * np.sqrt(2.0 * np.asarray(stage_counts, dtype=float))


def fit_constant(y: Sequence[float]) -> ConstantFit:
    """Fit a constant (Fig. 12's claim for the STR)."""
    y_arr = np.asarray(y, dtype=float)
    if y_arr.size < 2:
        raise ValueError("need at least two points")
    mean = float(np.mean(y_arr))
    if mean == 0.0:
        raise ValueError("mean is zero; relative spread undefined")
    return ConstantFit(value=mean, relative_spread=float(np.std(y_arr) / abs(mean)))
