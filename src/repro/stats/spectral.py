"""Spectral analysis of period sequences (jitter spectra).

The accumulation profile (:mod:`repro.stats.accumulation`) views the
correlation structure in the time domain; the period power spectral
density views it in frequency:

* **white** period noise (IRO) → flat PSD at ``sigma_p^2 / f_N`` across
  the band;
* **regulated** period noise (STR) → suppressed at low frequencies: the
  Charlie effect cancels slow spacing wander, so the spectrum rises from
  the diffusion floor toward the Nyquist edge (a first-difference-like
  shape);
* a deterministic **ripple** shows as a discrete line at the ripple
  frequency — the frequency-domain face of the EXT1 attack.

Implemented with plain numpy (Welch-style segment averaging, Hann
window); frequencies come out in cycles-per-period, so multiplying by
the oscillation frequency converts to Hz.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence, Tuple

import numpy as np


@dataclasses.dataclass(frozen=True)
class PeriodSpectrum:
    """One-sided PSD of a (demeaned) period sequence.

    ``frequency`` is in cycles per period (Nyquist = 0.5); ``psd`` is
    normalized so that its mean over the band equals the period variance
    divided by the Nyquist bandwidth — i.e. integrating the PSD over
    frequency recovers ``var(T)``.
    """

    frequency: np.ndarray
    psd: np.ndarray
    segment_length: int
    segment_count: int

    def band_mean(self, low: float, high: float) -> float:
        """Mean PSD in the band ``[low, high]`` (cycles/period)."""
        if not (0.0 <= low < high <= 0.5):
            raise ValueError(f"band must satisfy 0 <= low < high <= 0.5, got [{low}, {high}]")
        mask = (self.frequency >= low) & (self.frequency <= high)
        if not np.any(mask):
            raise ValueError("band contains no frequency bins")
        return float(np.mean(self.psd[mask]))

    @property
    def whiteness_ratio(self) -> float:
        """Low-band over high-band PSD: ~1 white, << 1 regulated.

        Compares the bottom and top sixths of the band — a single
        dimensionless spectral signature of the Charlie regulation.
        """
        return self.band_mean(1e-9, 0.5 / 6.0) / self.band_mean(0.5 - 0.5 / 6.0, 0.5)

    def dominant_line(self) -> Tuple[float, float]:
        """(frequency, prominence) of the strongest spectral line.

        Prominence is the bin's PSD over the band median — a ripple
        attack shows up as a line with prominence far above ~1.
        """
        median = float(np.median(self.psd))
        index = int(np.argmax(self.psd))
        prominence = float(self.psd[index] / median) if median > 0 else float("inf")
        return float(self.frequency[index]), prominence


def period_spectrum(
    periods_ps: Sequence[float],
    segment_length: Optional[int] = None,
) -> PeriodSpectrum:
    """Welch-averaged PSD of a period sequence.

    Parameters
    ----------
    periods_ps:
        Consecutive oscillation periods.
    segment_length:
        FFT segment size (power of two recommended); defaults to an
        eighth of the data, capped at 512, so at least ~8 segments
        average out estimation noise.
    """
    periods = np.asarray(periods_ps, dtype=float)
    if periods.ndim != 1 or periods.size < 64:
        raise ValueError(f"need at least 64 periods, got {periods.size}")
    if segment_length is None:
        segment_length = min(512, 2 ** int(np.floor(np.log2(periods.size // 8))))
        segment_length = max(segment_length, 16)
    if segment_length < 16 or segment_length > periods.size:
        raise ValueError(
            f"segment length {segment_length} incompatible with {periods.size} periods"
        )

    demeaned = periods - float(np.mean(periods))
    window = np.hanning(segment_length)
    window_power = float(np.sum(window**2))
    hop = segment_length // 2  # 50 % overlap
    spectra = []
    start = 0
    while start + segment_length <= demeaned.size:
        segment = demeaned[start : start + segment_length] * window
        transform = np.fft.rfft(segment)
        spectra.append(np.abs(transform) ** 2)
        start += hop
    if not spectra:
        raise ValueError("no full segment fits the data")
    # One-sided PSD, normalized against the window power and the 0.5
    # cycles/period Nyquist bandwidth so that integrating the PSD over
    # frequency recovers the period variance (verified by the tests).
    psd = np.mean(spectra, axis=0) / window_power / 0.5
    frequency = np.fft.rfftfreq(segment_length, d=1.0)
    # Drop the DC bin: the mean was removed, its residual is meaningless.
    return PeriodSpectrum(
        frequency=frequency[1:],
        psd=psd[1:],
        segment_length=segment_length,
        segment_count=len(spectra),
    )
