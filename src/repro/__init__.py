"""repro -- reproduction of Cherkaoui et al., "Comparison of Self-Timed
Ring and Inverter Ring Oscillators as Entropy Sources in FPGAs"
(DATE 2012).

Quick start::

    from repro import Board, InverterRingOscillator, SelfTimedRing

    board = Board()
    iro = InverterRingOscillator.on_board(board, stage_count=5)
    str_ring = SelfTimedRing.on_board(board, stage_count=96)
    print(iro.predicted_frequency_mhz(), str_ring.predicted_frequency_mhz())
    print(str_ring.simulate(256, seed=1).trace.period_jitter_ps())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.core.charlie import CharlieDiagram, CharlieParameters, DraftingEffect
from repro.core.comparison import ComparisonReport, compare_entropy_sources
from repro.core.temporal_model import SteadyState, solve_steady_state
from repro.fpga.board import Board, BoardBank
from repro.fpga.calibration import cyclone_iii_calibration
from repro.fpga.voltage import SupplySpec
from repro.rings.iro import InverterRingOscillator
from repro.rings.modes import OscillationMode, classify_trace
from repro.rings.str_ring import SelfTimedRing
from repro.trng.elementary import ElementaryTrng

__version__ = "1.0.0"

__all__ = [
    "CharlieDiagram",
    "CharlieParameters",
    "DraftingEffect",
    "ComparisonReport",
    "compare_entropy_sources",
    "SteadyState",
    "solve_steady_state",
    "Board",
    "BoardBank",
    "cyclone_iii_calibration",
    "SupplySpec",
    "InverterRingOscillator",
    "OscillationMode",
    "classify_trace",
    "SelfTimedRing",
    "ElementaryTrng",
    "__version__",
]
