"""Jitter measurement procedures (paper Section V-D).

Two procedures are provided, mirroring what the authors did:

* :func:`measure_period_jitter_direct` — point the scope at the ring
  output and read sigma_period.  Faithful for tens of picoseconds,
  *biased* for the 2-3 ps the rings actually produce, because the scope's
  constant time-stamp error adds in quadrature.
* :func:`measure_period_jitter_divider` — the Fig. 10 method: divide the
  oscillator on-chip, measure the cycle-to-cycle jitter of the divided
  signal (now tens of picoseconds, far above scope noise), check the
  method's normality hypothesis, and recover sigma_p via Eq. 6.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from repro.core.jitter_model import recover_period_jitter_from_divided
from repro.measurement.counters import RippleDivider
from repro.measurement.oscilloscope import Oscilloscope
from repro.measurement.probes import LvdsOutputPath
from repro.simulation.noise import SeedLike, make_rng
from repro.simulation.waveform import EdgeTrace
from repro.stats.normality import NormalityReport, check_normality


@dataclasses.dataclass(frozen=True)
class DirectJitterReading:
    """Result of the naive direct measurement."""

    sigma_period_ps: float
    mean_period_ps: float
    period_count: int
    timestamp_noise_ps: float

    @property
    def noise_floor_ps(self) -> float:
        """Scope contribution to the reading (two time stamps per period)."""
        return float(np.sqrt(2.0) * self.timestamp_noise_ps)

    @property
    def is_noise_limited(self) -> bool:
        """True when the reading mostly reflects the scope, not the ring."""
        return self.sigma_period_ps < 2.0 * self.noise_floor_ps


@dataclasses.dataclass(frozen=True)
class DividerJitterReading:
    """Result of the Fig. 10 divider method."""

    sigma_period_ps: float
    divided_cycle_to_cycle_ps: float
    periods_per_measurement: int
    measurement_count: int
    normality: NormalityReport

    @property
    def hypothesis_ok(self) -> bool:
        """The method's pre-condition: divided c2c jitter is Gaussian.

        The paper "systematically verifies this hypothesis ... by simply
        checking the cycle-to-cycle period histogram of osc_mes".
        """
        return self.normality.is_normal


def measure_period_jitter_direct(
    trace: EdgeTrace,
    scope: Optional[Oscilloscope] = None,
    output_path: Optional[LvdsOutputPath] = None,
    seed: SeedLike = None,
) -> DirectJitterReading:
    """Read sigma_period directly off the scope."""
    rng = make_rng(seed)
    scope = scope if scope is not None else Oscilloscope(seed=rng)
    path = output_path if output_path is not None else LvdsOutputPath.lvds()
    transported = path.transport(trace, seed=rng)
    acquired = scope.acquire(transported)
    periods = acquired.periods_ps()
    return DirectJitterReading(
        sigma_period_ps=float(np.std(periods, ddof=1)),
        mean_period_ps=float(np.mean(periods)),
        period_count=int(periods.size),
        timestamp_noise_ps=scope.spec.timestamp_noise_ps,
    )


def measure_period_jitter_divider(
    trace: EdgeTrace,
    divider: RippleDivider = RippleDivider(),
    scope: Optional[Oscilloscope] = None,
    output_path: Optional[LvdsOutputPath] = None,
    seed: SeedLike = None,
) -> DividerJitterReading:
    """Recover sigma_p with the on-chip divider method (Fig. 10, Eq. 6)."""
    rng = make_rng(seed)
    scope = scope if scope is not None else Oscilloscope(seed=rng)
    path = output_path if output_path is not None else LvdsOutputPath.lvds()

    divided = divider.divide(trace, seed=rng)
    transported = path.transport(divided, seed=rng)
    acquired = scope.acquire(transported)
    divided_periods = acquired.periods_ps()
    if divided_periods.size < 8:
        raise ValueError(
            f"only {divided_periods.size} divided periods available; feed a "
            "longer trace or a smaller divider"
        )
    deltas = np.diff(divided_periods)
    sigma_cc = float(np.std(deltas, ddof=1))
    normality = check_normality(deltas)
    sigma_p = recover_period_jitter_from_divided(sigma_cc, divider.periods_per_measurement)
    return DividerJitterReading(
        sigma_period_ps=sigma_p,
        divided_cycle_to_cycle_ps=sigma_cc,
        periods_per_measurement=divider.periods_per_measurement,
        measurement_count=int(divided_periods.size),
        normality=normality,
    )
