"""Instrumentation substrate — the simulated LeCroy scope and on-chip logic.

The paper measures frequency and jitter with a LeCroy WavePro 735 Zi
through the device's LVDS outputs, and works around the scope's limited
single-shot resolution with an on-chip ``2^n`` divider (Fig. 10).  This
subpackage models that whole chain:

* :mod:`repro.measurement.probes` — the LVDS buffer + differential probe
  (fixed delay, small additive jitter).
* :mod:`repro.measurement.oscilloscope` — sample-clock quantization and
  trigger noise; the reason direct ps-level jitter readings are biased.
* :mod:`repro.measurement.counters` — the on-chip ripple divider.
* :mod:`repro.measurement.jitter` — the measurement procedures: direct
  period jitter, and the divider method with its normality
  pre-check and the Eq. 6 recovery.
* :mod:`repro.measurement.differential` — the differential alternative:
  a co-located ring pair on one board, simultaneously triggered windows,
  common-mode ripple cancelled by subtraction (EXT12).
"""

from repro.measurement.probes import LvdsOutputPath
from repro.measurement.oscilloscope import Oscilloscope, OscilloscopeSpec
from repro.measurement.counters import RippleDivider, divide_periods
from repro.measurement.frequency_counter import (
    FrequencyCounter,
    FrequencyCounterSpec,
    FrequencyReading,
)
from repro.measurement.jitter import (
    DirectJitterReading,
    DividerJitterReading,
    measure_period_jitter_direct,
    measure_period_jitter_divider,
)
from repro.measurement.differential import (
    ColocatedPair,
    DifferentialJitterReading,
    measure_pair,
    windowed_durations,
    worst_case_ripple,
)

__all__ = [
    "LvdsOutputPath",
    "Oscilloscope",
    "OscilloscopeSpec",
    "RippleDivider",
    "divide_periods",
    "FrequencyCounter",
    "FrequencyCounterSpec",
    "FrequencyReading",
    "DirectJitterReading",
    "DividerJitterReading",
    "measure_period_jitter_direct",
    "measure_period_jitter_divider",
    "ColocatedPair",
    "DifferentialJitterReading",
    "measure_pair",
    "windowed_durations",
    "worst_case_ripple",
]
