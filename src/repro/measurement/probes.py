"""The LVDS output path: on-chip buffer, pins, differential probe.

The paper routes the oscillator to the scope through the device's LVDS
interface and a 4 GHz active differential probe precisely because the
standard I/O circuitry is slow and noisy.  We model the output path as a
fixed propagation delay plus a small additive Gaussian jitter per edge;
the *standard* (non-LVDS) path carries substantially more jitter, which
lets experiments show why the authors bothered.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.simulation.noise import SeedLike, make_rng
from repro.simulation.waveform import EdgeTrace


@dataclasses.dataclass(frozen=True)
class LvdsOutputPath:
    """An output buffer + probe path.

    Attributes
    ----------
    delay_ps:
        Fixed propagation delay (irrelevant for jitter, kept for
        completeness of the timing budget).
    jitter_sigma_ps:
        Additive Gaussian edge jitter of the whole path.  Around 1-2 ps
        for the LVDS + active-probe chain; an order of magnitude more for
        standard single-ended I/O.
    """

    delay_ps: float = 800.0
    jitter_sigma_ps: float = 1.0

    def __post_init__(self) -> None:
        if self.delay_ps < 0.0:
            raise ValueError(f"delay must be non-negative, got {self.delay_ps}")
        if self.jitter_sigma_ps < 0.0:
            raise ValueError(f"jitter sigma must be non-negative, got {self.jitter_sigma_ps}")

    @classmethod
    def lvds(cls) -> "LvdsOutputPath":
        """The paper's measurement path: LVDS + 4 GHz differential probe."""
        return cls(delay_ps=800.0, jitter_sigma_ps=1.0)

    @classmethod
    def standard_io(cls) -> "LvdsOutputPath":
        """A slow standard I/O pin — what the paper avoids."""
        return cls(delay_ps=2500.0, jitter_sigma_ps=12.0)

    def transport(self, trace: EdgeTrace, seed: SeedLike = None) -> EdgeTrace:
        """Propagate an edge trace through the output path.

        Adds the fixed delay and independent Gaussian jitter per edge.
        Edges are re-sorted afterwards: with pathological jitter values
        two edges could swap, and a monotone trace is part of this
        type's contract.
        """
        rng = make_rng(seed)
        times = trace.times_ps + self.delay_ps
        if self.jitter_sigma_ps > 0.0 and len(trace) > 0:
            times = times + rng.normal(0.0, self.jitter_sigma_ps, size=len(trace))
        times = np.sort(times)
        return EdgeTrace(times, first_value=trace.first_value)
