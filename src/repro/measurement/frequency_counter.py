"""A reciprocal frequency counter.

The paper reports ring frequencies to five significant digits (Table II)
— that is a frequency counter's job, not a scope cursor's.  This model
implements the standard reciprocal-counting scheme: count whole input
cycles over a gate interval and time the gate against the instrument's
own (slightly wrong, slightly jittery) timebase.

Error terms modelled:

* **timebase inaccuracy** — a relative frequency offset of the counter's
  reference oscillator (spec-sheet "aging + temperature" figure);
* **plus/minus one count quantization** — the gate never lines up with
  the input edges;
* **trigger jitter** — Gaussian noise on the gate open/close instants.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from repro.simulation.noise import SeedLike, make_rng
from repro.simulation.waveform import EdgeTrace


@dataclasses.dataclass(frozen=True)
class FrequencyCounterSpec:
    """Accuracy characteristics of the counter."""

    timebase_error_rel: float = 1e-7
    trigger_jitter_ps: float = 50.0
    gate_time_ps: float = 1.0e9  # 1 ms

    def __post_init__(self) -> None:
        if abs(self.timebase_error_rel) >= 0.01:
            raise ValueError("timebase error beyond 1% is not a counter, it's a guess")
        if self.trigger_jitter_ps < 0.0:
            raise ValueError("trigger jitter must be non-negative")
        if self.gate_time_ps <= 0.0:
            raise ValueError("gate time must be positive")

    @classmethod
    def ideal(cls) -> "FrequencyCounterSpec":
        return cls(timebase_error_rel=0.0, trigger_jitter_ps=0.0)


@dataclasses.dataclass(frozen=True)
class FrequencyReading:
    """One gated measurement."""

    frequency_mhz: float
    cycles_counted: int
    gate_time_ps: float

    @property
    def resolution_mhz(self) -> float:
        """One-count resolution: one cycle over the gate, in MHz."""
        return 1e6 / self.gate_time_ps


class FrequencyCounter:
    """Reciprocal counter operating on edge traces.

    The trace must span at least one gate interval; use the ring's
    ``sample_periods`` fast path to produce long traces cheaply.
    """

    def __init__(self, spec: FrequencyCounterSpec = FrequencyCounterSpec(), seed: SeedLike = None) -> None:
        self._spec = spec
        self._rng = make_rng(seed)

    @property
    def spec(self) -> FrequencyCounterSpec:
        return self._spec

    def measure_trace(self, trace: EdgeTrace) -> FrequencyReading:
        """Gate a recorded edge trace and read the frequency."""
        times = np.asarray(trace.times_ps, dtype=float)
        rising = times[0 if trace.first_value == 1 else 1 :: 2]
        if rising.size < 2:
            raise ValueError("trace too short: need at least two rising edges")
        return self._measure_rising(rising)

    def measure_periods(self, periods_ps: np.ndarray, start_ps: float = 0.0) -> FrequencyReading:
        """Gate a period population directly (fast-path friendly)."""
        periods = np.asarray(periods_ps, dtype=float)
        if periods.ndim != 1 or periods.size < 2:
            raise ValueError("need at least two periods")
        rising = start_ps + np.cumsum(periods)
        return self._measure_rising(rising)

    def _measure_rising(self, rising: np.ndarray) -> FrequencyReading:
        spec = self._spec
        gate_open = rising[0]
        if spec.trigger_jitter_ps > 0.0:
            gate_open += float(self._rng.normal(0.0, spec.trigger_jitter_ps))
        gate_close = gate_open + spec.gate_time_ps
        if spec.trigger_jitter_ps > 0.0:
            gate_close += float(self._rng.normal(0.0, spec.trigger_jitter_ps))
        if gate_close > rising[-1]:
            raise ValueError(
                f"trace ({rising[-1] - rising[0]:.0f} ps) shorter than the "
                f"gate time ({spec.gate_time_ps:.0f} ps); record more periods"
            )
        first = int(np.searchsorted(rising, gate_open, side="left"))
        last = int(np.searchsorted(rising, gate_close, side="right")) - 1
        cycles = last - first
        if cycles < 1:
            raise ValueError("no full input cycle inside the gate")
        # The instrument believes its own timebase:
        apparent_gate = (gate_close - gate_open) * (1.0 + spec.timebase_error_rel)
        frequency_mhz = cycles / apparent_gate * 1e6
        return FrequencyReading(
            frequency_mhz=frequency_mhz,
            cycles_counted=cycles,
            gate_time_ps=spec.gate_time_ps,
        )

    def measure_ring(self, ring, seed: SeedLike = 0) -> FrequencyReading:
        """Convenience: measure a ring through its fast sampling path."""
        nominal = ring.predicted_period_ps()
        count = int(math.ceil(self._spec.gate_time_ps / nominal)) + 8
        periods = ring.sample_periods(count, seed=seed)
        return self.measure_periods(periods)
