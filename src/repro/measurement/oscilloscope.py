"""A virtual wide-band sampling oscilloscope.

Models the two error sources the paper identifies in direct jitter
measurements (Section V-D2):

* **sample-clock quantization** — a real-time scope time-stamps an edge
  on its sampling grid (with interpolation, a fraction of the sample
  period).  This error is bounded and *does not grow* with the measured
  interval;
* **trigger/front-end noise** — additive Gaussian noise per time stamp.

Both are negligible when measuring a 40 ns accumulated interval but
swamp a 2-3 ps period jitter — which is precisely why the paper measures
jitter through the divider method instead of reading sigma_period off
the scope directly.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.simulation.noise import SeedLike, make_rng
from repro.simulation.waveform import EdgeTrace
from repro.units import PS_PER_NS


@dataclasses.dataclass(frozen=True)
class OscilloscopeSpec:
    """Acquisition characteristics of the scope.

    The defaults follow the LeCroy WavePro 735 Zi class of instrument:
    40 GS/s sampling (25 ps raw grid) with sinx/x interpolation giving an
    effective edge-placement grid of a few picoseconds, plus ~2 ps rms
    trigger noise.
    """

    sample_period_ps: float = 25.0
    interpolation_factor: int = 4
    trigger_noise_ps: float = 2.0
    memory_edges: int = 2_000_000

    def __post_init__(self) -> None:
        if self.sample_period_ps <= 0.0:
            raise ValueError(f"sample period must be positive, got {self.sample_period_ps}")
        if self.interpolation_factor < 1:
            raise ValueError(f"interpolation factor must be >= 1, got {self.interpolation_factor}")
        if self.trigger_noise_ps < 0.0:
            raise ValueError(f"trigger noise must be non-negative, got {self.trigger_noise_ps}")
        if self.memory_edges < 2:
            raise ValueError(f"memory must hold at least 2 edges, got {self.memory_edges}")

    @property
    def effective_grid_ps(self) -> float:
        """Edge-placement grid after interpolation."""
        return self.sample_period_ps / self.interpolation_factor

    @property
    def timestamp_noise_ps(self) -> float:
        """RMS single-edge time-stamp error (quantization + trigger)."""
        quantization_rms = self.effective_grid_ps / np.sqrt(12.0)
        return float(np.hypot(quantization_rms, self.trigger_noise_ps))

    @classmethod
    def wavepro_735zi(cls) -> "OscilloscopeSpec":
        """The paper's instrument."""
        return cls()

    @classmethod
    def ideal(cls) -> "OscilloscopeSpec":
        """An error-free instrument (for validating the pipeline)."""
        return cls(
            sample_period_ps=1e-6,
            interpolation_factor=1,
            trigger_noise_ps=0.0,
        )


class Oscilloscope:
    """Acquires edge traces and computes the scope's statistical readouts."""

    def __init__(self, spec: OscilloscopeSpec = OscilloscopeSpec(), seed: SeedLike = None) -> None:
        self._spec = spec
        self._rng = make_rng(seed)

    @property
    def spec(self) -> OscilloscopeSpec:
        return self._spec

    # ------------------------------------------------------------------
    # acquisition
    # ------------------------------------------------------------------
    def acquire(self, trace: EdgeTrace) -> EdgeTrace:
        """Time-stamp a physical edge trace through the scope front end.

        Each edge instant receives Gaussian trigger noise and is snapped
        to the interpolated sampling grid.  Raises if the signal is too
        fast for the grid (two edges collapsing onto one time stamp).
        """
        if len(trace) > self._spec.memory_edges:
            raise ValueError(
                f"trace of {len(trace)} edges exceeds scope memory "
                f"({self._spec.memory_edges} edges)"
            )
        times = np.asarray(trace.times_ps, dtype=float)
        if self._spec.trigger_noise_ps > 0.0 and times.size > 0:
            times = times + self._rng.normal(0.0, self._spec.trigger_noise_ps, size=times.size)
        grid = self._spec.effective_grid_ps
        times = np.round(times / grid) * grid
        times = np.sort(times)
        if times.size >= 2 and np.any(np.diff(times) <= 0.0):
            raise ValueError(
                "signal too fast for the scope: consecutive edges collapsed "
                f"onto the {grid} ps acquisition grid"
            )
        return EdgeTrace(times, first_value=trace.first_value)

    # ------------------------------------------------------------------
    # statistical readouts (the scope's "measure" menu)
    # ------------------------------------------------------------------
    def period_population_ps(self, trace: EdgeTrace) -> np.ndarray:
        """Acquire and return the measured period population."""
        return self.acquire(trace).periods_ps()

    def measure_frequency_mhz(self, trace: EdgeTrace) -> float:
        """Mean frequency readout."""
        return self.acquire(trace).mean_frequency_mhz()

    def measure_period_jitter_ps(self, trace: EdgeTrace) -> float:
        """Direct sigma_period readout — biased for ps-level jitter."""
        return self.acquire(trace).period_jitter_ps()

    def measure_cycle_to_cycle_jitter_ps(self, trace: EdgeTrace) -> float:
        """Direct cycle-to-cycle jitter readout."""
        return self.acquire(trace).cycle_to_cycle_jitter_ps()

    def period_histogram(
        self, trace: EdgeTrace, bin_width_ps: float = 1.0
    ) -> "PeriodHistogram":
        """The scope's period-jitter histogram tool (Fig. 9)."""
        periods = self.period_population_ps(trace)
        return PeriodHistogram.from_periods(periods, bin_width_ps)


@dataclasses.dataclass(frozen=True)
class PeriodHistogram:
    """Histogram of a period population, as a scope would display it."""

    bin_edges_ps: np.ndarray
    counts: np.ndarray
    mean_ps: float
    sigma_ps: float

    @classmethod
    def from_periods(cls, periods_ps: np.ndarray, bin_width_ps: float) -> "PeriodHistogram":
        periods = np.asarray(periods_ps, dtype=float)
        if periods.size < 2:
            raise ValueError("need at least two periods to build a histogram")
        if bin_width_ps <= 0.0:
            raise ValueError(f"bin width must be positive, got {bin_width_ps}")
        low = np.floor(periods.min() / bin_width_ps) * bin_width_ps
        high = np.ceil(periods.max() / bin_width_ps) * bin_width_ps
        if high <= low:
            high = low + bin_width_ps
        edges = np.arange(low, high + 0.5 * bin_width_ps, bin_width_ps)
        counts, edges = np.histogram(periods, bins=edges)
        return cls(
            bin_edges_ps=edges,
            counts=counts,
            mean_ps=float(np.mean(periods)),
            sigma_ps=float(np.std(periods, ddof=1)),
        )

    @property
    def bin_centers_ps(self) -> np.ndarray:
        return 0.5 * (self.bin_edges_ps[:-1] + self.bin_edges_ps[1:])

    def render_ascii(self, width: int = 50) -> str:
        """Poor man's scope display, handy in example scripts."""
        lines = []
        peak = max(int(self.counts.max()), 1)
        for center, count in zip(self.bin_centers_ps, self.counts):
            bar = "#" * int(round(width * count / peak))
            lines.append(f"{center / PS_PER_NS:9.4f} ns | {bar}")
        lines.append(f"mean = {self.mean_ps:.1f} ps, sigma = {self.sigma_ps:.2f} ps")
        return "\n".join(lines)
