"""The on-chip frequency divider of the measurement method (Fig. 10).

``osc_mes`` is generated inside the chip by counting ``2n`` rising events
of ``osc``: a ripple counter whose MSB toggles every ``events_per_toggle``
rising edges.  One full ``osc_mes`` period therefore spans
``2 * events_per_toggle`` oscillator periods — long enough for the
accumulated random jitter (which grows like sqrt of the period count) to
tower above the scope's constant time-stamp error.

The divider is on-chip and clocked by the oscillator itself, so it adds
only a tiny, constant buffering jitter — modelled here as an optional
per-edge Gaussian term.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.simulation.noise import SeedLike, make_rng
from repro.simulation.waveform import EdgeTrace


def divide_periods(periods_ps: np.ndarray, periods_per_measurement: int) -> np.ndarray:
    """Sum consecutive oscillator periods into ``osc_mes`` periods.

    ``Tmes_j = sum of N consecutive T_i`` — the time-domain view of what
    the ripple counter does.  Incomplete trailing groups are discarded.
    """
    if periods_per_measurement < 1:
        raise ValueError(
            f"periods per measurement must be positive, got {periods_per_measurement}"
        )
    periods = np.asarray(periods_ps, dtype=float)
    usable = (periods.size // periods_per_measurement) * periods_per_measurement
    if usable == 0:
        raise ValueError(
            f"need at least {periods_per_measurement} periods, got {periods.size}"
        )
    return periods[:usable].reshape(-1, periods_per_measurement).sum(axis=1)


@dataclasses.dataclass(frozen=True)
class RippleDivider:
    """An ``n``-bit ripple counter dividing the oscillator output.

    Attributes
    ----------
    bit_count:
        Counter width: the output toggles on every ``2**bit_count``-th
        rising input edge (counter overflow clocks a T flip-flop), so a
        full ``osc_mes`` period spans ``2 * 2**bit_count`` oscillator
        periods.
    buffer_jitter_ps:
        Small additive Gaussian jitter of the counter's output flop and
        routing (constant, does not accumulate).
    """

    bit_count: int = 7
    buffer_jitter_ps: float = 0.5

    def __post_init__(self) -> None:
        if self.bit_count < 1:
            raise ValueError(f"bit count must be positive, got {self.bit_count}")
        if self.buffer_jitter_ps < 0.0:
            raise ValueError(f"buffer jitter must be non-negative, got {self.buffer_jitter_ps}")

    @property
    def events_per_toggle(self) -> int:
        """Rising input edges per output toggle: ``2**bit_count``."""
        return 2**self.bit_count

    @property
    def periods_per_measurement(self) -> int:
        """Oscillator periods per full ``osc_mes`` period (``2 * 2**n``)."""
        return 2 * self.events_per_toggle

    def divide(self, trace: EdgeTrace, seed: SeedLike = None) -> EdgeTrace:
        """Produce the ``osc_mes`` edge trace from the oscillator trace.

        The output toggles on every ``events_per_toggle``-th rising edge
        of the input.  Rising edges are the even- or odd-indexed edges
        depending on the trace's first value.
        """
        times = np.asarray(trace.times_ps, dtype=float)
        # Rising edges: those whose post-edge value is 1.
        first_rising_index = 0 if trace.first_value == 1 else 1
        rising = times[first_rising_index::2]
        toggle_times = rising[self.events_per_toggle - 1 :: self.events_per_toggle]
        if toggle_times.size < 2:
            raise ValueError(
                f"trace too short: {rising.size} rising edges cannot feed a "
                f"divider toggling every {self.events_per_toggle} edges"
            )
        if self.buffer_jitter_ps > 0.0:
            rng = make_rng(seed)
            toggle_times = np.sort(
                toggle_times + rng.normal(0.0, self.buffer_jitter_ps, size=toggle_times.size)
            )
        return EdgeTrace(toggle_times, first_value=1)
