"""Differential jitter-transfer measurement with a co-located ring pair.

The paper measures period jitter with the ÷2ⁿ counter method (Fig. 10 /
Eq. 6, claim C7): accumulate ``n`` ring periods per measurement window
and first-difference successive windows.  That first difference is what
makes the method vulnerable to *common-mode* deterministic jitter:
supply ripple whose period sits near **two** measurement windows drives
successive windows in anti-phase, so the cycle-to-cycle statistic
absorbs the full ripple swing and the recovered sigma reads high.

The differential (jitter-transfer) alternative places a **second,
co-located ring** on the same die.  Both rings share every board-level
delay factor — the C6 process model's global speed factor statically,
and any global deterministic modulation dynamically — while their local
Gaussian jitter streams stay independent.  Measuring both rings over
*simultaneously triggered* windows and subtracting cancels the shared
modulation in each window pair; what survives is the two rings'
independent accumulated jitter, from which the per-ring sigma follows::

    D_j = W_Aj - W_Bj            (same trigger, same absolute window)
    Var(D) = n * (sigma_A^2 + sigma_B^2)   ->   sigma_p = sqrt(Var(D) / 2n)

The measurement procedure modelled here is the re-armed counter: a
shared reference clock starts window ``j`` of *both* rings at the same
instant ``j * spacing``; each counter then times its own ring's next
``n`` periods.  (Successive windows therefore sample disjoint stretches
of each ring's period stream, which keeps the D_j independent.)  The
rings' nominal periods differ by a few percent — placement and per-LUT
mismatch — so the two windows do not end together, and a small fraction
of the common mode (the unshared window tail) leaks through; the EXT12
experiment quantifies exactly that residual against the counter
method's full-swing exposure.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

import numpy as np

from repro.core.jitter_model import recover_period_jitter_from_divided
from repro.simulation.noise import (
    DeterministicModulation,
    SeedLike,
    SinusoidalModulation,
    make_rng,
)


@dataclasses.dataclass(frozen=True)
class ColocatedPair:
    """Two rings of the same design placed side by side on one board.

    Both rings resolve their delays against the *same*
    :class:`~repro.fpga.process.DeviceVariation` — they share the
    device's global speed factor — but occupy disjoint LUT columns
    (``first_lut`` offset), so their per-LUT mismatch draws differ.
    That is the physical layout of a differential measurement: common
    board, common environment, independent local noise.
    """

    ring_a: object
    ring_b: object

    @classmethod
    def on_board(cls, board, stage_count: int = 9, lut_gap: Optional[int] = None) -> "ColocatedPair":
        """Place the pair on ``board``: ring A at LUT 0, ring B just after.

        ``lut_gap`` overrides ring B's starting LUT (default: immediately
        adjacent, ``first_lut = stage_count``).
        """
        from repro.rings.iro import InverterRingOscillator

        if stage_count < 3:
            raise ValueError(f"need at least 3 stages, got {stage_count}")
        offset = int(lut_gap) if lut_gap is not None else int(stage_count)
        if offset < stage_count:
            raise ValueError(
                f"lut_gap {offset} would overlap ring A's {stage_count} LUTs"
            )
        return cls(
            ring_a=InverterRingOscillator.on_board(board, stage_count, first_lut=0),
            ring_b=InverterRingOscillator.on_board(board, stage_count, first_lut=offset),
        )

    @property
    def trigger_spacing_ps(self) -> float:
        """Shared re-arm period: both counters restart every this often.

        Slightly above the slower ring's nominal window so a window
        nominally completes before the next trigger.
        """
        return 1.05 * max(
            self.ring_a.predicted_period_ps(), self.ring_b.predicted_period_ps()
        )

    def spacing_for(self, periods_per_window: int) -> float:
        return float(periods_per_window) * self.trigger_spacing_ps

    @property
    def true_sigma_ps(self) -> float:
        """RMS of the two rings' analytic period jitters (the estimand)."""
        return float(
            np.sqrt(
                0.5
                * (
                    self.ring_a.predicted_period_jitter_ps() ** 2
                    + self.ring_b.predicted_period_jitter_ps() ** 2
                )
            )
        )


def worst_case_ripple(
    pair: ColocatedPair, periods_per_window: int, amplitude: float
) -> SinusoidalModulation:
    """The ripple the counter method is most exposed to.

    Period = two measurement windows: successive windows then average
    anti-phase half-cycles of the ripple, so the first difference of the
    counter method absorbs the full swing while simultaneous window
    *pairs* still share (and cancel) it.
    """
    return SinusoidalModulation(
        amplitude=float(amplitude),
        period_ps=2.0 * pair.spacing_for(periods_per_window),
    )


def windowed_durations(
    ring,
    window_count: int,
    periods_per_window: int,
    seed: SeedLike = None,
    modulation: Optional[DeterministicModulation] = None,
    spacing_ps: Optional[float] = None,
) -> np.ndarray:
    """Re-armed counter windows: duration of ``n`` periods from each trigger.

    Window ``j`` starts at the shared absolute instant ``j * spacing_ps``
    and sums ``periods_per_window`` consecutive periods, each drawn as
    ``T * (1 + w * factor(t)) + N(0, sigma_p^2)`` with the modulation
    evaluated at the period's nominal start time — the same per-period
    model as :meth:`InverterRingOscillator.sample_periods`, restarted at
    every trigger.
    """
    if window_count < 2:
        raise ValueError(f"need at least 2 windows, got {window_count}")
    if periods_per_window < 1:
        raise ValueError(
            f"periods per window must be positive, got {periods_per_window}"
        )
    nominal = ring.predicted_period_ps()
    if spacing_ps is None:
        spacing_ps = float(periods_per_window) * nominal
    if spacing_ps <= 0.0:
        raise ValueError(f"spacing must be positive, got {spacing_ps}")
    rng = make_rng(seed)
    weight = ring.mean_supply_weight
    sigma = ring.predicted_period_jitter_ps()
    starts = (
        spacing_ps * np.arange(window_count)[:, None]
        + nominal * np.arange(periods_per_window)[None, :]
    )
    if modulation is None:
        deterministic = np.full(window_count, nominal * periods_per_window)
    else:
        factors = modulation.factor_array(starts.reshape(-1)).reshape(starts.shape)
        deterministic = (nominal * (1.0 + weight * factors)).sum(axis=1)
    noise = rng.normal(0.0, sigma, size=(window_count, periods_per_window)).sum(axis=1)
    return deterministic + noise


@dataclasses.dataclass(frozen=True)
class DifferentialJitterReading:
    """One differential measurement and its counter-method reference.

    Both estimators consume the *same* windowed durations, so the
    comparison isolates the estimator, not the data: ``differential``
    subtracts simultaneous windows across rings (common mode cancels),
    ``counter`` first-differences successive windows of one ring (the
    C7 / Eq. 6 method, common mode survives).
    """

    window_count: int
    periods_per_window: int
    differential_sigma_ps: float
    counter_sigma_a_ps: float
    counter_sigma_b_ps: float
    true_sigma_a_ps: float
    true_sigma_b_ps: float

    @property
    def true_sigma_ps(self) -> float:
        return float(
            np.sqrt(0.5 * (self.true_sigma_a_ps**2 + self.true_sigma_b_ps**2))
        )

    @property
    def differential_bias(self) -> float:
        """Relative bias of the differential estimate vs the analytic sigma."""
        return self.differential_sigma_ps / self.true_sigma_ps - 1.0

    @property
    def counter_bias(self) -> float:
        """Relative bias of the (ring A) counter estimate vs its analytic sigma."""
        return self.counter_sigma_a_ps / self.true_sigma_a_ps - 1.0


def measure_pair(
    pair: ColocatedPair,
    window_count: int = 256,
    periods_per_window: int = 64,
    seed: SeedLike = None,
    modulation: Optional[DeterministicModulation] = None,
) -> DifferentialJitterReading:
    """Measure the pair once: differential and counter estimates side by side.

    The two rings draw independent noise streams (children of ``seed``)
    but see the identical modulation on the identical trigger grid —
    the simulation analogue of routing both rings to two channels of one
    measurement clock.
    """
    from repro.parallel.seeds import spawn_seeds

    seed_a, seed_b = spawn_seeds(seed, 2)
    spacing = pair.spacing_for(periods_per_window)
    durations_a = windowed_durations(
        pair.ring_a, window_count, periods_per_window, seed_a, modulation, spacing
    )
    durations_b = windowed_durations(
        pair.ring_b, window_count, periods_per_window, seed_b, modulation, spacing
    )
    difference = durations_a - durations_b
    differential_sigma = float(
        np.sqrt(np.var(difference, ddof=1) / (2.0 * periods_per_window))
    )
    counter_a = recover_period_jitter_from_divided(
        float(np.std(np.diff(durations_a), ddof=1)), periods_per_window
    )
    counter_b = recover_period_jitter_from_divided(
        float(np.std(np.diff(durations_b), ddof=1)), periods_per_window
    )
    return DifferentialJitterReading(
        window_count=int(window_count),
        periods_per_window=int(periods_per_window),
        differential_sigma_ps=differential_sigma,
        counter_sigma_a_ps=float(counter_a),
        counter_sigma_b_ps=float(counter_b),
        true_sigma_a_ps=float(pair.ring_a.predicted_period_jitter_ps()),
        true_sigma_b_ps=float(pair.ring_b.predicted_period_jitter_ps()),
    )


def bias_pair(
    reading: DifferentialJitterReading,
) -> Tuple[float, float]:
    """(differential bias, counter bias) of one reading — plot-ready."""
    return reading.differential_bias, reading.counter_bias
