"""Shim for environments without the ``wheel`` package.

``pip install -e . --no-build-isolation --no-use-pep517`` (and plain
``pip install -e .`` on modern toolchains) both work; all metadata lives
in ``pyproject.toml``.
"""

from setuptools import setup

setup()
