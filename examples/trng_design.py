#!/usr/bin/env python
"""Design an STR-based TRNG the way the paper's measurements enable.

The workflow a designer follows once the entropy source is characterized:

1. measure the period jitter of the source through the on-chip divider
   method (Fig. 10 / Eq. 6) — the only measurement a real lab can trust
   at the picosecond scale;
2. provision the sampling (reference) clock so the accumulated jitter
   reaches a target quality factor Q;
3. generate bits, check them with the randomness battery;
4. compare the raw stream against a von Neumann-corrected one.

The same flow runs for the IRO for contrast: the STR reaches a given Q
with a *length-independent* jitter budget, which is the paper's point —
you can size the STR for robustness (long ring) without re-provisioning
the sampler.
"""

from repro import Board, InverterRingOscillator, SelfTimedRing
from repro.core.characterization import measure_period_jitter
from repro.stats.entropy import bias, markov_entropy_per_bit
from repro.stats.randomness import run_battery
from repro.trng.assessment import assess_min_entropy
from repro.trng.phasewalk import PhaseWalkTrng, reference_period_for_q
from repro.trng.postprocessing import von_neumann

TARGET_Q = 0.2
BITS = 30_000


def design_and_run(ring, seed: int) -> None:
    print(f"--- {ring.name} ---")
    # Step 1: characterize the source (divider method, like the paper).
    reading = measure_period_jitter(ring, method="divider", period_count=8192, seed=seed)
    sigma = reading.sigma_period_ps
    period = reading.mean_period_ps
    print(
        f"measured: T = {period:.1f} ps, sigma_p = {sigma:.2f} ps "
        f"(divider method, hypothesis ok: "
        f"{reading.divider_reading.hypothesis_ok})"
    )

    # Step 2: provision the reference clock for the target Q.
    reference = reference_period_for_q(period, sigma, TARGET_Q)
    model = PhaseWalkTrng(period, sigma, 1.0, reference)
    print(
        f"provisioned: T_ref = {reference / 1e6:.2f} us "
        f"(throughput {1e12 / reference / 1e3:.1f} kbit/s), "
        f"Q = {model.q_factor:.3f}"
    )

    # Step 3: generate and test.
    bits = model.generate(BITS, seed=seed)
    battery = run_battery(bits)
    print(
        f"raw bits: bias = {bias(bits):+.4f}, "
        f"Markov entropy = {markov_entropy_per_bit(bits):.4f}, "
        f"battery: {'PASS' if battery.all_passed else 'FAIL ' + str(battery.failed_tests)}"
    )

    # Step 3b: a certification-style min-entropy assessment.
    assessment = assess_min_entropy(bits)
    print(
        f"90B-style min-entropy: {assessment.min_entropy:.3f} bit/bit "
        f"(limited by {assessment.limiting_estimator})"
    )

    # Step 4: post-process.
    corrected = von_neumann(bits)
    print(
        f"von Neumann: {corrected.size} bits kept "
        f"({corrected.size / bits.size:.0%}), bias = {bias(corrected):+.4f}"
    )
    print()


def main() -> None:
    board = Board()
    design_and_run(SelfTimedRing.on_board(board, 96), seed=11)
    design_and_run(InverterRingOscillator.on_board(board, 5), seed=12)

    print("Note how the STR's jitter figure is per *stage*, not per ring:")
    for stages in (16, 48, 96):
        ring = SelfTimedRing.on_board(board, stages)
        print(
            f"  STR {stages:3d}C: predicted sigma_p = "
            f"{ring.predicted_period_jitter_ps():.2f} ps (unchanged), "
            f"F = {ring.predicted_frequency_mhz():.0f} MHz"
        )


if __name__ == "__main__":
    main()
