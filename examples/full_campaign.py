#!/usr/bin/env python
"""One-call characterization campaign over a custom ring set.

The adoption-path API: declare the ring configurations you care about,
run the whole Section V measurement program over a manufactured board
bank, and get a single serializable report — the numbers a TRNG design
review actually asks for (frequency, voltage robustness, family
dispersion, single-period jitter, long-run diffusion, and the implied
TRNG provisioning at a target quality factor).
"""

import json

from repro import BoardBank
from repro.core.campaign import RingSpec, run_campaign

SPECS = [
    RingSpec("iro", 5),
    RingSpec("iro", 25),
    RingSpec("str", 24),
    RingSpec("str", 96),
    RingSpec("str", 32, token_count=10),  # a deliberately detuned STR
]


def main() -> None:
    bank = BoardBank.manufacture(board_count=5, seed=21)
    report = run_campaign(SPECS, bank=bank, jitter_periods=1536, q_target=0.2, seed=3)

    print(report.render())
    print()
    print("Notes:")
    str96 = report.result_for("STR 96C")
    iro5 = report.result_for("IRO 5C")
    print(
        f"- STR 96C vs IRO 5C: delta F {str96.delta_f:.0%} vs {iro5.delta_f:.0%}, "
        f"sigma_rel {str96.sigma_rel:.2%} vs {iro5.sigma_rel:.2%} "
        "(the paper's two headline robustness wins)"
    )
    detuned = report.result_for("STR 32C")
    print(
        f"- the detuned STR 32C (NT = 10) still locks and keeps sigma_p = "
        f"{detuned.period_jitter_ps:.1f} ps — the Section V-A window in action"
    )
    print(
        f"- TRNG provisioning uses the diffusion rate: e.g. STR 96C needs "
        f"T_ref = {str96.trng_reference_period_ps / 1e6:.0f} us for "
        f"Q = {report.q_target} (entropy bound {str96.trng_entropy_bound:.4f})"
    )

    path = "campaign.json"
    with open(path, "w") as handle:
        handle.write(report.to_json())
    print(f"\nfull report written to {path} "
          f"({len(json.loads(report.to_json())['results'])} rings)")


if __name__ == "__main__":
    main()
