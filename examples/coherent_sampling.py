#!/usr/bin/env python
"""Coherent-sampling TRNG across a manufactured device family (ref [7]).

The paper's closing argument: STR frequency stability across devices is
what makes coherent-sampling TRNGs deployable, because the scheme only
works while the two rings' detuning stays inside a narrow band.  This
example:

1. manufactures a board family and builds STR 96C rings on each device;
2. checks every cross-device pair against the capture band (and against
   the *lower* jitter-floor bound the model surfaces);
3. runs the counter-based generator on one healthy pair, showing the
   beat signal, the counter population, and the LSB bit quality;
4. plots the counter distribution in the terminal.
"""

import itertools

import numpy as np

from repro import BoardBank, SelfTimedRing
from repro.reporting.ascii_plot import plot_series
from repro.stats.entropy import bias, markov_entropy_per_bit
from repro.stats.randomness import run_battery
from repro.trng.coherent import CoherentSamplingTrng

BOARDS = 8
CAPTURE_BAND = 0.015


def main() -> None:
    bank = BoardBank.manufacture(board_count=BOARDS, seed=11)
    rings = [SelfTimedRing.on_board(board, 96) for board in bank]

    print(f"=== pair feasibility across {BOARDS} manufactured devices ===")
    healthy_pairs = []
    for (ia, ring_a), (ib, ring_b) in itertools.combinations(enumerate(rings), 2):
        trng = CoherentSamplingTrng(ring_a, ring_b, max_relative_detuning=CAPTURE_BAND)
        point = trng.design_point()
        status = []
        if not point.is_within_capture_band:
            status.append("OUT OF BAND")
        if not point.is_drift_dominated:
            status.append("below jitter floor")
        if not status:
            healthy_pairs.append((ia, ib, trng, point))
            status.append("ok")
        print(
            f"boards {ia + 1}+{ib + 1}: detuning {point.relative_detuning:7.3%}, "
            f"expected count {point.expected_count:7.1f}, "
            f"drift/diffusion {point.drift_to_diffusion_ratio:5.1f}  "
            f"[{', '.join(status)}]"
        )
    print(f"{len(healthy_pairs)} healthy pairs\n")

    if not healthy_pairs:
        raise SystemExit("no healthy pair in this family draw; try another seed")

    # Pick the pair with the largest expected count still drift-dominated.
    ia, ib, trng, point = max(healthy_pairs, key=lambda item: item[3].expected_count)
    print(f"=== running the generator on boards {ia + 1}+{ib + 1} ===")
    print(
        f"T_a = {point.period_a_ps:.1f} ps, T_b = {point.period_b_ps:.1f} ps, "
        f"beat = {point.beat_period_ps / 1e3:.1f} ns"
    )

    counts = trng.counter_values(60_000, seed=3)
    print(
        f"counter: mean {np.mean(counts):.1f} (expected "
        f"{point.expected_count:.1f}), sigma {np.std(counts):.1f} counts "
        f"(predicted >= {point.predicted_count_sigma:.1f})"
    )

    histogram, edges = np.histogram(counts, bins=24)
    centers = 0.5 * (edges[:-1] + edges[1:])
    print()
    print(
        plot_series(
            {"count histogram": (centers, histogram)},
            title="coherent-sampling counter distribution",
            x_label="counter value",
            y_label="occurrences",
            width=56,
            height=12,
        )
    )
    print()

    bits = trng.generate(2000, seed=5)
    battery = run_battery(bits)
    print(
        f"LSB bits: bias {bias(bits):+.4f}, Markov entropy "
        f"{markov_entropy_per_bit(bits):.4f}, battery "
        f"{'PASS' if battery.all_passed else 'FAIL: ' + str(battery.failed_tests)}"
    )
    print()
    print(
        "An IRO family at the same frequency would scatter its pairs far\n"
        "outside the capture band (see EXT2/EXT7) — the paper's Table II\n"
        "argument, exercised end to end."
    )


if __name__ == "__main__":
    main()
