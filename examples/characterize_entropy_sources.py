#!/usr/bin/env python
"""Replay the paper's whole evaluation section (Section V).

Runs every table/figure reproduction in paper order and prints each one
next to the published reference values.  This is the script to read when
checking how close the reproduction lands — the same data feeds
EXPERIMENTS.md.

Takes a few minutes: the jitter figures are real event-driven runs.
Pass ``--quick`` to shrink the simulated campaign sizes.
"""

import argparse

from repro.experiments import EXPERIMENT_IDS, run_experiment

QUICK_OVERRIDES = {
    "FIG9": {"period_count": 1024},
    "FIG10": {"iro_period_count": 4096, "str_period_count": 2048},
    "FIG11": {"lengths": (3, 9, 25, 60), "period_count": 1024},
    "FIG12": {"lengths": (4, 16, 48, 96), "period_count": 768},
    "SEC5A": {"period_count": 96},
    "EXT1": {"period_count": 1024},
    "EXT3": {"period_count": 3072},
    "EXT4": {"fast_bits": 20_000, "exact_bits": 32},
    "ABL3": {"board_count": 20},
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="shrink campaign sizes")
    parser.add_argument(
        "--only",
        nargs="*",
        default=None,
        metavar="ID",
        help=f"run only these experiment ids (known: {', '.join(EXPERIMENT_IDS)})",
    )
    args = parser.parse_args()

    ids = [eid.upper() for eid in args.only] if args.only else list(EXPERIMENT_IDS)
    failures = []
    for experiment_id in ids:
        overrides = QUICK_OVERRIDES.get(experiment_id, {}) if args.quick else {}
        result = run_experiment(experiment_id, **overrides)
        print()
        print("=" * 78)
        print(result.render())
        if not result.all_checks_pass:
            failures.append((experiment_id, result.failed_checks))

    print()
    print("=" * 78)
    if failures:
        for experiment_id, failed in failures:
            print(f"{experiment_id}: FAILED {failed}")
        raise SystemExit(1)
    print(f"All {len(ids)} reproductions passed their structural checks.")


if __name__ == "__main__":
    main()
