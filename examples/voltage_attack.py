#!/usr/bin/env python
"""Attack the oscillators through their power supply.

Two scenarios from the security literature the paper builds on:

* **static operating-point shift** ([1]): turn the core voltage knob and
  watch the oscillation frequency move.  The longer the STR, the less it
  moves; the IRO moves ~49 % per 0.4 V no matter what.
* **injected supply ripple** ([2]): superimpose a sinusoidal disturbance
  and measure how much *deterministic* period modulation it creates.
  Deterministic jitter looks like entropy to a naive sigma measurement
  but contributes none — the experiment prints the entropy-accounting
  error an unwary designer would make.
"""

import numpy as np

from repro import Board, InverterRingOscillator, SelfTimedRing, SupplySpec
from repro.trng.attacks import SupplyAttack, measure_deterministic_response
from repro.trng.elementary import predicted_shannon_entropy, quality_factor


def static_attack(board: Board) -> None:
    print("=== static operating-point attack (voltage sweep) ===")
    voltages = np.round(np.arange(1.0, 1.41, 0.1), 2)
    rings = {
        "IRO 5C": lambda b: InverterRingOscillator.on_board(b, 5),
        "IRO 80C": lambda b: InverterRingOscillator.on_board(b, 80),
        "STR 4C": lambda b: SelfTimedRing.on_board(b, 4),
        "STR 96C": lambda b: SelfTimedRing.on_board(b, 96),
    }
    header = "V core   " + "  ".join(f"{name:>9}" for name in rings)
    print(header)
    rows = {name: [] for name in rings}
    for voltage in voltages:
        cells = []
        for name, builder in rings.items():
            ring = builder(board.with_supply(SupplySpec(voltage_v=float(voltage))))
            frequency = ring.predicted_frequency_mhz()
            rows[name].append(frequency)
            cells.append(f"{frequency:9.1f}")
        print(f"{voltage:5.2f}    " + "  ".join(cells))
    print()
    for name, freqs in rows.items():
        excursion = (freqs[-1] - freqs[0]) / freqs[len(freqs) // 2]
        print(f"{name:8}: attacker's frequency leverage = {excursion:.1%} per 0.4 V")
    print()


def ripple_attack(board: Board) -> None:
    print("=== injected ripple attack ===")
    attack = SupplyAttack(delay_amplitude=0.008, period_ps=1.0e5)
    reference_period = 1.0e8  # 10 kHz sampling
    for ring in (
        InverterRingOscillator.on_board(board, 5),
        SelfTimedRing.on_board(board, 96),
    ):
        response = measure_deterministic_response(ring, attack, period_count=2048, seed=3)
        q_true = quality_factor(
            response.clean_sigma_ps, response.mean_period_ps, reference_period
        )
        q_apparent = quality_factor(
            response.attacked_sigma_ps, response.mean_period_ps, reference_period
        )
        print(
            f"{ring.name}: sigma {response.clean_sigma_ps:.2f} -> "
            f"{response.attacked_sigma_ps:.2f} ps under ripple "
            f"(relative response {response.relative_response:.2f})"
        )
        print(
            f"          entropy bound from TRUE sigma:     "
            f"{predicted_shannon_entropy(q_true):.4f}"
        )
        print(
            f"          entropy bound from APPARENT sigma: "
            f"{predicted_shannon_entropy(q_apparent):.4f}   <- overestimated "
            f"{response.apparent_q_inflation:.1f}x in Q"
        )
    print()
    print(
        "The STR's response per unit ripple is ~25 % below the IRO's: its\n"
        "Charlie-penalty delay share barely follows the supply (the same\n"
        "confinement effect behind Table I).  Either way, only the clean\n"
        "sigma should enter an entropy budget."
    )


def main() -> None:
    board = Board()
    static_attack(board)
    ripple_attack(board)


if __name__ == "__main__":
    main()
