#!/usr/bin/env python
"""Quickstart: build both oscillators on a simulated board and compare them.

This walks the public API end to end:

1. instantiate a (nominal) Cyclone III-like board;
2. place the paper's flagship pair — a 5-stage IRO and a 96-stage STR —
   on it;
3. query the analytical model (frequency, jitter law) and confirm it with
   the event-driven simulation;
4. run the full paper comparison across a five-board bank.
"""

from repro import (
    Board,
    BoardBank,
    InverterRingOscillator,
    SelfTimedRing,
    classify_trace,
    compare_entropy_sources,
)


def main() -> None:
    board = Board()
    iro = InverterRingOscillator.on_board(board, stage_count=5)
    str_ring = SelfTimedRing.on_board(board, stage_count=96)

    print("=== analytical layer ===")
    for ring in (iro, str_ring):
        print(
            f"{ring.name}: F = {ring.predicted_frequency_mhz():7.1f} MHz, "
            f"T = {ring.predicted_period_ps():7.1f} ps, "
            f"predicted sigma_p = {ring.predicted_period_jitter_ps():.2f} ps"
        )

    print()
    print("=== event-driven simulation (512 periods each) ===")
    for ring in (iro, str_ring):
        result = ring.simulate(512, seed=1)
        trace = result.trace
        print(
            f"{ring.name}: F = {trace.mean_frequency_mhz():7.1f} MHz, "
            f"sigma_p = {trace.period_jitter_ps():.2f} ps, "
            f"mode = {classify_trace(trace).mode.value}, "
            f"{result.events_processed} events"
        )

    print()
    print("=== the paper's comparison, on a 5-board bank ===")
    report = compare_entropy_sources(
        bank=BoardBank.manufacture(board_count=5, seed=2),
        jitter_method="population",
        jitter_periods=1024,
    )
    print(report.render())
    print()
    print(f"STR more robust to voltage:  {report.str_more_robust_to_voltage}")
    print(f"STR lower device dispersion: {report.str_lower_dispersion}")


if __name__ == "__main__":
    main()
