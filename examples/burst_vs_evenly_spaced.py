#!/usr/bin/env python
"""Explore the STR's two oscillation modes (paper Figs. 4 and 5).

Starts the same 12-stage ring from a maximally clustered token
configuration under two analog hypotheses and shows what the output stage
sees: evenly spaced toggles when the Charlie effect dominates, volleys
separated by long silences when the drafting effect dominates.  Also
prints the logical token walk of Fig. 4.
"""

from repro.core.charlie import CharlieDiagram, CharlieParameters, DraftingEffect
from repro.rings.modes import burstiness_profile, classify_trace
from repro.rings.str_ring import SelfTimedRing
from repro.rings.tokens import (
    cluster_tokens,
    fire_stage,
    fireable_stages,
    spread_tokens_evenly,
    token_positions,
)

STAGES = 12
TOKENS = 4


def show_token_walk() -> None:
    print("=== Fig. 4: the logical token walk (L = 5, NT = 2) ===")
    state = spread_tokens_evenly(5, 2)
    print(f"start:        state = {''.join(map(str, state))}  tokens at {token_positions(state)}")
    for step in range(6):
        stage = fireable_stages(state)[0]
        state = fire_stage(state, stage)
        print(
            f"fire stage {stage}: state = {''.join(map(str, state))}  "
            f"tokens at {token_positions(state)}"
        )
    print()


def run_mode(label: str, charlie_ps: float, drafting: DraftingEffect) -> None:
    diagram = CharlieDiagram(
        CharlieParameters.symmetric(250.0, charlie_ps), drafting=drafting
    )
    ring = SelfTimedRing(
        [diagram] * STAGES,
        TOKENS,
        jitter_sigmas_ps=0.5,
        initial_state=cluster_tokens(STAGES, TOKENS),
        name=label,
    )
    result = ring.simulate(256, seed=7, warmup_periods=64)
    classification = classify_trace(result.trace)
    profile = burstiness_profile(result.trace, TOKENS)
    print(f"--- {label} ---")
    print(
        f"mode = {classification.mode.value}, interval CV = "
        f"{classification.coefficient_of_variation:.3f}, gap ratio = "
        f"{classification.gap_ratio:.2f}"
    )
    print("mean interval per within-revolution slot (normalized):")
    peak = max(profile)
    for slot, value in enumerate(profile):
        bar = "#" * int(round(40 * value / peak))
        print(f"  slot {slot}: {value:5.2f} {bar}")
    print()


def main() -> None:
    show_token_walk()
    print(f"=== Fig. 5: steady regimes of an L={STAGES}, NT={TOKENS} ring ===")
    print("(both runs start from the same clustered token configuration)\n")
    run_mode(
        "strong Charlie effect (FPGA)",
        charlie_ps=120.0,
        drafting=DraftingEffect(),
    )
    run_mode(
        "drafting-dominated (burst-prone ASIC)",
        charlie_ps=2.0,
        drafting=DraftingEffect(amplitude_ps=120.0, time_constant_ps=400.0),
    )


if __name__ == "__main__":
    main()
