#!/usr/bin/env python
"""The multi-phase STR TRNG — where the paper's conclusions lead.

The paper ends by announcing a TRNG that "exploits the STR properties";
this example walks that design:

1. pick a gcd(L, NT) = 1 ring so every stage contributes a distinct
   phase (L = 63, NT = 20), and *see* the uniform phase comb;
2. measure the ring's long-run phase diffusion — the quantity that
   actually accumulates between samples (STR periods are anticorrelated,
   so this is below the single-period sigma);
3. provision an elementary and a multi-phase sampler for the same
   entropy target and compare throughput (the L^2 factor);
4. generate bits, run the statistical battery and the online health
   tests, and dump a VCD of the phase comb for a waveform viewer.
"""

import numpy as np

from repro import Board, SelfTimedRing
from repro.simulation.vcd import dump_ring_phases
from repro.stats.entropy import bias, markov_entropy_per_bit
from repro.stats.randomness import run_battery
from repro.trng.health import HealthMonitor
from repro.trng.multiphase import (
    MultiphaseModel,
    measure_diffusion_sigma_ps,
    reference_period_for_multiphase_q,
)
from repro.trng.phasewalk import reference_period_for_q

STAGES = 63
TOKENS = 20  # gcd(63, 20) = 1: all 63 phases distinct
Q_TARGET = 0.25


def main() -> None:
    board = Board()
    ring = SelfTimedRing.on_board(board, STAGES, token_count=TOKENS)
    period = ring.predicted_period_ps()

    print(f"ring: {ring.name}, NT = {TOKENS}, T = {period:.0f} ps "
          f"({ring.predicted_frequency_mhz():.0f} MHz)")

    # 1. the phase comb.
    quiet = SelfTimedRing([ring.mean_diagram()] * STAGES, TOKENS, jitter_sigmas_ps=0.0)
    phases = quiet.simulate_phases(16, seed=0, warmup_periods=2048)
    spacings = phases.merged_spacings_ps()
    print(
        f"phase comb: {STAGES} phases, spacing {np.mean(spacings):.2f} ps "
        f"(T/2L = {period / (2 * STAGES):.2f} ps), spread {np.std(spacings):.3f} ps"
    )

    # 2. diffusion rate.
    diffusion = measure_diffusion_sigma_ps(ring, period_count=3072, seed=1)
    single = ring.simulate(2048, seed=1).trace.period_jitter_ps()
    print(
        f"jitter: single-period sigma {single:.2f} ps, long-run diffusion "
        f"{diffusion:.2f} ps/sqrt(period) (regulated below sigma_p)"
    )

    # 3. provisioning comparison.
    elementary_ref = reference_period_for_q(period, diffusion, Q_TARGET)
    multiphase_ref = reference_period_for_multiphase_q(period, STAGES, diffusion, Q_TARGET)
    print(f"elementary sampler at Q={Q_TARGET}: T_ref = {elementary_ref / 1e6:.0f} us "
          f"-> {1e12 / elementary_ref:.0f} bit/s")
    print(f"multi-phase sampler at Q={Q_TARGET}: T_ref = {multiphase_ref / 1e3:.1f} ns "
          f"-> {1e12 / multiphase_ref / 1e6:.2f} Mbit/s  (x{STAGES}^2 = "
          f"{STAGES**2} speedup)")

    # 4. bits + verdicts.
    model = MultiphaseModel(period, STAGES, diffusion, multiphase_ref)
    bits = model.generate(30_000, seed=2)
    battery = run_battery(bits)
    monitor = HealthMonitor(claimed_min_entropy=0.9)
    healthy = monitor.check_block(bits)
    print(
        f"bits: bias {bias(bits):+.4f}, Markov entropy "
        f"{markov_entropy_per_bit(bits):.4f}, battery "
        f"{'PASS' if battery.all_passed else 'FAIL ' + str(battery.failed_tests)}, "
        f"health tests {'clean' if healthy else [a.test_name for a in monitor.alarms]}"
    )

    # A jitter-free source for contrast: its output is a deterministic
    # periodic pattern.  The cheap online health tests only catch
    # stuck-at and bias failures — a *balanced* periodic pattern slips
    # through them (which is why standards also require start-up battery
    # tests); the battery catches it immediately.
    stuck = MultiphaseModel(period, STAGES, 0.0, multiphase_ref)
    stuck_bits = stuck.generate(5_000, seed=3)
    stuck_healthy = HealthMonitor(claimed_min_entropy=0.9).check_block(stuck_bits)
    stuck_battery = run_battery(stuck_bits)
    print(
        f"jitter-free source: health tests "
        f"{'clean (balanced periodic pattern!)' if stuck_healthy else 'alarm'}, "
        f"battery {'PASS' if stuck_battery.all_passed else 'FAIL: ' + str(stuck_battery.failed_tests)}"
    )

    # 5. waveforms for a viewer.
    path = "str_phases.vcd"
    changes = dump_ring_phases(path, ring.simulate_phases(12, seed=4, warmup_periods=64))
    print(f"wrote {changes} value changes to {path} (open with GTKWave)")


if __name__ == "__main__":
    main()
