"""EXT10 — fault-injection campaign over the supervised runtime (extension).

Every library fault at every swept severity against the supervised
IRO-primary / STR-backup generator: the detection-latency and
recovery-outcome coverage matrix.
"""

from conftest import run_reproduction


def bench_ext10(benchmark):
    run_reproduction(benchmark, "EXT10")
