"""ABL4 — Drafting amplitude vs the burst boundary (ablation).

Maps the evenly-spaced/burst boundary that justifies the paper's
decision to neglect the drafting effect in FPGAs.
"""

from conftest import run_reproduction


def bench_abl4(benchmark):
    run_reproduction(benchmark, "ABL4")
