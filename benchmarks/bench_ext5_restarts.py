"""EXT5 — Restart experiments (extension; entropy-assessment methodology).

Regenerates the restart campaign and prints the across-restart spread
growth next to the Eq. 4 prediction.
"""

from conftest import run_reproduction


def bench_ext5(benchmark):
    run_reproduction(benchmark, "EXT5")
