"""Batch-kernel benchmarks: absolute cost and batch-vs-event speedup.

Two layers, mirroring ``bench_parallel_smoke.py``:

* ``bench_batch_kernel`` is a tracked pytest-benchmark entry (see
  ``reference_timings.json``): one vectorized pass over a
  population of IROs and STRs sized like the Fig. 11/12 workloads.
* The plain ``test_*`` functions time the Fig. 11 and Fig. 12
  experiments end to end on both backends and assert the vectorized
  kernel's speedup when ``REPRO_MIN_BATCH_SPEEDUP`` is set (CI sets
  the floor; locally the observed ratios are ~70x for FIG11 and ~60x
  for FIG12).  ``--benchmark-only`` runs skip them; CI invokes this
  file explicitly.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.experiments import fig11_iro_jitter, fig12_str_jitter
from repro.fpga.board import Board
from repro.rings.iro import InverterRingOscillator
from repro.rings.str_ring import SelfTimedRing
from repro.simulation.batch import (
    IROBatchSpec,
    STRBatchSpec,
    simulate_iro_batch,
    simulate_str_batch,
)


def _kernel_workload():
    """One vectorized pass sized like the figure workloads."""
    board = Board()
    iro_specs = [
        IROBatchSpec.from_ring(
            InverterRingOscillator.on_board(board, length), edge_count=2001, seed=index
        )
        for index, length in enumerate((3, 9, 25, 60))
    ]
    str_specs = [
        STRBatchSpec.from_ring(
            SelfTimedRing.on_board(board, length), edge_count=2001, seed=index
        )
        for index, length in enumerate((8, 16, 48, 96))
    ]
    iro = simulate_iro_batch(iro_specs)
    str_ = simulate_str_batch(str_specs)
    return iro.events_processed + str_.events_processed


def bench_batch_kernel(benchmark):
    events = benchmark.pedantic(_kernel_workload, rounds=3, iterations=1)
    print(f"\nbatch kernel advanced {events} stage firings per pass")
    assert events > 500_000


def _timed_run(experiment, backend, repeats=1):
    """Best-of-``repeats`` wall clock; the batch pass is short enough
    (~0.1 s) that a single sample is dominated by scheduler noise."""
    elapsed = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        result = experiment.run(backend=backend)
        elapsed = min(elapsed, time.perf_counter() - start)
    assert result.all_checks_pass, (
        f"{result.experiment_id} ({backend}) failed checks: {result.failed_checks}"
    )
    return result, elapsed


def _assert_speedup(label, event_s, batch_s):
    speedup = event_s / batch_s if batch_s > 0 else float("inf")
    print(
        f"\n{label}: event {event_s:.2f}s  batch {batch_s:.2f}s  "
        f"speedup {speedup:.1f}x  cores {os.cpu_count()}"
    )
    floor = float(os.environ.get("REPRO_MIN_BATCH_SPEEDUP", "0"))
    assert speedup >= floor, (
        f"{label} batch speedup {speedup:.1f}x below required {floor:g}x"
    )


def test_fig11_batch_speedup_and_identity():
    batch, batch_s = _timed_run(fig11_iro_jitter, "batch", repeats=3)
    event, event_s = _timed_run(fig11_iro_jitter, "event")
    # IRO batches are bit-exact: the speedup comes with zero drift.
    assert len(batch.rows) == len(event.rows)
    for batch_row, event_row in zip(batch.rows, event.rows):
        assert batch_row == event_row, f"FIG11 row diverged: {batch_row} != {event_row}"
    _assert_speedup("FIG11", event_s, batch_s)


def test_fig12_batch_speedup_and_equivalence():
    batch, batch_s = _timed_run(fig12_str_jitter, "batch", repeats=3)
    event, event_s = _timed_run(fig12_str_jitter, "event")
    # STR batches re-draw the same noise process in a different order:
    # rows agree statistically (the experiment checks already passed on
    # both backends above, which is the physics-level assertion).
    batch_jitters = np.array([row[2] for row in batch.rows])
    event_jitters = np.array([row[2] for row in event.rows])
    np.testing.assert_allclose(batch_jitters, event_jitters, rtol=0.5)
    _assert_speedup("FIG12", event_s, batch_s)
