"""ABL1 — Ablation: Charlie magnitude vs locking and jitter.

Regenerates the ablation through the experiment module and prints the
rows with the structural verdicts.
"""

from conftest import run_reproduction


def bench_abl1(benchmark):
    run_reproduction(benchmark, "ABL1")
