"""Observability overhead: the exposition plane must not tax serving.

Two guards around the PR's operational layer, mirroring the telemetry
overhead gate:

* ``bench_obs`` — a tracked benchmark (gated through
  ``reference_timings.json``): a full publisher loop — registry
  snapshot, window push, derived ``repro.obs.window.*`` gauges,
  Prometheus render, parse round-trip — so a future change that makes
  a publish tick expensive trips the CI regression gate;
* ``test_obs_overhead_is_small`` — a direct A/B on a serving-shaped
  workload (health-gated ``TrngPool.get_bytes`` plus request-path
  counter/histogram writes): the same byte budget with a
  :class:`MetricsPublisher` ticking every few slabs versus with no
  publisher at all, asserting the exposition/windowing plane adds
  less than 5%.  The tick cadence is still far denser than the
  daemon's 1 Hz default, so the bound is conservative.

Timing ratios on shared runners are noisy, so the A/B takes the best
of several repetitions per side and allows a few attempts before
failing.  The A/B is a plain test (no ``benchmark`` fixture) so
``--benchmark-only`` runs skip it; CI invokes this file explicitly.
"""

from __future__ import annotations

import time

from repro.core.campaign import RingSpec
from repro.serve.pool import TrngPool
from repro.serve.server import LATENCY_EDGES_S
from repro.telemetry import (
    MetricsPublisher,
    MetricsRegistry,
    SnapshotWindow,
    parse_prometheus,
    use_registry,
)

_SPECS = (RingSpec("iro", 5), RingSpec("str", 48))
_SLAB_BYTES = 1024
_SLABS = 48
#: Publish every Nth slab.  The daemon ticks at 1 Hz against hundreds
#: of grants per second; one tick per four 1 KiB slabs is still far
#: denser than that, while keeping the A/B about representative cost
#: rather than an artificial tick-per-request regime.
_TICK_EVERY = 4


def _serve_workload(publisher) -> None:
    """A serving-shaped inner loop: gated bytes + request-path metrics."""
    registry = MetricsRegistry()
    with use_registry(registry):
        pool = TrngPool(_SPECS, seed=3)
        for index in range(_SLABS):
            pool.get_bytes(_SLAB_BYTES)
            registry.counter("repro.serve.requests_ok").inc()
            registry.counter("repro.serve.bytes_served").inc(_SLAB_BYTES)
            registry.histogram(
                "repro.serve.request_latency_s", LATENCY_EDGES_S
            ).observe(0.003)
            if publisher is not None and index % _TICK_EVERY == 0:
                publisher.tick(float(index))


def _publish_loop() -> None:
    """One tracked unit: 200 ticks + renders over a busy registry."""
    registry = MetricsRegistry()
    for index in range(40):
        registry.counter(f"repro.serve.counter_{index}").inc(index)
        registry.gauge(f"repro.serve.gauge_{index}").set(index * 0.5)
    histogram = registry.histogram("repro.serve.request_latency_s", LATENCY_EDGES_S)
    publisher = MetricsPublisher(registry=registry, window=SnapshotWindow())
    for tick in range(200):
        registry.counter("repro.serve.bytes_served").inc(4096)
        histogram.observe(0.001 * (tick % 7))
        publisher.tick(float(tick))
        if tick % 10 == 0:
            parse_prometheus(publisher.render())


def _best_of(repeats: int, publisher_factory) -> float:
    best = float("inf")
    for _ in range(repeats):
        publisher = publisher_factory() if publisher_factory is not None else None
        start = time.perf_counter()
        _serve_workload(publisher)
        best = min(best, time.perf_counter() - start)
    return best


def bench_obs(benchmark):
    benchmark.pedantic(_publish_loop, rounds=1, iterations=1)


def test_obs_overhead_is_small():
    _serve_workload(None)  # warm-up: imports, calibration caches
    ratio = float("inf")
    for _ in range(3):
        baseline_s = _best_of(3, None)
        published_s = _best_of(3, lambda: MetricsPublisher(window=SnapshotWindow()))
        ratio = published_s / baseline_s
        print(
            f"\nno-publisher {baseline_s:.3f}s  publishing {published_s:.3f}s  "
            f"ratio {ratio:.3f}"
        )
        if ratio < 1.05:
            break
    assert ratio < 1.05, (
        f"the exposition/windowing plane adds {(ratio - 1):.1%} to the "
        "serving path (must stay under 5%)"
    )
