"""EXT3 — Jitter accumulation profiles (extension of Section IV).

Regenerates the paper item through the experiment module and prints the
reproduced rows next to the published reference values.
"""

from conftest import run_reproduction


def bench_ext3(benchmark):
    run_reproduction(benchmark, "EXT3")
