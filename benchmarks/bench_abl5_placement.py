"""ABL5 — Placement strategy vs frequency and jitter (ablation).

Quantifies what the paper's manual same-LAB placement buys.
"""

from conftest import run_reproduction


def bench_abl5(benchmark):
    run_reproduction(benchmark, "ABL5")
