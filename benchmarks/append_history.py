#!/usr/bin/env python3
"""Append one CI run's benchmark means to a rolling history file.

CI keeps ``BENCH_history.jsonl`` alive across runs (restored from the
most recent cache entry, re-saved after appending), so the artifact
always carries the trend, not just the latest point::

    python benchmarks/append_history.py bench.json BENCH_history.jsonl \
        --sha "$GITHUB_SHA" --run-id "$GITHUB_RUN_ID"

Each line is a self-contained JSON object::

    {"sha": "abc1234...", "run_id": "99", "utc": "2026-02-03T04:05:06Z",
     "means": {"bench_fig11": 0.11, ...}}

``--render`` prints the last few rows as a table (newest last) for the
job log, so a drift is visible without downloading anything.

``--snapshot BENCH_history.json`` additionally writes a bounded JSON
*document* (newest-last ``rows`` plus an ``updated`` stamp) meant to
live at the repo root under version control — the committed trajectory
seed that ``check_regression.py --history`` reads for its slow-drift
warning even on a cold CI cache.
"""

from __future__ import annotations

import argparse
import datetime
import json
import sys
from typing import Dict, List


def load_means(bench_json_path: str) -> Dict[str, float]:
    """Benchmark name -> mean seconds from a pytest-benchmark export."""
    with open(bench_json_path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    return {
        entry["name"]: float(entry["stats"]["mean"])
        for entry in document.get("benchmarks", [])
    }


def load_history(history_path: str) -> List[dict]:
    try:
        with open(history_path, "r", encoding="utf-8") as handle:
            return [json.loads(line) for line in handle if line.strip()]
    except FileNotFoundError:
        return []


#: Rows kept in the committed snapshot document — enough trajectory for
#: the drift warning without growing the repo forever.
SNAPSHOT_ROWS = 20


def write_snapshot(history: List[dict], snapshot_path: str) -> None:
    """Write the trailing history as a committed JSON document."""
    document = {
        "updated": history[-1]["utc"] if history else "",
        "rows": history[-SNAPSHOT_ROWS:],
    }
    with open(snapshot_path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


def render(rows: List[dict], tail: int = 10) -> str:
    """The last ``tail`` rows as a fixed-width table, newest last."""
    rows = rows[-tail:]
    if not rows:
        return "(no history)"
    names = sorted({name for row in rows for name in row.get("means", {})})
    header = f"{'sha':<10} {'utc':<20}" + "".join(f" {name:>20}" for name in names)
    lines = [header]
    for row in rows:
        means = row.get("means", {})
        cells = "".join(
            f" {means[name]:>20.4f}" if name in means else f" {'-':>20}"
            for name in names
        )
        lines.append(f"{row.get('sha', '?')[:9]:<10} {row.get('utc', '?'):<20}{cells}")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("bench_json", help="pytest-benchmark --benchmark-json output")
    parser.add_argument("history", help="JSONL history file to append to")
    parser.add_argument("--sha", default="unknown", help="commit SHA for the row")
    parser.add_argument("--run-id", default="", help="CI run identifier")
    parser.add_argument(
        "--render", action="store_true", help="print the trailing history table"
    )
    parser.add_argument(
        "--snapshot",
        default=None,
        metavar="FILE",
        help="also write the trailing rows as a committed JSON document "
        "(e.g. BENCH_history.json at the repo root)",
    )
    args = parser.parse_args(argv)

    means = load_means(args.bench_json)
    if not means:
        print(f"no benchmarks in {args.bench_json}; nothing appended", file=sys.stderr)
        return 1
    row = {
        "sha": args.sha,
        "run_id": args.run_id,
        "utc": datetime.datetime.now(datetime.timezone.utc).strftime(
            "%Y-%m-%dT%H:%M:%SZ"
        ),
        "means": means,
    }
    history = load_history(args.history)
    history.append(row)
    with open(args.history, "w", encoding="utf-8") as handle:
        for entry in history:
            handle.write(json.dumps(entry, sort_keys=True) + "\n")
    print(f"appended {args.sha[:9]} ({len(means)} benchmarks) -> {args.history}")
    if args.snapshot:
        write_snapshot(history, args.snapshot)
        print(f"snapshot ({min(len(history), SNAPSHOT_ROWS)} rows) -> {args.snapshot}")
    if args.render:
        print()
        print(render(history))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
