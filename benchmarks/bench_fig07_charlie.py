"""FIG7 — The Charlie diagram (Fig. 7).

Regenerates the paper item through the experiment module and prints the
reproduced rows next to the published reference values.
"""

from conftest import run_reproduction


def bench_fig7(benchmark):
    run_reproduction(benchmark, "FIG7")
