"""EXT6 — Temperature sweep (extension; the other knob of [1]).

Regenerates the temperature characterization and prints the frequency
series with the drift verdicts.
"""

from conftest import run_reproduction


def bench_ext6(benchmark):
    run_reproduction(benchmark, "EXT6")
