"""TAB1 — Normalized frequency excursions (Table I).

Regenerates the paper item through the experiment module and prints the
reproduced rows next to the published reference values.
"""

from conftest import run_reproduction


def bench_tab1(benchmark):
    run_reproduction(benchmark, "TAB1")
