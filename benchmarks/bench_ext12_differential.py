"""EXT12 — differential vs counter jitter measurement reproduction run.

Regenerates the EXT12 extension table (worst-case ripple sweep over the
co-located pair) and asserts its structural checks, timed under the CI
benchmark gate.
"""

from conftest import run_reproduction


def bench_ext12_differential(benchmark):
    run_reproduction(benchmark, "EXT12")
