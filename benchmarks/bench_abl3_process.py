"""ABL3 — Ablation: process layers vs Table II structure.

Regenerates the ablation through the experiment module and prints the
rows with the structural verdicts.
"""

from conftest import run_reproduction


def bench_abl3(benchmark):
    run_reproduction(benchmark, "ABL3")
