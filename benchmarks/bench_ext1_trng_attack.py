"""EXT1 — Deterministic jitter under supply ripple (extension).

Regenerates the paper item through the experiment module and prints the
reproduced rows next to the published reference values.
"""

from conftest import run_reproduction


def bench_ext1(benchmark):
    run_reproduction(benchmark, "EXT1")
