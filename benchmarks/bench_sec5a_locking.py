"""SEC5A — Evenly-spaced mode locking (Section V-A).

Regenerates the paper item through the experiment module and prints the
reproduced rows next to the published reference values.
"""

from conftest import run_reproduction


def bench_sec5a(benchmark):
    run_reproduction(benchmark, "SEC5A")
