"""Benchmark harness helpers.

Each benchmark regenerates one table or figure of the paper: it runs the
corresponding experiment module once (``rounds=1`` — these are
reproduction runs, not micro-benchmarks), prints the same rows the paper
reports side by side with the published values, and asserts the
experiment's structural checks.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from repro.experiments import get_experiment
from repro.experiments.base import ExperimentResult


def run_reproduction(benchmark, experiment_id: str, **kwargs) -> ExperimentResult:
    """Run one experiment under the benchmark timer and report it."""
    runner = get_experiment(experiment_id)
    result = benchmark.pedantic(runner, kwargs=kwargs, rounds=1, iterations=1)
    print()
    print(result.render())
    assert result.all_checks_pass, (
        f"{experiment_id} failed checks: {result.failed_checks}"
    )
    return result
