"""ABL2 — Ablation: inter-LAB routing vs Table I frequencies.

Regenerates the ablation through the experiment module and prints the
rows with the structural verdicts.
"""

from conftest import run_reproduction


def bench_abl2(benchmark):
    run_reproduction(benchmark, "ABL2")
