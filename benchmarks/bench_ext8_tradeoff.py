"""EXT8 — Throughput vs entropy tradeoff (extension).

Draws the design curves for the three sampler architectures and checks
their orderings.
"""

from conftest import run_reproduction


def bench_ext8(benchmark):
    run_reproduction(benchmark, "EXT8")
