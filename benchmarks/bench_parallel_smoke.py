"""Parallel-vs-serial smoke: identity always, speedup when asked.

Runs a TAB2-sized characterization campaign (the Table II ring grid,
2048 jitter periods) serially and with a four-worker pool and asserts
the two executor-layer contracts end to end:

* the parallel report is **bit-identical** to the serial one;
* a cache-warm rerun costs a small fraction of the cold run.

Wall-clock speedup depends on the machine, so it is only *asserted*
when ``REPRO_MIN_SPEEDUP`` is set (CI sets a conservative floor; a quiet
4-core box reaches ~2.5x+); otherwise it is printed for information.

These are plain tests (no ``benchmark`` fixture), so
``--benchmark-only`` runs skip them; CI invokes this file explicitly.
"""

from __future__ import annotations

import os
import time

from repro.core.campaign import RingSpec, run_campaign
from repro.fpga.board import BoardBank
from repro.fpga.calibration import TABLE2_TARGETS
from repro.parallel import ResultCache

TAB2_SPECS = [RingSpec(t.kind, t.stage_count) for t in TABLE2_TARGETS]


def _campaign(jobs, cache=None):
    bank = BoardBank.manufacture(board_count=5, seed=7)
    start = time.perf_counter()
    report = run_campaign(
        TAB2_SPECS,
        bank=bank,
        jitter_periods=2048,
        seed=0,
        jobs=jobs,
        cache=cache,
    )
    return report.to_json(), time.perf_counter() - start


def test_parallel_campaign_identity_and_speedup(tmp_path):
    serial_json, serial_s = _campaign(1)
    parallel_json, parallel_s = _campaign(4)
    assert parallel_json == serial_json, "parallel campaign diverged from serial"

    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    print(
        f"\nserial {serial_s:.2f}s  jobs=4 {parallel_s:.2f}s  "
        f"speedup {speedup:.2f}x  cores {os.cpu_count()}"
    )
    floor = float(os.environ.get("REPRO_MIN_SPEEDUP", "0"))
    assert speedup >= floor, (
        f"speedup {speedup:.2f}x below required {floor:g}x "
        f"(cores: {os.cpu_count()})"
    )


def test_cached_rerun_is_cheap(tmp_path):
    cache = ResultCache(root=tmp_path / "bench_cache")
    cold_json, cold_s = _campaign(1, cache=cache)
    warm_json, warm_s = _campaign(1, cache=cache)
    assert warm_json == cold_json, "cache-warm campaign diverged from cold"
    fraction = warm_s / cold_s if cold_s > 0 else 0.0
    print(f"\ncold {cold_s:.2f}s  warm {warm_s:.3f}s  fraction {fraction:.1%}")
    # Locally the warm rerun is ~1-2% of cold; 50% leaves timing-noise
    # headroom on loaded CI runners while still proving the cache works.
    assert warm_s < 0.5 * cold_s, (
        f"cached rerun took {fraction:.0%} of the cold run"
    )
