"""FIG4 — Token and bubble propagation (Fig. 4).

Regenerates the paper item through the experiment module and prints the
reproduced rows next to the published reference values.
"""

from conftest import run_reproduction


def bench_fig4(benchmark):
    run_reproduction(benchmark, "FIG4")
