"""FIG11 — IRO period jitter vs stage count (Fig. 11).

Regenerates the paper item through the experiment module and prints the
reproduced rows next to the published reference values.
"""

from conftest import run_reproduction


def bench_fig11(benchmark):
    run_reproduction(benchmark, "FIG11")
