"""FIG12 — STR period jitter vs stage count (Fig. 12).

Regenerates the paper item through the experiment module and prints the
reproduced rows next to the published reference values.
"""

from conftest import run_reproduction


def bench_fig12(benchmark):
    run_reproduction(benchmark, "FIG12")
