"""Claim-verification sweep benchmark (tracked in the CI gate).

Runs a small quick-tier sweep — the cheap analytic/runtime claims over
two derived seeds each, uncached and serial — through
``repro.verify.run_verification``, i.e. the exact path ``repro verify``
takes.  Tracked through ``reference_timings.json`` so a change that
makes claim checks accidentally expensive (or breaks the sweep outright)
trips the benchmark gate; the full 13-claim sweep stays in the
``verify-quick`` CI job where its runtime belongs.
"""

from __future__ import annotations

from repro.verify import run_verification

_CLAIMS = ("C6", "EXT-FAILOVER", "EXT-FAILSAFE")


def _small_sweep():
    return run_verification(
        list(_CLAIMS),
        tier="quick",
        seeds=2,
        root_seed=0,
        jobs=1,
        cache=None,
    )


def bench_verify(benchmark):
    report = benchmark.pedantic(_small_sweep, rounds=1, iterations=1)
    print()
    print(report.render())
    assert report.passed, f"verification sweep failed: {report.failing_claims}"
