"""PUF enrollment benchmark: population throughput of the vectorized kernel.

``bench_puf_enroll`` is a tracked pytest-benchmark entry (see
``reference_timings.json``): it enrolls a 100k-device population on the
default 32-ring design, which exercises the full chunked pipeline —
batch process sampling, the (device, ring, stage) frequency kernel, and
response-bit derivation.  At the measured ~25k devices/s this puts the
headline million-device workload at well under a minute.
"""

from __future__ import annotations

from repro.puf import PufDesign, enroll_population

ENROLL_DEVICES = 100_000


def _enroll_workload():
    enrollment = enroll_population(
        ENROLL_DEVICES, design=PufDesign(ring_count=32, stage_count=3), seed=0
    )
    return enrollment.device_count


def bench_puf_enroll(benchmark):
    devices = benchmark.pedantic(_enroll_workload, rounds=3, iterations=1)
    rate = devices / benchmark.stats.stats.min
    print(f"\nenrolled {devices} devices per pass ({rate:,.0f} devices/s)")
    assert devices == ENROLL_DEVICES
