"""EXT7 — Coherent-sampling counter statistics (extension; ref [7]).

Runs the counter-based generator on manufactured STR pairs and prints
the counter populations with verdicts.
"""

from conftest import run_reproduction


def bench_ext7(benchmark):
    run_reproduction(benchmark, "EXT7")
