"""FIG8 — Normalized frequency vs supply voltage (Fig. 8).

Regenerates the paper item through the experiment module and prints the
reproduced rows next to the published reference values.
"""

from conftest import run_reproduction


def bench_fig8(benchmark):
    run_reproduction(benchmark, "FIG8")
