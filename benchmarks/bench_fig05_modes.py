"""FIG5 — Burst vs evenly-spaced modes (Fig. 5).

Regenerates the paper item through the experiment module and prints the
reproduced rows next to the published reference values.
"""

from conftest import run_reproduction


def bench_fig5(benchmark):
    run_reproduction(benchmark, "FIG5")
