"""EXT2 — Coherent-sampling capture band (extension).

Regenerates the paper item through the experiment module and prints the
reproduced rows next to the published reference values.
"""

from conftest import run_reproduction


def bench_ext2(benchmark):
    run_reproduction(benchmark, "EXT2")
