"""EXT4 — Multi-phase STR TRNG (the paper's announced future work).

Regenerates the paper item through the experiment module and prints the
reproduced rows next to the published reference values.
"""

from conftest import run_reproduction


def bench_ext4(benchmark):
    run_reproduction(benchmark, "EXT4")
