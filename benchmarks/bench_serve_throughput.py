"""Serving throughput: the entropy daemon's request path end to end.

``bench_serve`` is a tracked benchmark (gated through
``reference_timings.json``): it stands up an in-process
:class:`~repro.serve.server.EntropyServer` over a healthy four-channel
pool, drives it with the load generator (4 clients x 8 requests x 2 KiB
over real loopback sockets), and drains it.  A change that makes the
framing, pool gating, or grant loop accidentally quadratic — or that
serializes the request path — trips the CI regression gate.

The run asserts the load was clean (no errors, no integrity violations)
so a timing number from a broken server can never pass silently.
"""

from __future__ import annotations

import asyncio

from repro.core.campaign import RingSpec
from repro.serve import EntropyServer, ServerConfig, TrngPool
from repro.serve.loadgen import run_load

_POOL_SPECS = (
    RingSpec("iro", 5),
    RingSpec("iro", 7),
    RingSpec("str", 48),
    RingSpec("str", 96),
)


async def _serve_and_load():
    pool = TrngPool(_POOL_SPECS, seed=17)
    server = EntropyServer(pool, ServerConfig())
    await server.start()
    try:
        report = await run_load(
            "127.0.0.1",
            server.port,
            clients=4,
            requests_per_client=8,
            request_bytes=2048,
        )
    finally:
        server.request_shutdown()
        await asyncio.wait_for(server.wait_closed(), timeout=10)
    assert report.requests_error == 0, report.errors_by_code
    assert report.integrity_violations == 0
    assert report.client_failures == 0
    assert report.bytes_received == 4 * 8 * 2048
    return report


def _run() -> None:
    asyncio.run(_serve_and_load())


def bench_serve(benchmark):
    benchmark.pedantic(_run, rounds=1, iterations=1)
