"""Telemetry overhead: disabled instrumentation must be (nearly) free.

Two guards around the telemetry layer's core promise:

* ``bench_telemetry`` — a tracked benchmark (gated through
  ``reference_timings.json``) running a small ``jitter_versus_length``
  campaign with telemetry in its default state (null sink, live
  registry), so a future change that makes the instrumented hot paths
  expensive trips the CI regression gate;
* ``test_null_sink_overhead_is_small`` — a direct A/B: the same run
  with the layer fully disabled (``all_disabled()`` — null sink *and*
  write-discarding registry) versus the default path, asserting the
  default adds less than 5%.

Timing ratios on shared runners are noisy, so the A/B takes the best of
several repetitions per side and allows a few attempts before failing.

The A/B is a plain test (no ``benchmark`` fixture) so
``--benchmark-only`` runs skip it; CI invokes this file explicitly.
"""

from __future__ import annotations

import time

from repro.core.characterization import jitter_versus_length
from repro.fpga.board import Board
from repro.telemetry import all_disabled

_LENGTHS = (4, 8, 16)
_PERIODS = 512


def _small_run() -> None:
    jitter_versus_length(
        Board(),
        _LENGTHS,
        "str",
        period_count=_PERIODS,
        seed=0,
        jobs=1,
        cache=None,
    )


def _best_of(repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        _small_run()
        best = min(best, time.perf_counter() - start)
    return best


def bench_telemetry(benchmark):
    benchmark.pedantic(_small_run, rounds=1, iterations=1)


def test_null_sink_overhead_is_small():
    _small_run()  # warm-up: imports, calibration caches
    ratio = float("inf")
    for _ in range(3):
        with all_disabled():
            baseline_s = _best_of(3)
        enabled_s = _best_of(3)
        ratio = enabled_s / baseline_s
        print(
            f"\ndisabled {baseline_s:.3f}s  null-sink {enabled_s:.3f}s  "
            f"ratio {ratio:.3f}"
        )
        if ratio < 1.05:
            break
    assert ratio < 1.05, (
        f"null-sink telemetry adds {(ratio - 1):.1%} to the hot path "
        "(must stay under 5%)"
    )
