"""EXT9 — XOR-of-IROs vs multi-phase STR at equal silicon (extension).

The era's strongest IRO-based design against the STR follow-up design.
"""

from conftest import run_reproduction


def bench_ext9(benchmark):
    run_reproduction(benchmark, "EXT9")
