"""TAB2 — Extra-device dispersion over five boards (Table II).

Regenerates the paper item through the experiment module and prints the
reproduced rows next to the published reference values.
"""

from conftest import run_reproduction


def bench_tab2(benchmark):
    run_reproduction(benchmark, "TAB2")
