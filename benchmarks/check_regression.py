#!/usr/bin/env python3
"""CI benchmark gate: fail when a tracked benchmark regresses.

Compares the mean timings in a ``pytest-benchmark`` JSON export against
the committed reference timings and exits non-zero when any tracked
benchmark is slower than ``factor`` times its reference::

    pytest benchmarks/ --benchmark-only --benchmark-json=bench.json \
        -k "fig11 or fig12 or ext10"
    python benchmarks/check_regression.py bench.json \
        benchmarks/reference_timings.json

The reference file maps benchmark names to reference mean seconds::

    {"bench_fig11": 5.1, "bench_fig12": 8.4, "bench_ext10": 0.9}

Reference numbers are deliberately coarse (one significant margin, not a
laptop-precise baseline): the gate exists to catch order-of-magnitude
mistakes — an accidentally quadratic loop, a serial path swallowing the
pool — not 10% scheduler noise.  The allowed factor can be widened for a
known-slow runner with ``--factor`` or ``REPRO_BENCH_FACTOR``.

Below the hard gate sits a *soft* trajectory check: with ``--history``
pointing at the rolling history (the JSONL from ``append_history.py``
or the committed ``BENCH_history.json`` snapshot), a benchmark whose
mean rose monotonically across the last three runs (history tail plus
this export) by ``--drift-factor`` (default 1.3x) overall prints a
``DRIFT WARNING`` in the job log — it never fails the gate, it makes
the slow creep that 2x would eventually catch visible per-PR instead.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Tuple


def load_means(bench_json_path: str) -> Dict[str, float]:
    """Benchmark name -> mean seconds from a pytest-benchmark export."""
    with open(bench_json_path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    means = {}
    for entry in document.get("benchmarks", []):
        means[entry["name"]] = float(entry["stats"]["mean"])
    return means


def check(
    current: Dict[str, float],
    reference: Dict[str, float],
    factor: float,
    allow_untracked: bool = False,
) -> int:
    """Print a comparison table; return the number of failures.

    A benchmark present in the export but absent from the reference file
    is a failure unless ``allow_untracked`` is set: a silently untracked
    benchmark is exactly how a new hot path escapes the gate.
    """
    failures = 0
    width = max(len(name) for name in {**reference, **current}) if reference or current else 4
    print(f"{'benchmark'.ljust(width)}  {'ref [s]':>9}  {'now [s]':>9}  {'ratio':>6}  verdict")
    for name in sorted(reference):
        ref = reference[name]
        if name not in current:
            print(f"{name.ljust(width)}  {ref:9.3f}  {'-':>9}  {'-':>6}  MISSING")
            failures += 1
            continue
        now = current[name]
        ratio = now / ref if ref > 0 else float("inf")
        verdict = "ok" if ratio <= factor else f"REGRESSION (> {factor:g}x)"
        if ratio > factor:
            failures += 1
        print(f"{name.ljust(width)}  {ref:9.3f}  {now:9.3f}  {ratio:6.2f}  {verdict}")
    for name in sorted(set(current) - set(reference)):
        verdict = "untracked (allowed)" if allow_untracked else "UNTRACKED"
        if not allow_untracked:
            failures += 1
        print(f"{name.ljust(width)}  {'-':>9}  {current[name]:9.3f}  {'-':>6}  {verdict}")
    untracked = sorted(set(current) - set(reference))
    if untracked and not allow_untracked:
        print(
            f"\nuntracked benchmark(s) {', '.join(untracked)}: add reference "
            "entries to benchmarks/reference_timings.json or pass --allow-untracked",
            file=sys.stderr,
        )
    return failures


def load_history_means(history_path: str) -> List[Dict[str, float]]:
    """Per-run mean maps, oldest first, from either history format.

    Accepts the rolling JSONL (one row object per line) *and* the
    committed snapshot document (``{"rows": [...]}``) so the gate works
    the same from a warm CI cache or a cold checkout.
    """
    with open(history_path, "r", encoding="utf-8") as handle:
        text = handle.read()
    rows: List[dict]
    try:
        # Snapshot document: the whole file is one JSON object with a
        # "rows" key.  (A single-line JSONL also parses here but has no
        # "rows" — fall through so the row is not silently dropped.)
        document = json.loads(text)
        if not (isinstance(document, dict) and "rows" in document):
            raise json.JSONDecodeError("not a snapshot document", text, 0)
        rows = document["rows"]
    except json.JSONDecodeError:
        # Rolling JSONL: one row object per line.
        rows = [json.loads(line) for line in text.splitlines() if line.strip()]
    return [
        {name: float(value) for name, value in row.get("means", {}).items()}
        for row in rows
    ]


def drift_warnings(
    history: List[Dict[str, float]],
    current: Dict[str, float],
    drift_factor: float,
    runs: int = 3,
) -> List[Tuple[str, List[float]]]:
    """Benchmarks that rose monotonically over the last ``runs`` points.

    The series under test is the history tail plus the current export;
    a warning needs strict monotonic growth *and* an overall ratio of
    at least ``drift_factor`` — three noisy-but-flat runs stay quiet.
    """
    warnings: List[Tuple[str, List[float]]] = []
    for name in sorted(current):
        series = [row[name] for row in history if name in row]
        series = (series + [current[name]])[-runs:]
        if len(series) < runs or series[0] <= 0:
            continue
        monotonic = all(later > earlier for earlier, later in zip(series, series[1:]))
        if monotonic and series[-1] / series[0] >= drift_factor:
            warnings.append((name, series))
    return warnings


def report_drift(
    history: List[Dict[str, float]],
    current: Dict[str, float],
    drift_factor: float,
) -> None:
    warnings = drift_warnings(history, current, drift_factor)
    for name, series in warnings:
        trajectory = " -> ".join(f"{value:.3f}" for value in series)
        print(
            f"DRIFT WARNING: {name} rose monotonically over the last "
            f"{len(series)} runs ({trajectory} s, "
            f"{series[-1] / series[0]:.2f}x >= {drift_factor:g}x) — below the "
            f"hard gate, but trending the wrong way",
            file=sys.stderr,
        )
    if not warnings:
        print(f"no monotonic drift >= {drift_factor:g}x over the trailing runs")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("bench_json", help="pytest-benchmark --benchmark-json output")
    parser.add_argument("reference_json", help="committed reference timings")
    parser.add_argument(
        "--factor",
        type=float,
        default=float(os.environ.get("REPRO_BENCH_FACTOR", "2.0")),
        help="allowed slowdown vs reference (default: 2.0, env REPRO_BENCH_FACTOR)",
    )
    parser.add_argument(
        "--allow-untracked",
        action="store_true",
        help="tolerate benchmarks missing from the reference file "
        "(by default they fail the gate)",
    )
    parser.add_argument(
        "--history",
        default=None,
        metavar="FILE",
        help="rolling history (JSONL) or committed snapshot (JSON) for "
        "the soft monotonic-drift warning",
    )
    parser.add_argument(
        "--drift-factor",
        type=float,
        default=1.3,
        help="overall growth across three monotonic runs that triggers "
        "a DRIFT WARNING (default: 1.3; never fails the gate)",
    )
    args = parser.parse_args(argv)

    current = load_means(args.bench_json)
    with open(args.reference_json, "r", encoding="utf-8") as handle:
        reference = {name: float(value) for name, value in json.load(handle).items()}

    failures = check(current, reference, args.factor, allow_untracked=args.allow_untracked)
    if args.history is not None:
        try:
            history = load_history_means(args.history)
        except FileNotFoundError:
            print(f"(no history at {args.history}; drift check skipped)")
        else:
            report_drift(history, current, args.drift_factor)
    if failures:
        print(f"\n{failures} benchmark(s) failed the {args.factor:g}x gate", file=sys.stderr)
        return 1
    print(f"\nall {len(reference)} tracked benchmarks within {args.factor:g}x of reference")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
