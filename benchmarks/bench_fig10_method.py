"""FIG10 — Divider-based jitter measurement (Fig. 10).

Regenerates the paper item through the experiment module and prints the
reproduced rows next to the published reference values.
"""

from conftest import run_reproduction


def bench_fig10(benchmark):
    run_reproduction(benchmark, "FIG10")
