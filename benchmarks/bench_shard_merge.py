"""Sharded campaign round-trip benchmark (tracked in the CI gate).

Times the full shard lifecycle on a small campaign grid: run every
shard of a 2-way split, merge the shard directories, and reassemble the
report from the merged cache.  Asserting bit-identity against the
single-host run keeps the benchmark honest — a regression that broke
the merge identity would fail here before it failed in CI's
``shard-smoke`` job.  Tracked through ``reference_timings.json`` so the
shard bookkeeping (manifests, cache absorption, metrics merging) never
becomes a tax on campaign runtime.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.core.campaign import (
    RingSpec,
    assemble_campaign,
    run_campaign,
    run_campaign_shard,
)
from repro.fpga.board import BoardBank
from repro.parallel import ShardSpec, merge_shards

_SPECS = (RingSpec("iro", 3), RingSpec("str", 8))
_KWARGS = dict(board_count=3, bank_seed=7, jitter_periods=1024, seed=5)


def _shard_roundtrip() -> str:
    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)
        dirs = []
        for index in range(2):
            directory = tmp / f"s{index}"
            run_campaign_shard(list(_SPECS), ShardSpec(index, 2), directory, **_KWARGS)
            dirs.append(directory)
        merged = merge_shards(dirs, tmp / "merged")
        return assemble_campaign(merged).to_json()


def bench_shard_merge(benchmark):
    merged_json = benchmark.pedantic(_shard_roundtrip, rounds=1, iterations=1)
    bank = BoardBank.manufacture(
        board_count=_KWARGS["board_count"], seed=_KWARGS["bank_seed"]
    )
    single = run_campaign(
        list(_SPECS),
        bank=bank,
        jitter_periods=_KWARGS["jitter_periods"],
        seed=_KWARGS["seed"],
    )
    assert merged_json == single.to_json(), "merged shard report drifted from single-host"
    print()
    print(single.render())
