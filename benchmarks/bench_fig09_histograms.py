"""FIG9 — Period jitter histograms (Fig. 9).

Regenerates the paper item through the experiment module and prints the
reproduced rows next to the published reference values.
"""

from conftest import run_reproduction


def bench_fig9(benchmark):
    run_reproduction(benchmark, "FIG9")
